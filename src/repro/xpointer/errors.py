"""Errors raised by the XPointer processor."""

from __future__ import annotations


class XPointerError(Exception):
    """Base class for XPointer errors."""


class XPointerSyntaxError(XPointerError):
    """The pointer string does not match the XPointer grammar."""


class XPointerResolutionError(XPointerError):
    """The pointer is well-formed but identifies nothing in the target.

    Raised only by :func:`repro.xpointer.resolve` (the strict API);
    :func:`repro.xpointer.resolve_all` returns an empty list instead.
    """
