"""The XPointer pointer model.

A pointer is either a *shorthand* (a bare NCName naming an element by ID) or
a sequence of *scheme-based pointer parts*.  We implement the three schemes
the linking layer needs:

- ``element(...)`` — an optional ID followed by a 1-based child sequence,
  e.g. ``element(guitar/1/2)`` or ``element(/1/3)``.
- ``xpointer(...)`` — an expression evaluated by :mod:`repro.xmlcore.path`,
  optionally rooted at ``id('...')`` or at the document root with ``/``.
- ``xmlns(...)`` — binds a prefix for subsequent ``xpointer()`` parts.

Per the spec, parts are tried left to right and the first one that
identifies a non-empty result wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ShorthandPointer:
    """A bare NCName: the element with that ID."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class ElementSchemePart:
    """An ``element()`` scheme part: optional ID anchor plus child sequence."""

    element_id: str | None
    child_sequence: tuple[int, ...]

    def __str__(self) -> str:
        data = self.element_id or ""
        if self.child_sequence:
            data += "/" + "/".join(str(n) for n in self.child_sequence)
        return f"element({data})"


@dataclass(frozen=True, slots=True)
class XPointerSchemePart:
    """An ``xpointer()`` scheme part holding a path expression."""

    expression: str

    def __str__(self) -> str:
        return f"xpointer({self.expression})"


@dataclass(frozen=True, slots=True)
class XmlnsSchemePart:
    """An ``xmlns()`` part: binds *prefix* to *uri* for later parts."""

    prefix: str
    uri: str

    def __str__(self) -> str:
        return f"xmlns({self.prefix}={self.uri})"


SchemePart = ElementSchemePart | XPointerSchemePart | XmlnsSchemePart


@dataclass(frozen=True, slots=True)
class Pointer:
    """A parsed pointer: shorthand or a tuple of scheme parts."""

    shorthand: ShorthandPointer | None = None
    parts: tuple[SchemePart, ...] = field(default=())

    @property
    def is_shorthand(self) -> bool:
        return self.shorthand is not None

    def __str__(self) -> str:
        if self.shorthand is not None:
            return str(self.shorthand)
        return "".join(str(part) for part in self.parts)
