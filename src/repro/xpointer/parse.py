"""Parse XPointer pointer strings into :class:`~repro.xpointer.model.Pointer`."""

from __future__ import annotations

from repro.xmlcore.names import is_valid_ncname

from .errors import XPointerSyntaxError
from .model import (
    ElementSchemePart,
    Pointer,
    SchemePart,
    ShorthandPointer,
    XmlnsSchemePart,
    XPointerSchemePart,
)

_KNOWN_SCHEMES = ("element", "xpointer", "xmlns")


def parse_pointer(text: str) -> Pointer:
    """Parse *text* (the fragment part of a URI reference, unescaped)."""
    text = text.strip()
    if not text:
        raise XPointerSyntaxError("empty pointer")
    if "(" not in text:
        if not is_valid_ncname(text):
            raise XPointerSyntaxError(f"not a valid shorthand pointer: {text!r}")
        return Pointer(shorthand=ShorthandPointer(text))
    return Pointer(parts=tuple(_parse_parts(text)))


def _parse_parts(text: str) -> list[SchemePart]:
    parts: list[SchemePart] = []
    pos = 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        open_paren = text.find("(", pos)
        if open_paren == -1:
            raise XPointerSyntaxError(f"expected a scheme part at: {text[pos:]!r}")
        scheme = text[pos:open_paren].strip()
        if not is_valid_ncname(scheme):
            raise XPointerSyntaxError(f"invalid scheme name: {scheme!r}")
        data, pos = _read_scheme_data(text, open_paren)
        parts.append(_build_part(scheme, data))
    if not parts:
        raise XPointerSyntaxError(f"no pointer parts in: {text!r}")
    return parts


def _read_scheme_data(text: str, open_paren: int) -> tuple[str, int]:
    """Read the balanced, circumflex-escaped scheme data after *open_paren*."""
    depth = 0
    out: list[str] = []
    pos = open_paren
    while pos < len(text):
        ch = text[pos]
        if ch == "^":
            if pos + 1 >= len(text) or text[pos + 1] not in "()^":
                raise XPointerSyntaxError("'^' must escape '(', ')' or '^'")
            out.append(text[pos + 1])
            pos += 2
            continue
        if ch == "(":
            depth += 1
            if depth > 1:
                out.append(ch)
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return "".join(out), pos + 1
            out.append(ch)
        else:
            out.append(ch)
        pos += 1
    raise XPointerSyntaxError("unbalanced parentheses in pointer")


def _build_part(scheme: str, data: str) -> SchemePart:
    if scheme == "element":
        return _parse_element_scheme(data)
    if scheme == "xpointer":
        if not data.strip():
            raise XPointerSyntaxError("empty xpointer() expression")
        return XPointerSchemePart(data.strip())
    if scheme == "xmlns":
        prefix, eq, uri = data.partition("=")
        if not eq:
            raise XPointerSyntaxError(f"xmlns() needs prefix=uri, got {data!r}")
        prefix, uri = prefix.strip(), uri.strip()
        if not is_valid_ncname(prefix) or not uri:
            raise XPointerSyntaxError(f"bad xmlns() binding: {data!r}")
        return XmlnsSchemePart(prefix, uri)
    raise XPointerSyntaxError(
        f"unknown scheme {scheme!r} (supported: {', '.join(_KNOWN_SCHEMES)})"
    )


def _parse_element_scheme(data: str) -> ElementSchemePart:
    data = data.strip()
    if not data:
        raise XPointerSyntaxError("empty element() pointer")
    element_id: str | None = None
    rest = data
    if not data.startswith("/"):
        element_id, slash, tail = data.partition("/")
        if not is_valid_ncname(element_id):
            raise XPointerSyntaxError(f"bad NCName in element(): {element_id!r}")
        rest = "/" + tail if slash else ""
    sequence: list[int] = []
    if rest:
        if not rest.startswith("/"):
            raise XPointerSyntaxError(f"malformed element() data: {data!r}")
        for chunk in rest[1:].split("/"):
            if not chunk.isdigit() or int(chunk) < 1:
                raise XPointerSyntaxError(
                    f"child sequence steps must be positive integers: {chunk!r}"
                )
            sequence.append(int(chunk))
    if element_id is None and not sequence:
        raise XPointerSyntaxError("element() needs an ID or a child sequence")
    return ElementSchemePart(element_id, tuple(sequence))
