"""Evaluate parsed pointers against a document.

The ``xpointer()`` scheme reuses the :mod:`repro.xmlcore.path` engine for
its step syntax, extended with the two rooted forms the spec makes common:
``id('x')/...`` anchors at the element with that ID, and a leading ``/``
anchors at the document root.  ``xmlns()`` bindings translate prefixed name
tests into the Clark notation the path engine matches exactly.
"""

from __future__ import annotations

import re

from repro.xmlcore.dom import Document, Element

from .errors import XPointerResolutionError, XPointerSyntaxError
from .model import (
    ElementSchemePart,
    Pointer,
    ShorthandPointer,
    XmlnsSchemePart,
    XPointerSchemePart,
)
from .parse import parse_pointer

from repro.xmlcore.path import XmlPathError, query

_ID_CALL_RE = re.compile(r"^id\(\s*(?:'([^']*)'|\"([^\"]*)\")\s*\)\s*(?:/(.*))?$")
_PREFIXED_NAME_RE = re.compile(r"(?<![\w}])([A-Za-z_][\w.\-]*):(?=[A-Za-z_*])")


def resolve_all(document: Document, pointer: Pointer | str) -> list[Element]:
    """All elements the pointer identifies; empty list when none do."""
    if isinstance(pointer, str):
        pointer = parse_pointer(pointer)
    if pointer.is_shorthand:
        return _resolve_shorthand(document, pointer.shorthand)
    bindings: dict[str, str] = {}
    for part in pointer.parts:
        if isinstance(part, XmlnsSchemePart):
            bindings[part.prefix] = part.uri
            continue
        if isinstance(part, ElementSchemePart):
            found = _resolve_element_scheme(document, part)
        elif isinstance(part, XPointerSchemePart):
            found = _resolve_xpointer_scheme(document, part, bindings)
        else:  # pragma: no cover - exhaustive over SchemePart
            found = []
        if found:
            # First part that identifies something wins (XPointer framework).
            return found
    return []


def resolve(document: Document, pointer: Pointer | str) -> Element:
    """The single element the pointer identifies (strict).

    Raises :class:`XPointerResolutionError` when the pointer matches nothing
    or more than one element, which is what link traversal needs: an arc
    must land somewhere specific.
    """
    found = resolve_all(document, pointer)
    if not found:
        raise XPointerResolutionError(f"pointer matches nothing: {pointer}")
    if len(found) > 1:
        raise XPointerResolutionError(
            f"pointer is ambiguous ({len(found)} matches): {pointer}"
        )
    return found[0]


# -- scheme evaluation -------------------------------------------------------


def _resolve_shorthand(document: Document, part: ShorthandPointer) -> list[Element]:
    element = document.element_by_id(part.name)
    return [element] if element is not None else []


def _resolve_element_scheme(
    document: Document, part: ElementSchemePart
) -> list[Element]:
    current: Element
    sequence = part.child_sequence
    if part.element_id is not None:
        anchor = document.element_by_id(part.element_id)
        if anchor is None:
            return []
        current = anchor
    else:
        # A leading /1 selects the document element.
        if not sequence or sequence[0] != 1:
            return []
        try:
            current = document.root_element
        except Exception:
            return []
        sequence = sequence[1:]
    for ordinal in sequence:
        children = current.child_elements()
        if ordinal > len(children):
            return []
        current = children[ordinal - 1]
    return [current]


def _resolve_xpointer_scheme(
    document: Document, part: XPointerSchemePart, bindings: dict[str, str]
) -> list[Element]:
    expression = part.expression.strip()
    context: Document | Element = document

    id_match = _ID_CALL_RE.match(expression)
    if id_match:
        wanted = (
            id_match.group(1) if id_match.group(1) is not None else id_match.group(2)
        )
        anchor = document.element_by_id(wanted)
        if anchor is None:
            return []
        remainder = id_match.group(3)
        if not remainder:
            return [anchor]
        context = anchor
        expression = remainder
    elif expression.startswith("/"):
        expression = expression.lstrip("/")
        prefixless = (
            "//" + expression if part.expression.startswith("//") else expression
        )
        expression = prefixless
        context = document

    expression = _apply_bindings(expression, bindings)
    try:
        results = query(context, expression)
    except XmlPathError as exc:
        raise XPointerSyntaxError(f"bad xpointer() expression: {exc}") from exc
    return [item for item in results if isinstance(item, Element)]


def _apply_bindings(expression: str, bindings: dict[str, str]) -> str:
    """Rewrite ``prefix:name`` tests into Clark notation using xmlns() parts."""
    if not bindings:
        return expression

    def substitute(match: re.Match[str]) -> str:
        prefix = match.group(1)
        if prefix not in bindings:
            raise XPointerSyntaxError(f"undeclared pointer prefix: {prefix!r}")
        return "{" + bindings[prefix] + "}"

    return _PREFIXED_NAME_RE.sub(substitute, expression)
