"""XPointer: addressing into XML documents (shorthand, element(), xpointer()).

The paper pairs XLink with XPointer: "XLink determines the document to
access and XPointer determines the exact point in the document."  This
package is that second half::

    from repro.xmlcore import parse
    from repro.xpointer import resolve

    doc = parse('<m><p id="guitar"><title/></p></m>')
    resolve(doc, "guitar")                   # shorthand → <p>
    resolve(doc, "element(guitar/1)")        # child sequence → <title>
    resolve(doc, "xpointer(//p[@id='guitar'])")
"""

from .errors import XPointerError, XPointerResolutionError, XPointerSyntaxError
from .evaluate import resolve, resolve_all
from .model import (
    ElementSchemePart,
    Pointer,
    SchemePart,
    ShorthandPointer,
    XmlnsSchemePart,
    XPointerSchemePart,
)
from .parse import parse_pointer

__all__ = [
    "ElementSchemePart",
    "Pointer",
    "SchemePart",
    "ShorthandPointer",
    "XPointerError",
    "XPointerResolutionError",
    "XPointerSchemePart",
    "XPointerSyntaxError",
    "XmlnsSchemePart",
    "parse_pointer",
    "resolve",
    "resolve_all",
]
