"""Serialize a DOM back to XML text.

The serializer is the other half of the round-trip property the test suite
leans on: ``parse(serialize(tree))`` must reproduce the same infoset.  It
re-emits recorded prefixes and namespace declarations when they are still
consistent, and synthesizes declarations (``ns0``, ``ns1``, ...) when a
programmatically built tree uses a namespace nobody declared.
"""

from __future__ import annotations

from .dom import (
    CData,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from .errors import XmlTreeError
from .names import XML_NAMESPACE, QName


def escape_text(value: str) -> str:
    """Escape character data (also protects the ``]]>`` pitfall)."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#9;")
        .replace("\n", "&#10;")
        .replace("\r", "&#13;")
    )


class Serializer:
    """Configurable writer; use :func:`serialize` for the common case."""

    def __init__(self, *, indent: str | None = None, xml_declaration: bool = False):
        self._indent = indent
        self._xml_declaration = xml_declaration

    def serialize(self, node: Node) -> str:
        parts: list[str] = []
        if isinstance(node, Document):
            if self._xml_declaration:
                decl = f'<?xml version="1.0" encoding="{node.encoding}"'
                if node.standalone is not None:
                    decl += f' standalone="{"yes" if node.standalone else "no"}"'
                parts.append(decl + "?>")
                if self._indent is not None:
                    parts.append("\n")
            for index, child in enumerate(node.children):
                self._write(child, parts, {"xml": XML_NAMESPACE}, 0)
                if self._indent is not None and index < len(node.children) - 1:
                    parts.append("\n")
        else:
            self._write(node, parts, {"xml": XML_NAMESPACE}, 0)
        return "".join(parts)

    # -- dispatch --------------------------------------------------------

    def _write(
        self,
        node: Node,
        parts: list[str],
        in_scope: dict[str | None, str],
        depth: int,
    ) -> None:
        if isinstance(node, Element):
            self._write_element(node, parts, in_scope, depth)
        elif isinstance(node, CData):
            if "]]>" in node.value:
                raise XmlTreeError("CDATA content may not contain ']]>'")
            parts.append(f"<![CDATA[{node.value}]]>")
        elif isinstance(node, Text):
            parts.append(escape_text(node.value))
        elif isinstance(node, Comment):
            if "--" in node.value:
                raise XmlTreeError("comment content may not contain '--'")
            parts.append(f"<!--{node.value}-->")
        elif isinstance(node, ProcessingInstruction):
            data = f" {node.data}" if node.data else ""
            parts.append(f"<?{node.target}{data}?>")
        else:
            raise XmlTreeError(f"cannot serialize node of type {type(node).__name__}")

    # -- elements ---------------------------------------------------------

    def _write_element(
        self,
        element: Element,
        parts: list[str],
        in_scope: dict[str | None, str],
        depth: int,
    ) -> None:
        scope = dict(in_scope)
        declarations: dict[str | None, str] = {}
        for prefix, uri in element.namespaces.items():
            if scope.get(prefix) != uri:
                declarations[prefix] = uri
                scope[prefix] = uri

        def prefix_for(name: QName, *, is_attribute: bool) -> str | None:
            if name.namespace is None:
                return None
            if name.namespace == XML_NAMESPACE:
                return "xml"
            candidates = [p for p, u in scope.items() if u == name.namespace]
            if is_attribute:
                # Attributes cannot use the default namespace.
                candidates = [p for p in candidates if p is not None]
            if candidates:
                preferred = element.prefix if not is_attribute else None
                if preferred in candidates:
                    return preferred
                return sorted(candidates, key=lambda p: (p is None, p))[0]
            # Nothing in scope: synthesize a declaration.
            counter = 0
            while f"ns{counter}" in scope:
                counter += 1
            prefix = f"ns{counter}"
            declarations[prefix] = name.namespace
            scope[prefix] = name.namespace
            return prefix

        tag_prefix = prefix_for(element.name, is_attribute=False)
        tag = f"{tag_prefix}:{element.name.local}" if tag_prefix else element.name.local
        # An unprefixed tag in no namespace must not sit inside a default
        # namespace declaration, or re-parsing would change its meaning.
        if tag_prefix is None and element.name.namespace is None and scope.get(None):
            declarations[None] = ""
            scope[None] = ""

        # Resolve every attribute prefix *before* writing declarations, since
        # resolution may synthesize new declarations.
        written_attrs: list[tuple[str, str]] = []
        for name, value in element.attributes.items():
            attr_prefix = prefix_for(name, is_attribute=True)
            written = f"{attr_prefix}:{name.local}" if attr_prefix else name.local
            written_attrs.append((written, value))

        attr_parts: list[str] = []
        for prefix in sorted(declarations, key=lambda p: (p is not None, p or "")):
            uri = declarations[prefix]
            if prefix is None:
                attr_parts.append(f' xmlns="{escape_attribute(uri)}"')
            else:
                attr_parts.append(f' xmlns:{prefix}="{escape_attribute(uri)}"')
        for written, value in written_attrs:
            attr_parts.append(f' {written}="{escape_attribute(value)}"')

        children = element.children
        pad = "" if self._indent is None else "\n" + self._indent * (depth + 1)
        closing_pad = "" if self._indent is None else "\n" + self._indent * depth

        if not children:
            parts.append(f"<{tag}{''.join(attr_parts)}/>")
            return
        parts.append(f"<{tag}{''.join(attr_parts)}>")
        # Mixed content (any non-whitespace text child) is never re-indented,
        # because inserting whitespace would change the text.
        mixed = any(
            isinstance(child, Text) and (child.value.strip() or len(children) == 1)
            for child in children
        )
        for child in children:
            if self._indent is not None and not mixed:
                if isinstance(child, Text) and not child.value.strip():
                    continue
                parts.append(pad)
            self._write(child, parts, scope, depth + 1)
        if self._indent is not None and not mixed:
            parts.append(closing_pad)
        parts.append(f"</{tag}>")


def serialize(
    node: Node, *, indent: str | None = None, xml_declaration: bool = False
) -> str:
    """Serialize a node (or document) to a string."""
    return Serializer(indent=indent, xml_declaration=xml_declaration).serialize(node)


def write_file(path: str, node: Node, *, indent: str | None = "  ") -> None:
    """Serialize *node* with an XML declaration into the file at *path*."""
    text = serialize(node, indent=indent, xml_declaration=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
