"""A compact path query language over the DOM.

A pragmatic subset of XPath's abbreviated syntax — enough for stylesheets,
tests and examples to address into documents without hand-rolled loops:

======================  ====================================================
``painting``            child elements named ``painting``
``painting/title``      grandchildren via a child step
``//painting``          descendants at any depth
``*``                   any child element
``.``                   the context node itself
``@id``                 attribute value (string result)
``painting[2]``         1-based positional predicate
``painting[@id='x']``   attribute-equality predicate
``text()``              concatenated text of the context node
======================  ====================================================

Name tests match on the *local* name (namespace-agnostic), matching how the
paper's listings address museum documents; use Clark notation
(``{uri}local``) for an exact expanded-name match.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .dom import Document, Element, _Container
from .errors import XmlError


class XmlPathError(XmlError):
    """The path expression is syntactically invalid."""


@dataclass(frozen=True, slots=True)
class _Step:
    axis: str  # "child" | "descendant" | "self"
    test: str  # name test, "*", "@name", or "text()"
    position: int | None = None
    attr_name: str | None = None
    attr_value: str | None = None


_PREDICATE_RE = re.compile(
    r"""\[\s*(?:
        (?P<pos>\d+)
        |
        @(?P<aname>[\w.\-:{}/]+)\s*=\s*
            (?:'(?P<sq>[^']*)'|"(?P<dq>[^"]*)")
    )\s*\]$""",
    re.VERBOSE,
)


def _parse_step(text: str, axis: str) -> _Step:
    position = None
    attr_name = None
    attr_value = None
    match = _PREDICATE_RE.search(text)
    if match:
        text = text[: match.start()]
        if match.group("pos"):
            position = int(match.group("pos"))
        else:
            attr_name = match.group("aname")
            attr_value = (
                match.group("sq")
                if match.group("sq") is not None
                else match.group("dq")
            )
    if not text:
        raise XmlPathError("empty step in path expression")
    return _Step(axis, text, position, attr_name, attr_value)


def parse_path(expression: str) -> list[_Step]:
    """Parse *expression* into a list of steps (exposed for testing)."""
    if not expression or expression.isspace():
        raise XmlPathError("empty path expression")
    steps: list[_Step] = []
    rest = expression.strip()
    axis = "child"
    if rest.startswith("//"):
        axis = "descendant"
        rest = rest[2:]
    elif rest.startswith("/"):
        raise XmlPathError("absolute paths are not supported; query from a node")
    while rest:
        if rest.startswith("//"):
            axis = "descendant"
            rest = rest[2:]
            if not rest:
                raise XmlPathError("path ends with an axis: nothing to select")
            continue
        if rest.startswith("/"):
            axis = "child"
            rest = rest[1:]
            if not rest:
                raise XmlPathError("path ends with an axis: nothing to select")
            continue
        # A step runs to the next '/' that is not inside a predicate.
        depth = 0
        cut = len(rest)
        for index, ch in enumerate(rest):
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == "/" and depth == 0:
                cut = index
                break
        steps.append(_parse_step(rest[:cut], axis))
        rest = rest[cut:]
        axis = "child"
    if not steps:
        raise XmlPathError(f"no steps in path expression: {expression!r}")
    return steps


def _name_matches(element: Element, test: str) -> bool:
    if test == "*":
        return True
    if test.startswith("{"):
        return element.name.clark() == test
    return element.name.local == test


def _candidates(node: _Container, step: _Step) -> list[Element]:
    if step.axis == "self":
        return [node] if isinstance(node, Element) else []
    if step.axis == "descendant":
        return [el for el in node.iter() if _name_matches(el, step.test)]
    return [el for el in node.child_elements() if _name_matches(el, step.test)]


def _apply_predicates(step: _Step, found: list[Element]) -> list[Element]:
    if step.attr_name is not None:
        found = [el for el in found if el.get(step.attr_name) == step.attr_value]
    if step.position is not None:
        found = [found[step.position - 1]] if 0 < step.position <= len(found) else []
    return found


def query(node: Document | Element, expression: str) -> list[Element | str]:
    """Evaluate *expression* against *node*; see the module docstring.

    Element steps yield elements; ``@attr`` and ``text()`` terminal steps
    yield strings.  Results preserve document order and are deduplicated.
    """
    steps = parse_path(expression)
    context: list[Element | _Container] = [node]
    for index, step in enumerate(steps):
        is_last = index == len(steps) - 1
        if step.test.startswith("@"):
            if not is_last:
                raise XmlPathError("attribute step must be the last step")
            results: list[Element | str] = []
            for item in context:
                if isinstance(item, Element):
                    value = item.get(step.test[1:])
                    if value is not None:
                        results.append(value)
            return results
        if step.test == "text()":
            if not is_last:
                raise XmlPathError("text() must be the last step")
            return [
                item.text_content() for item in context if isinstance(item, _Container)
            ]
        if step.test == ".":
            continue
        next_context: list[Element] = []
        seen: set[int] = set()
        for item in context:
            if not isinstance(item, _Container):
                continue
            for el in _apply_predicates(step, _candidates(item, step)):
                if id(el) not in seen:
                    seen.add(id(el))
                    next_context.append(el)
        context = list(next_context)
    return [item for item in context if isinstance(item, Element)]


def query_one(node: Document | Element, expression: str) -> Element | str | None:
    """First result of :func:`query`, or None."""
    results = query(node, expression)
    return results[0] if results else None
