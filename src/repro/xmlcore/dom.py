"""A small, namespace-aware document object model.

The DOM is the infoset shared by every layer above: the XLink processor
reads attributes off :class:`Element`, the XPointer evaluator walks child
lists, the stylesheet engine pattern-matches on names, and the site builder
diffs serialized trees.  It is deliberately plain — nodes are ordinary
mutable objects with parent pointers — because the paper's pipelines
(data + links + presentation → woven page) are tree transformations, not
streaming ones.
"""

from __future__ import annotations

from typing import Iterator

from .errors import XmlTreeError
from .names import XML_NAMESPACE, QName, is_valid_name, qname


class Node:
    """Base class of every tree participant.

    A node has at most one parent; the parent owns the child list.  All
    structural mutation goes through the parent element/document so the two
    sides of the relationship can never disagree.
    """

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Node | None = None

    # -- tree walking -------------------------------------------------

    def ancestors(self) -> Iterator["Node"]:
        """Yield parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the outermost ancestor (self if detached)."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def document(self) -> "Document | None":
        """Return the owning :class:`Document`, or None if detached."""
        top = self.root()
        return top if isinstance(top, Document) else None

    def detach(self) -> "Node":
        """Remove this node from its parent and return it."""
        if self.parent is None:
            raise XmlTreeError("node has no parent to detach from")
        parent = self.parent
        assert isinstance(parent, _Container)
        parent._children.remove(self)
        self.parent = None
        return self


class _Container(Node):
    """Shared child-list behaviour of :class:`Document` and :class:`Element`."""

    __slots__ = ("_children",)

    def __init__(self) -> None:
        super().__init__()
        self._children: list[Node] = []

    @property
    def children(self) -> tuple[Node, ...]:
        """An immutable snapshot of the child list."""
        return tuple(self._children)

    def _check_insertable(self, node: Node) -> None:
        if isinstance(node, Document):
            raise XmlTreeError("a document cannot be a child node")
        if node.parent is not None:
            raise XmlTreeError("node already has a parent; detach it first")
        if node is self or any(anc is node for anc in self.ancestors()):
            raise XmlTreeError("insertion would create a cycle")

    def append(self, node: Node) -> Node:
        """Append *node* as the last child and return it."""
        self._check_insertable(node)
        self._children.append(node)
        node.parent = self
        return node

    def insert(self, index: int, node: Node) -> Node:
        """Insert *node* at *index* in the child list and return it."""
        self._check_insertable(node)
        self._children.insert(index, node)
        node.parent = self
        return node

    def remove(self, node: Node) -> Node:
        """Remove the given child and return it."""
        if node.parent is not self:
            raise XmlTreeError("node is not a child of this container")
        return node.detach()

    def clear_children(self) -> None:
        """Detach all children."""
        for child in list(self._children):
            child.detach()

    # -- element-oriented traversal ------------------------------------

    def child_elements(self) -> list["Element"]:
        """The children that are elements, in document order."""
        return [c for c in self._children if isinstance(c, Element)]

    def iter(self, name: str | QName | None = None) -> Iterator["Element"]:
        """Yield descendant elements in document order, optionally filtered.

        *name* may be a local name (matches regardless of namespace), Clark
        notation, or a :class:`QName` (matches the expanded name exactly).
        """
        want = _as_matcher(name)
        for child in self._children:
            if isinstance(child, Element):
                if want(child):
                    yield child
                yield from child.iter(name)

    def find(self, name: str | QName | None = None) -> "Element | None":
        """First matching descendant element, or None."""
        return next(self.iter(name), None)

    def findall(self, name: str | QName | None = None) -> list["Element"]:
        """All matching descendant elements in document order."""
        return list(self.iter(name))

    def text_content(self) -> str:
        """Concatenated character data of all descendant text/CDATA nodes."""
        parts: list[str] = []
        for child in self._children:
            if isinstance(child, Text):
                parts.append(child.value)
            elif isinstance(child, _Container):
                parts.append(child.text_content())
        return "".join(parts)


def _as_matcher(name: str | QName | None):
    if name is None:
        return lambda el: True
    if isinstance(name, str) and not name.startswith("{"):
        return lambda el: el.name.local == name
    want = qname(name) if isinstance(name, str) else name
    return lambda el: el.name == want


class Document(_Container):
    """The root container: one document element plus comments and PIs."""

    __slots__ = ("encoding", "standalone")

    def __init__(self, encoding: str = "UTF-8", standalone: bool | None = None):
        super().__init__()
        self.encoding = encoding
        self.standalone = standalone

    @property
    def root_element(self) -> "Element":
        """The single document element.

        Raises :class:`XmlTreeError` when the document is still empty,
        because downstream processors (XLink, stylesheets) cannot do
        anything useful with a rootless document.
        """
        for child in self._children:
            if isinstance(child, Element):
                return child
        raise XmlTreeError("document has no root element")

    def append(self, node: Node) -> Node:
        if isinstance(node, Element) and self.child_elements():
            raise XmlTreeError("document already has a root element")
        if isinstance(node, Text) and node.value.strip():
            raise XmlTreeError("character data is not allowed at document level")
        return super().append(node)

    def element_by_id(self, value: str) -> "Element | None":
        """Find the element whose ID attribute equals *value*.

        Without a DTD we treat ``xml:id`` and plain ``id`` as ID attributes,
        the same heuristic XPointer processors applied to DTD-less documents.
        """
        for el in self.iter():
            if el.get_id() == value:
                return el
        return None


class Element(_Container):
    """An element: expanded name, attributes, namespace declarations, children."""

    __slots__ = ("name", "prefix", "_attributes", "namespaces")

    def __init__(
        self,
        name: str | QName,
        attributes: dict[str | QName, str] | None = None,
        *,
        prefix: str | None = None,
        namespaces: dict[str | None, str] | None = None,
    ):
        super().__init__()
        self.name = qname(name) if isinstance(name, str) else name
        #: The prefix this element was written with (serialization fidelity).
        self.prefix = prefix
        #: Namespace declarations made *on this element* (prefix → URI;
        #: the None key is the default namespace).
        self.namespaces: dict[str | None, str] = dict(namespaces or {})
        self._attributes: dict[QName, str] = {}
        for key, value in (attributes or {}).items():
            self.set(key, value)

    # -- attributes -----------------------------------------------------

    @property
    def attributes(self) -> dict[QName, str]:
        """A copy of the attribute map (expanded name → value)."""
        return dict(self._attributes)

    def get(self, name: str | QName, default: str | None = None) -> str | None:
        """Attribute value by local name, Clark notation, or QName."""
        key = self._attr_key(name)
        if key is not None:
            return self._attributes[key]
        return default

    def set(self, name: str | QName, value: str) -> None:
        """Set an attribute; *name* as local name, Clark notation, or QName."""
        key = qname(name) if isinstance(name, str) else name
        self._attributes[key] = str(value)

    def delete(self, name: str | QName) -> None:
        """Remove an attribute if present."""
        key = self._attr_key(name)
        if key is not None:
            del self._attributes[key]

    def has(self, name: str | QName) -> bool:
        """True if the attribute exists."""
        return self._attr_key(name) is not None

    def _attr_key(self, name: str | QName) -> QName | None:
        if isinstance(name, QName):
            return name if name in self._attributes else None
        if name.startswith("{"):
            want = QName.from_clark(name)
            return want if want in self._attributes else None
        # Local-name lookup: prefer the no-namespace attribute, else any
        # namespace-qualified attribute with that local part.
        plain = QName(None, name) if is_valid_name(name) and ":" not in name else None
        if plain is not None and plain in self._attributes:
            return plain
        for key in self._attributes:
            if key.local == name:
                return key
        return None

    def get_id(self) -> str | None:
        """The element's ID under the xml:id / bare-id heuristic."""
        xml_id = self.get(QName(XML_NAMESPACE, "id"))
        if xml_id is not None:
            return xml_id
        return self.get(QName(None, "id"))

    # -- namespace scope --------------------------------------------------

    def namespace_for_prefix(self, prefix: str | None) -> str | None:
        """Resolve *prefix* against the in-scope declarations."""
        if prefix == "xml":
            return XML_NAMESPACE
        node: Node | None = self
        while node is not None:
            if isinstance(node, Element) and prefix in node.namespaces:
                # An empty value is the xmlns="" undeclaration: no namespace.
                return node.namespaces[prefix] or None
            node = node.parent
        return None

    def prefix_for_namespace(self, uri: str) -> str | None:
        """Find an in-scope prefix bound to *uri* (None = default namespace)."""
        if uri == XML_NAMESPACE:
            return "xml"
        node: Node | None = self
        seen: set[str | None] = set()
        while node is not None:
            if isinstance(node, Element):
                for pfx, bound in node.namespaces.items():
                    if pfx in seen:
                        continue
                    seen.add(pfx)
                    if bound == uri:
                        return pfx
            node = node.parent
        return None

    # -- convenience construction ------------------------------------------

    def subelement(
        self,
        name: str | QName,
        attributes: dict[str | QName, str] | None = None,
        text: str | None = None,
    ) -> "Element":
        """Create, append and return a child element (optionally with text)."""
        child = Element(name, attributes)
        self.append(child)
        if text is not None:
            child.append(Text(text))
        return child

    def add_text(self, value: str) -> "Text":
        """Append a text node and return it."""
        node = Text(value)
        self.append(node)
        return node

    def child_index(self, child: Node) -> int:
        """Position of *child* among this element's children."""
        for i, c in enumerate(self._children):
            if c is child:
                return i
        raise XmlTreeError("node is not a child of this element")

    def element_index(self) -> int:
        """1-based position of this element among its element siblings.

        This is the ordinal XPointer child sequences count by.
        """
        if self.parent is None or not isinstance(self.parent, _Container):
            return 1
        position = 0
        for sibling in self.parent._children:
            if isinstance(sibling, Element):
                position += 1
                if sibling is self:
                    return position
        raise XmlTreeError("element not found among parent's children")

    def __repr__(self) -> str:
        return (
            f"<Element {self.name.clark()} attrs={len(self._attributes)} "
            f"children={len(self._children)}>"
        )


class Text(Node):
    """Character data."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"<Text {self.value!r}>"


class CData(Text):
    """A CDATA section; behaves as text but serializes as ``<![CDATA[...]]>``."""

    __slots__ = ()


class Comment(Node):
    """An XML comment."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"<Comment {self.value!r}>"


class ProcessingInstruction(Node):
    """A processing instruction, e.g. ``<?xml-stylesheet ...?>``."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = ""):
        super().__init__()
        self.target = target
        self.data = data

    def __repr__(self) -> str:
        return f"<PI {self.target} {self.data!r}>"


def ensure_document(node: Document | Element) -> Document:
    """Wrap a bare element in a document (no-op for documents)."""
    if isinstance(node, Document):
        return node
    doc = Document()
    doc.append(node)
    return doc


def iter_tree(node: Node) -> Iterator[Node]:
    """Depth-first pre-order walk over *node* and all its descendants."""
    yield node
    if isinstance(node, _Container):
        for child in node.children:
            yield from iter_tree(child)


def deep_copy(node: Node) -> Node:
    """Structural copy of a node and its subtree (detached)."""
    if isinstance(node, Document):
        doc = Document(encoding=node.encoding, standalone=node.standalone)
        for child in node.children:
            doc.append(deep_copy(child))
        return doc
    if isinstance(node, Element):
        clone = Element(
            node.name,
            prefix=node.prefix,
            namespaces=dict(node.namespaces),
        )
        for key, value in node.attributes.items():
            clone.set(key, value)
        for child in node.children:
            clone.append(deep_copy(child))
        return clone
    if isinstance(node, CData):
        return CData(node.value)
    if isinstance(node, Text):
        return Text(node.value)
    if isinstance(node, Comment):
        return Comment(node.value)
    if isinstance(node, ProcessingInstruction):
        return ProcessingInstruction(node.target, node.data)
    raise XmlTreeError(f"cannot copy node of type {type(node).__name__}")
