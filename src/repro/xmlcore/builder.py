"""Ergonomic tree construction.

The examples and the site builder create a lot of small documents; writing
them as nested :func:`build` calls keeps the shape of the markup visible in
the Python source:

    tree = build(
        "painting",
        {"id": "guitar"},
        build("title", {}, "Guitar"),
        build("year", {}, "1913"),
    )

:class:`ElementMaker` offers the attribute-access style used by lxml's
E-factory, bound to an optional namespace:

    E = ElementMaker(namespace=XLINK_NAMESPACE)
    E.locator({"href": "picasso.xml"})
"""

from __future__ import annotations

from .dom import Comment, Element, Node, ProcessingInstruction, Text
from .names import QName


def build(
    name: str | QName,
    attributes: dict[str | QName, str] | None = None,
    *children: Node | str,
    namespaces: dict[str | None, str] | None = None,
) -> Element:
    """Create an element with attributes and children in one expression.

    When *namespaces* declares a default namespace, a plain string *name*
    is placed in it — matching what re-parsing the serialized form yields.
    """
    if (
        isinstance(name, str)
        and not name.startswith("{")
        and namespaces
        and namespaces.get(None)
    ):
        name = QName(namespaces[None], name)
    element = Element(name, attributes, namespaces=namespaces or {})
    for child in children:
        element.append(Text(child) if isinstance(child, str) else child)
    return element


def text(value: str) -> Text:
    """Create a text node."""
    return Text(value)


def comment(value: str) -> Comment:
    """Create a comment node."""
    return Comment(value)


def pi(target: str, data: str = "") -> ProcessingInstruction:
    """Create a processing instruction."""
    return ProcessingInstruction(target, data)


class ElementMaker:
    """Factory whose attribute access mints elements in a fixed namespace."""

    def __init__(self, namespace: str | None = None, prefix: str | None = None):
        self._namespace = namespace
        self._prefix = prefix

    def __call__(
        self,
        name: str,
        attributes: dict[str | QName, str] | None = None,
        *children: Node | str,
    ) -> Element:
        element = Element(QName(self._namespace, name), attributes, prefix=self._prefix)
        if self._namespace is not None:
            element.namespaces.setdefault(self._prefix, self._namespace)
        for child in children:
            element.append(Text(child) if isinstance(child, str) else child)
        return element

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        def make(
            attributes: dict[str | QName, str] | None = None, *children: Node | str
        ) -> Element:
            return self(name, attributes, *children)

        return make
