"""Assemble tokens into a namespace-resolved DOM.

The parser enforces the well-formedness rules that only make sense with
tree context (tag matching, one root element, unique expanded attribute
names) and resolves namespace prefixes against the declaration scope, so
every :class:`~repro.xmlcore.dom.Element` carries fully expanded
:class:`~repro.xmlcore.names.QName` values — which is what the XLink layer
keys on.
"""

from __future__ import annotations

from .dom import CData, Comment, Document, Element, ProcessingInstruction, Text
from .errors import XmlNamespaceError, XmlWellFormednessError
from .names import XML_NAMESPACE, XMLNS_NAMESPACE, QName, split_qname
from .tokenizer import (
    CDataToken,
    CommentToken,
    DoctypeToken,
    EndTagToken,
    PIToken,
    StartTagToken,
    TextToken,
    XmlDeclToken,
    tokenize,
)


class Parser:
    """A one-document parser; use :func:`parse` for the common case."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)

    def parse(self) -> Document:
        document = Document()
        # (element, tag-name-as-written) pairs; tag names must match textually.
        stack: list[tuple[Element, str]] = []
        seen_root = False

        for index, token in enumerate(self._tokens):
            if isinstance(token, XmlDeclToken):
                if index != 0:
                    raise XmlWellFormednessError(
                        "XML declaration must come first", token.line, token.column
                    )
                if token.encoding:
                    document.encoding = token.encoding
                document.standalone = token.standalone
            elif isinstance(token, DoctypeToken):
                if seen_root:
                    raise XmlWellFormednessError(
                        "DOCTYPE must precede the root element",
                        token.line,
                        token.column,
                    )
            elif isinstance(token, StartTagToken):
                if not stack and seen_root:
                    raise XmlWellFormednessError(
                        f"content after document element: <{token.name}>",
                        token.line,
                        token.column,
                    )
                element = self._build_element(token, stack)
                if stack:
                    stack[-1][0].append(element)
                else:
                    document.append(element)
                    seen_root = True
                if not token.self_closing:
                    stack.append((element, token.name))
            elif isinstance(token, EndTagToken):
                if not stack:
                    raise XmlWellFormednessError(
                        f"unexpected end tag </{token.name}>", token.line, token.column
                    )
                _, open_name = stack.pop()
                if token.name != open_name:
                    raise XmlWellFormednessError(
                        f"end tag </{token.name}> does not match <{open_name}>",
                        token.line,
                        token.column,
                    )
            elif isinstance(token, (TextToken, CDataToken)):
                node = (
                    CData(token.value)
                    if isinstance(token, CDataToken)
                    else Text(token.value)
                )
                if stack:
                    stack[-1][0].append(node)
                elif token.value.strip():
                    raise XmlWellFormednessError(
                        "character data outside the document element",
                        token.line,
                        token.column,
                    )
            elif isinstance(token, CommentToken):
                target = stack[-1][0] if stack else document
                target.append(Comment(token.value))
            elif isinstance(token, PIToken):
                target = stack[-1][0] if stack else document
                target.append(ProcessingInstruction(token.target, token.data))
            else:  # pragma: no cover - the tokenizer emits no other types
                raise XmlWellFormednessError(f"unhandled token {token!r}")

        if stack:
            element, name = stack[-1]
            raise XmlWellFormednessError(f"unclosed element <{name}>")
        if not seen_root:
            raise XmlWellFormednessError("document has no root element")
        return document

    # -- element construction ----------------------------------------------

    def _build_element(
        self, token: StartTagToken, stack: list[tuple[Element, str]]
    ) -> Element:
        declarations, plain_attrs = self._split_declarations(token)
        parent = stack[-1][0] if stack else None

        def resolve(prefix: str | None) -> str | None:
            if prefix in declarations:
                return declarations[prefix] or None
            if prefix == "xml":
                return XML_NAMESPACE
            if parent is not None:
                return parent.namespace_for_prefix(prefix)
            return None

        try:
            prefix, local = split_qname(token.name)
        except ValueError as exc:
            raise XmlWellFormednessError(str(exc), token.line, token.column)
        namespace = resolve(prefix)
        if prefix is not None and namespace is None:
            raise XmlNamespaceError(
                f"undeclared namespace prefix: {prefix!r}", token.line, token.column
            )
        element = Element(
            QName(namespace, local), prefix=prefix, namespaces=declarations
        )

        seen: set[QName] = set()
        for attr_name, value in plain_attrs:
            try:
                attr_prefix, attr_local = split_qname(attr_name)
            except ValueError as exc:
                raise XmlWellFormednessError(str(exc), token.line, token.column)
            if attr_prefix is None:
                # Unprefixed attributes are in no namespace, per the spec.
                attr_qname = QName(None, attr_local)
            else:
                attr_ns = resolve(attr_prefix)
                if attr_ns is None:
                    raise XmlNamespaceError(
                        f"undeclared namespace prefix: {attr_prefix!r}",
                        token.line,
                        token.column,
                    )
                attr_qname = QName(attr_ns, attr_local)
            if attr_qname in seen:
                raise XmlWellFormednessError(
                    f"duplicate attribute {attr_qname.clark()!r}",
                    token.line,
                    token.column,
                )
            seen.add(attr_qname)
            element.set(attr_qname, value)
        return element

    @staticmethod
    def _split_declarations(
        token: StartTagToken,
    ) -> tuple[dict[str | None, str], list[tuple[str, str]]]:
        declarations: dict[str | None, str] = {}
        plain: list[tuple[str, str]] = []
        for name, value in token.attributes:
            if name == "xmlns":
                declarations[None] = value
            elif name.startswith("xmlns:"):
                prefix = name[len("xmlns:") :]
                if prefix == "xmlns":
                    raise XmlNamespaceError(
                        "the 'xmlns' prefix cannot be declared",
                        token.line,
                        token.column,
                    )
                if prefix == "xml" and value != XML_NAMESPACE:
                    raise XmlNamespaceError(
                        "the 'xml' prefix is bound to the XML namespace",
                        token.line,
                        token.column,
                    )
                if not value:
                    raise XmlNamespaceError(
                        f"cannot undeclare prefix {prefix!r} (Namespaces 1.0)",
                        token.line,
                        token.column,
                    )
                if value in (XMLNS_NAMESPACE,):
                    raise XmlNamespaceError(
                        "the xmlns namespace cannot be bound to a prefix",
                        token.line,
                        token.column,
                    )
                declarations[prefix] = value
            else:
                plain.append((name, value))
        return declarations, plain


def parse(source: str) -> Document:
    """Parse an XML string into a :class:`~repro.xmlcore.dom.Document`."""
    return Parser(source).parse()


def parse_element(source: str) -> Element:
    """Parse an XML string and return its root element."""
    return parse(source).root_element


def parse_file(path: str) -> Document:
    """Parse the UTF-8 XML file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read())
