"""From-scratch XML substrate: tokenizer, parser, DOM, paths, serializer.

This package stands in for the W3C XML 1.0 stack the paper assumes.  It is
namespace-aware (Namespaces in XML 1.0) because XLink lives entirely in
attribute namespaces, and DTD-less by design (IDs via ``xml:id``/``id``).

Quick tour::

    from repro.xmlcore import parse, serialize, build

    doc = parse('<painting id="guitar"><title>Guitar</title></painting>')
    doc.root_element.find("title").text_content()   # 'Guitar'
    serialize(doc.root_element)                      # round-trips
"""

from .builder import ElementMaker, build, comment, pi, text
from .dom import (
    CData,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    deep_copy,
    ensure_document,
    iter_tree,
)
from .errors import (
    XmlError,
    XmlNamespaceError,
    XmlSyntaxError,
    XmlTreeError,
    XmlWellFormednessError,
)
from .names import (
    XLINK_NAMESPACE,
    XML_NAMESPACE,
    XMLNS_NAMESPACE,
    QName,
    is_valid_name,
    is_valid_ncname,
    qname,
    split_qname,
)
from .parser import parse, parse_element, parse_file
from .path import XmlPathError, query, query_one
from .serializer import escape_attribute, escape_text, serialize, write_file

__all__ = [
    "CData",
    "Comment",
    "Document",
    "Element",
    "ElementMaker",
    "Node",
    "ProcessingInstruction",
    "QName",
    "Text",
    "XLINK_NAMESPACE",
    "XML_NAMESPACE",
    "XMLNS_NAMESPACE",
    "XmlError",
    "XmlNamespaceError",
    "XmlPathError",
    "XmlSyntaxError",
    "XmlTreeError",
    "XmlWellFormednessError",
    "build",
    "comment",
    "deep_copy",
    "ensure_document",
    "escape_attribute",
    "escape_text",
    "is_valid_name",
    "is_valid_ncname",
    "iter_tree",
    "parse",
    "parse_element",
    "parse_file",
    "pi",
    "qname",
    "query",
    "query_one",
    "serialize",
    "split_qname",
    "text",
    "write_file",
]
