"""XML names, qualified names and namespace constants.

Implements the practically relevant subset of *Namespaces in XML 1.0*: name
validity checks, prefix/local-part splitting, and the reserved ``xml`` /
``xmlns`` bindings.  Expanded names are modelled by :class:`QName`, an
immutable ``(namespace, local)`` pair that compares by value so it can key
dictionaries in the XLink and weaving layers.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Namespace URI permanently bound to the ``xml`` prefix.
XML_NAMESPACE = "http://www.w3.org/XML/1998/namespace"
#: Namespace URI permanently bound to the ``xmlns`` prefix.
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"
#: The XLink namespace, used pervasively by :mod:`repro.xlink`.
XLINK_NAMESPACE = "http://www.w3.org/1999/xlink"

_NAME_START_EXTRA = "_"
_NAME_EXTRA = "_-.·"


def is_name_start_char(ch: str) -> bool:
    """Return True if *ch* may begin an XML name.

    We accept the ASCII productions plus any non-ASCII letter, which covers
    every document this library produces or consumes (the full Unicode
    ranges of the spec add only exotic combining blocks).
    """
    return ch.isalpha() or ch in _NAME_START_EXTRA or ord(ch) > 0x7F


def is_name_char(ch: str) -> bool:
    """Return True if *ch* may appear after the first character of a name."""
    return is_name_start_char(ch) or ch.isdigit() or ch in _NAME_EXTRA


def is_valid_name(name: str) -> bool:
    """Check the XML ``Name`` production (used for tag and attribute names).

    Colons are permitted here (the Name production allows them); NCName
    validity is the stricter check namespace processing applies.
    """
    if not name:
        return False
    if not (is_name_start_char(name[0]) or name[0] == ":"):
        return False
    return all(is_name_char(ch) or ch == ":" for ch in name[1:])


def is_valid_ncname(name: str) -> bool:
    """Check the ``NCName`` production: a Name with no colon."""
    return is_valid_name(name) and ":" not in name


def split_qname(name: str) -> tuple[str | None, str]:
    """Split ``prefix:local`` into ``(prefix, local)``; prefix is None if absent.

    Raises :class:`ValueError` for names that are not lexically valid QNames
    (empty parts or more than one colon), because silently accepting them
    would let malformed linkbases round-trip undetected.
    """
    if name.count(":") > 1:
        raise ValueError(f"not a valid QName (multiple colons): {name!r}")
    if ":" not in name:
        if not is_valid_ncname(name):
            raise ValueError(f"not a valid NCName: {name!r}")
        return None, name
    prefix, local = name.split(":")
    if not is_valid_ncname(prefix) or not is_valid_ncname(local):
        raise ValueError(f"not a valid QName: {name!r}")
    return prefix, local


@dataclass(frozen=True, slots=True)
class QName:
    """An expanded name: namespace URI (or None) plus local part.

    ``QName(None, "painting")`` is a name in no namespace;
    ``QName(XLINK_NAMESPACE, "href")`` is the familiar ``xlink:href``.
    """

    namespace: str | None
    local: str

    def __post_init__(self) -> None:
        if not is_valid_ncname(self.local):
            raise ValueError(f"invalid local name: {self.local!r}")
        if self.namespace is not None and not self.namespace:
            raise ValueError("namespace must be None or a non-empty URI")

    def clark(self) -> str:
        """Render in Clark notation, ``{uri}local``, the canonical text form."""
        if self.namespace is None:
            return self.local
        return f"{{{self.namespace}}}{self.local}"

    @classmethod
    def from_clark(cls, text: str) -> "QName":
        """Parse Clark notation produced by :meth:`clark`."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            if not uri or not local:
                raise ValueError(f"malformed Clark name: {text!r}")
            return cls(uri, local)
        return cls(None, text)

    def __str__(self) -> str:
        return self.clark()


def qname(name: str, namespace: str | None = None) -> QName:
    """Convenience constructor accepting either Clark notation or a local name."""
    if name.startswith("{"):
        return QName.from_clark(name)
    return QName(namespace, name)
