"""Error types raised by the :mod:`repro.xmlcore` substrate.

Every error carries an optional source position (line and column, both
1-based) so that callers can report *where* a document is malformed, which
matters once linkbases and navigation specs are hand-edited XML files.
"""

from __future__ import annotations


class XmlError(Exception):
    """Base class for all XML substrate errors."""

    def __init__(
        self, message: str, line: int | None = None, column: int | None = None
    ):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is None:
            return self.message
        return f"{self.message} (line {self.line}, column {self.column})"


class XmlSyntaxError(XmlError):
    """The raw character stream is not well-formed XML."""


class XmlWellFormednessError(XmlError):
    """Tokens were individually valid but violate a well-formedness rule.

    Examples: mismatched end tag, duplicate attribute, content after the
    document element, more than one document element.
    """


class XmlNamespaceError(XmlError):
    """A qualified name uses an undeclared or reserved namespace prefix."""


class XmlTreeError(XmlError):
    """An illegal DOM mutation was attempted.

    Examples: inserting a node that would create a cycle, attaching a
    document as a child, detaching a node that has no parent.
    """
