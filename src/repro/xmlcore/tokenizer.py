"""A hand-written XML tokenizer.

Turns a character stream into a flat sequence of markup tokens; the parser
in :mod:`repro.xmlcore.parser` assembles those into a DOM.  The split keeps
each half small and independently testable, and mirrors how the paper's
stack is layered: lexical XML below, namespaces and linking semantics above.

The tokenizer handles the full syntax this library emits or reads: start/end
/empty tags with attributes, character data with entity and character
references, CDATA sections, comments, processing instructions, the XML
declaration, and (skipped) internal-subset-free DOCTYPE declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import XmlSyntaxError
from .names import is_name_char, is_name_start_char

PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


@dataclass(frozen=True, slots=True)
class Token:
    """Base token; *line*/*column* point at the first character."""

    line: int
    column: int


@dataclass(frozen=True, slots=True)
class StartTagToken(Token):
    name: str
    attributes: tuple[tuple[str, str], ...] = field(default=())
    self_closing: bool = False


@dataclass(frozen=True, slots=True)
class EndTagToken(Token):
    name: str


@dataclass(frozen=True, slots=True)
class TextToken(Token):
    value: str


@dataclass(frozen=True, slots=True)
class CDataToken(Token):
    value: str


@dataclass(frozen=True, slots=True)
class CommentToken(Token):
    value: str


@dataclass(frozen=True, slots=True)
class PIToken(Token):
    target: str
    data: str


@dataclass(frozen=True, slots=True)
class XmlDeclToken(Token):
    version: str
    encoding: str | None
    standalone: bool | None


@dataclass(frozen=True, slots=True)
class DoctypeToken(Token):
    name: str


class Tokenizer:
    """Single-pass tokenizer over an in-memory string."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    # -- low-level cursor ---------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._source[index] if index < len(self._source) else ""

    def _advance(self, count: int = 1) -> str:
        taken = self._source[self._pos : self._pos + count]
        for ch in taken:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return taken

    def _at_end(self) -> bool:
        return self._pos >= len(self._source)

    def _error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self._line, self._column)

    def _expect(self, literal: str) -> None:
        if not self._source.startswith(literal, self._pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_whitespace(self) -> bool:
        skipped = False
        while self._peek() in (" ", "\t", "\r", "\n") and not self._at_end():
            self._advance()
            skipped = True
        return skipped

    def _read_until(self, terminator: str, what: str) -> str:
        end = self._source.find(terminator, self._pos)
        if end == -1:
            raise self._error(f"unterminated {what}")
        value = self._source[self._pos : end]
        self._advance(end - self._pos + len(terminator))
        return value

    def _read_name(self) -> str:
        start = self._pos
        if not is_name_start_char(self._peek()) and self._peek() != ":":
            raise self._error("expected a name")
        while not self._at_end():
            ch = self._peek()
            if is_name_char(ch) or ch == ":":
                self._advance()
            else:
                break
        return self._source[start : self._pos]

    # -- references ---------------------------------------------------------

    def _read_reference(self) -> str:
        """Decode one ``&...;`` reference; the leading ``&`` is current."""
        self._expect("&")
        if self._peek() == "#":
            self._advance()
            if self._peek() in ("x", "X"):
                self._advance()
                digits = self._read_until(";", "character reference")
                try:
                    code = int(digits, 16)
                except ValueError:
                    raise self._error(f"bad hex character reference: {digits!r}")
            else:
                digits = self._read_until(";", "character reference")
                try:
                    code = int(digits, 10)
                except ValueError:
                    raise self._error(f"bad character reference: {digits!r}")
            try:
                return chr(code)
            except (ValueError, OverflowError):
                raise self._error(f"character reference out of range: {code}")
        name = self._read_until(";", "entity reference")
        if name not in PREDEFINED_ENTITIES:
            raise self._error(f"unknown entity: &{name};")
        return PREDEFINED_ENTITIES[name]

    # -- token producers ------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Tokenize the whole input and return the token list."""
        out: list[Token] = []
        while not self._at_end():
            line, column = self._line, self._column
            if self._peek() == "<":
                out.append(self._read_markup(line, column))
            else:
                out.append(self._read_text(line, column))
        return out

    def _read_text(self, line: int, column: int) -> TextToken:
        parts: list[str] = []
        while not self._at_end() and self._peek() != "<":
            if self._peek() == "&":
                parts.append(self._read_reference())
            elif self._source.startswith("]]>", self._pos):
                raise self._error("']]>' is not allowed in character data")
            else:
                parts.append(self._advance())
        return TextToken(line, column, "".join(parts))

    def _read_markup(self, line: int, column: int) -> Token:
        if self._source.startswith("<![CDATA[", self._pos):
            self._advance(len("<![CDATA["))
            value = self._read_until("]]>", "CDATA section")
            return CDataToken(line, column, value)
        if self._source.startswith("<!--", self._pos):
            self._advance(4)
            value = self._read_until("-->", "comment")
            if "--" in value:
                raise self._error("'--' is not allowed inside a comment")
            return CommentToken(line, column, value)
        if self._source.startswith("<!DOCTYPE", self._pos):
            return self._read_doctype(line, column)
        if self._source.startswith("<?", self._pos):
            return self._read_pi(line, column)
        if self._source.startswith("</", self._pos):
            self._advance(2)
            name = self._read_name()
            self._skip_whitespace()
            self._expect(">")
            return EndTagToken(line, column, name)
        return self._read_start_tag(line, column)

    def _read_doctype(self, line: int, column: int) -> DoctypeToken:
        self._advance(len("<!DOCTYPE"))
        self._skip_whitespace()
        name = self._read_name()
        # Skip external id / internal subset without interpreting it; the
        # library is DTD-less by design (ids use xml:id, see dom.Document).
        depth = 0
        while not self._at_end():
            ch = self._advance()
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                return DoctypeToken(line, column, name)
        raise self._error("unterminated DOCTYPE declaration")

    def _read_pi(self, line: int, column: int) -> Token:
        self._advance(2)
        target = self._read_name()
        had_space = self._skip_whitespace()
        data = self._read_until("?>", "processing instruction")
        if target.lower() == "xml":
            if target != "xml":
                raise self._error("the XML declaration target must be lowercase 'xml'")
            return self._parse_xml_decl(line, column, data)
        if data and not had_space:
            raise self._error("whitespace required between PI target and data")
        return PIToken(line, column, target, data)

    def _parse_xml_decl(self, line: int, column: int, data: str) -> XmlDeclToken:
        pseudo = dict(_parse_pseudo_attributes(data, self._error))
        version = pseudo.pop("version", None)
        if version != "1.0":
            raise self._error(f"unsupported XML version: {version!r}")
        encoding = pseudo.pop("encoding", None)
        standalone_text = pseudo.pop("standalone", None)
        if pseudo:
            raise self._error(f"unexpected XML declaration attribute: {sorted(pseudo)}")
        standalone: bool | None = None
        if standalone_text is not None:
            if standalone_text not in ("yes", "no"):
                raise self._error("standalone must be 'yes' or 'no'")
            standalone = standalone_text == "yes"
        return XmlDeclToken(line, column, version, encoding, standalone)

    def _read_start_tag(self, line: int, column: int) -> StartTagToken:
        self._expect("<")
        name = self._read_name()
        attributes: list[tuple[str, str]] = []
        while True:
            had_space = self._skip_whitespace()
            ch = self._peek()
            if ch == ">":
                self._advance()
                return StartTagToken(line, column, name, tuple(attributes), False)
            if self._source.startswith("/>", self._pos):
                self._advance(2)
                return StartTagToken(line, column, name, tuple(attributes), True)
            if self._at_end():
                raise self._error(f"unterminated start tag <{name}>")
            if not had_space:
                raise self._error("whitespace required before attribute")
            attributes.append(self._read_attribute())

    def _read_attribute(self) -> tuple[str, str]:
        name = self._read_name()
        self._skip_whitespace()
        self._expect("=")
        self._skip_whitespace()
        quote = self._peek()
        if quote not in ("'", '"'):
            raise self._error("attribute value must be quoted")
        self._advance()
        parts: list[str] = []
        while True:
            ch = self._peek()
            if self._at_end():
                raise self._error(f"unterminated value for attribute {name!r}")
            if ch == quote:
                self._advance()
                break
            if ch == "<":
                raise self._error("'<' is not allowed in attribute values")
            if ch == "&":
                parts.append(self._read_reference())
            elif ch in ("\t", "\n", "\r"):
                # Attribute-value normalization: whitespace becomes a space.
                self._advance()
                parts.append(" ")
            else:
                parts.append(self._advance())
        return name, "".join(parts)


def _parse_pseudo_attributes(data: str, error):
    """Parse ``name="value"`` pairs inside an XML declaration."""
    pos = 0
    while pos < len(data):
        while pos < len(data) and data[pos].isspace():
            pos += 1
        if pos >= len(data):
            return
        eq = data.find("=", pos)
        if eq == -1:
            raise error("malformed XML declaration")
        name = data[pos:eq].strip()
        rest = data[eq + 1 :].lstrip()
        consumed = len(data) - len(rest)
        if not rest or rest[0] not in ("'", '"'):
            raise error("XML declaration values must be quoted")
        quote = rest[0]
        end = rest.find(quote, 1)
        if end == -1:
            raise error("unterminated XML declaration value")
        yield name, rest[1:end]
        pos = consumed + end + 1


def tokenize(source: str) -> list[Token]:
    """Tokenize *source* and return the token list."""
    return Tokenizer(source).tokens()
