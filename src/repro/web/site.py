"""Static sites: a set of built pages, servable to the user agent.

:class:`StaticSite` is the common output format of every pipeline in the
repo — the tangled baseline, the XLink-separated build and the woven build
all end as one of these — so the same user agent, crawler and differ work
on each, which is what makes the comparisons fair.
"""

from __future__ import annotations

import posixpath

from repro.navigation import PageAnchor, PageView
from repro.xlink import resolve_uri

from .errors import SiteError
from .html import HtmlPage


class StaticSite:
    """Pages keyed by site-relative path."""

    def __init__(self) -> None:
        self._pages: dict[str, HtmlPage] = {}

    def add(self, page: HtmlPage) -> HtmlPage:
        if page.path in self._pages:
            raise SiteError(f"duplicate page path {page.path!r}")
        self._pages[page.path] = page
        return page

    def replace(self, page: HtmlPage) -> HtmlPage:
        """Add or overwrite (rebuilds use this)."""
        self._pages[page.path] = page
        return page

    def __contains__(self, path: str) -> bool:
        return path in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page(self, path: str) -> HtmlPage:
        try:
            return self._pages[path]
        except KeyError:
            raise SiteError(f"no page at {path!r} (site has {len(self._pages)} pages)")

    def paths(self) -> list[str]:
        return sorted(self._pages)

    def pages(self) -> list[HtmlPage]:
        return [self._pages[path] for path in self.paths()]

    def as_text(self) -> dict[str, str]:
        """Every page serialized — the differ's input format."""
        return {path: self._pages[path].html() for path in self.paths()}

    def as_skeletons(self) -> dict[str, tuple[str, str]]:
        """Every page as ``(skeleton, trail_fragment)`` pairs.

        The page-cache entry format (see
        :meth:`~repro.web.html.HtmlPage.skeleton_html`): each skeleton
        carries the trail slot where session-variant content splices in.
        A materialized build in this form can prewarm a serving cache —
        and lets tests assert that ``compose_page(skeleton, fragment)``
        reassembles every page (identically up to serialization
        whitespace around the spliced trail region).
        """
        return {path: self._pages[path].skeleton_html() for path in self.paths()}

    # -- user-agent integration ---------------------------------------------

    def provider(self) -> "SiteProvider":
        return SiteProvider(self)

    def check_links(self) -> list[str]:
        """Paths of dangling anchors: href targets that are not pages."""
        dangling: list[str] = []
        for page in self.pages():
            for anchor in page.anchors():
                href = anchor.href
                if not href or href.startswith(("http://", "https://", "#")):
                    continue
                resolved = posixpath.normpath(resolve_uri(page.path, href))
                if resolved not in self._pages:
                    dangling.append(f"{page.path} -> {href}")
        return dangling


class SiteProvider:
    """Adapts a :class:`StaticSite` to the user agent's page protocol."""

    def __init__(self, site: StaticSite):
        self._site = site

    def page(self, uri: str) -> PageView:
        from repro.hypermedia.errors import NavigationError

        normalized = posixpath.normpath(uri)
        if normalized not in self._site:
            raise NavigationError(f"no page at {uri!r}")
        page = self._site.page(normalized)
        anchors = [
            PageAnchor(
                label=anchor.label,
                href=posixpath.normpath(resolve_uri(normalized, anchor.href)),
                rel=anchor.rel,
            )
            for anchor in page.anchors()
        ]
        return PageView(uri=normalized, title=page.title, anchors=anchors)
