"""An XSL-lite template engine: the *presentation* third of the separation.

The paper credits XML + XSL with separating presentation from data; this
module provides the working equivalent: a stylesheet is a set of template
rules, each matching elements by name pattern and producing output nodes.
Rules call back into the engine (``ctx.apply``) to transform children, so
document structure drives presentation exactly as in XSLT::

    sheet = Stylesheet()

    @sheet.template("painting")
    def painting_rule(ctx, el):
        return [build("article", {},
                      build("h1", {}, ctx.value_of(el, "title/text()")),
                      *ctx.apply(el, "year"))]

    html = sheet.transform_to_element(document)

Match patterns are element local names, ``parent/child`` tails, or ``*``;
the most specific matching rule wins (longer pattern > name > wildcard).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.xmlcore import Document, Element, Node, Text, query

from .errors import StylesheetError

RuleFn = Callable[["TransformContext", Element], list[Node] | Node | str | None]


@dataclass(frozen=True)
class TemplateRule:
    pattern: str
    fn: RuleFn

    def specificity(self) -> tuple[int, int]:
        """(path segments, non-wildcard) — higher wins."""
        segments = self.pattern.count("/") + 1
        return (segments, 0 if self.pattern.endswith("*") else 1)

    def matches(self, element: Element) -> bool:
        parts = self.pattern.split("/")
        node: Element | None = element
        for part in reversed(parts):
            if node is None:
                return False
            if part != "*" and node.name.local != part:
                return False
            parent = node.parent
            node = parent if isinstance(parent, Element) else None
        return True


class TransformContext:
    """Handed to rules; carries the engine plus per-run parameters."""

    def __init__(self, stylesheet: "Stylesheet", parameters: dict[str, object]):
        self._stylesheet = stylesheet
        self.parameters = parameters

    def apply(self, element: Element, select: str | None = None) -> list[Node]:
        """Transform child elements (all, or those selected by a path)."""
        if select is None:
            children: list[Element] = element.child_elements()
        else:
            children = [
                item for item in query(element, select) if isinstance(item, Element)
            ]
        out: list[Node] = []
        for child in children:
            out.extend(self._stylesheet.apply_one(self, child))
        return out

    def value_of(self, element: Element, select: str) -> str:
        """The string value of a path (first match; '' when empty)."""
        results = query(element, select)
        if not results:
            return ""
        first = results[0]
        if isinstance(first, str):
            return first
        return first.text_content()


class Stylesheet:
    """A set of template rules with XSLT-like built-in defaults.

    The built-in rules (used when nothing matches) recurse into child
    elements and copy text through — XSLT's default behaviour, which makes
    partial stylesheets useful immediately.
    """

    def __init__(self) -> None:
        self._rules: list[TemplateRule] = []

    def template(self, pattern: str) -> Callable[[RuleFn], RuleFn]:
        """Decorator registering a rule for *pattern*."""
        if not pattern:
            raise StylesheetError("empty template pattern")

        def register(fn: RuleFn) -> RuleFn:
            self._rules.append(TemplateRule(pattern, fn))
            return fn

        return register

    def add_template(self, pattern: str, fn: RuleFn) -> None:
        """Non-decorator registration."""
        self.template(pattern)(fn)

    def rule_for(self, element: Element) -> TemplateRule | None:
        candidates = [rule for rule in self._rules if rule.matches(element)]
        if not candidates:
            return None
        candidates.sort(key=lambda rule: rule.specificity())
        best = candidates[-1]
        ties = [c for c in candidates if c.specificity() == best.specificity()]
        return ties[-1]  # later registration wins among equals, as in XSLT

    # -- execution -----------------------------------------------------------

    def apply_one(self, ctx: TransformContext, element: Element) -> list[Node]:
        rule = self.rule_for(element)
        if rule is None:
            return self._builtin(ctx, element)
        produced = rule.fn(ctx, element)
        return _normalize_output(produced)

    def _builtin(self, ctx: TransformContext, element: Element) -> list[Node]:
        out: list[Node] = []
        for child in element.children:
            if isinstance(child, Element):
                out.extend(self.apply_one(ctx, child))
            elif isinstance(child, Text):
                out.append(Text(child.value))
        return out

    def transform(
        self,
        document: Document | Element,
        parameters: dict[str, object] | None = None,
    ) -> list[Node]:
        """Run the stylesheet; returns the produced node list."""
        root = document.root_element if isinstance(document, Document) else document
        ctx = TransformContext(self, parameters or {})
        return self.apply_one(ctx, root)

    def transform_to_element(
        self,
        document: Document | Element,
        parameters: dict[str, object] | None = None,
    ) -> Element:
        """Run the stylesheet and demand exactly one element result."""
        produced = [
            node
            for node in self.transform(document, parameters)
            if isinstance(node, Element)
        ]
        if len(produced) != 1:
            raise StylesheetError(
                f"expected one root element from the stylesheet, got {len(produced)}"
            )
        return produced[0]


def _normalize_output(produced: list[Node] | Node | str | None) -> list[Node]:
    if produced is None:
        return []
    if isinstance(produced, str):
        return [Text(produced)]
    if isinstance(produced, Node):
        return [produced]
    out: list[Node] = []
    for item in produced:
        if isinstance(item, str):
            out.append(Text(item))
        elif isinstance(item, Node):
            out.append(item)
        else:
            raise StylesheetError(
                f"template produced a {type(item).__name__}, expected nodes/str"
            )
    return out
