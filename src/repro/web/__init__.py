"""Web layer: HTML pages, XSL-lite stylesheets, static sites, change diffs.

Pages are well-formed XHTML over :mod:`repro.xmlcore`; sites serve the
:class:`repro.navigation.UserAgent`; the differ measures the paper's
"arduous and tedious" change costs.
"""

from .diff import ChangeImpact, FileDelta, diff_builds, unified_diff
from .errors import SiteError, StylesheetError, WebError
from .html import (
    TRAIL_NAV_CLASS,
    TRAIL_SLOT,
    HtmlPage,
    anchor_element,
    anchor_list,
    compose_page,
    heading,
    image,
    nav_block,
    page_skeleton,
    paragraph,
)
from .site import SiteProvider, StaticSite
from .stylesheet import Stylesheet, TemplateRule, TransformContext

__all__ = [
    "ChangeImpact",
    "FileDelta",
    "HtmlPage",
    "TRAIL_NAV_CLASS",
    "TRAIL_SLOT",
    "SiteError",
    "SiteProvider",
    "StaticSite",
    "Stylesheet",
    "StylesheetError",
    "TemplateRule",
    "TransformContext",
    "WebError",
    "anchor_element",
    "anchor_list",
    "compose_page",
    "diff_builds",
    "heading",
    "image",
    "nav_block",
    "page_skeleton",
    "paragraph",
    "unified_diff",
]
