"""Change-impact diffing between two site builds.

The paper's argument is quantitative at heart: "such a conceptually simple
change can be an arduous and tedious work ... this isn't the only page we
have to modify".  This differ counts exactly that — which files a change
touches and how many lines it adds/removes — for any two builds (tangled
before/after, linkbase before/after, woven before/after).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class FileDelta:
    """The change to one file between two builds."""

    path: str
    status: str  # "added" | "removed" | "modified"
    lines_added: int = 0
    lines_removed: int = 0

    @property
    def lines_changed(self) -> int:
        return self.lines_added + self.lines_removed


@dataclass
class ChangeImpact:
    """The full impact of a change across a site build."""

    deltas: list[FileDelta] = field(default_factory=list)
    unchanged: list[str] = field(default_factory=list)

    @property
    def files_touched(self) -> int:
        return len(self.deltas)

    @property
    def files_total(self) -> int:
        return len(self.deltas) + len(self.unchanged)

    @property
    def lines_added(self) -> int:
        return sum(d.lines_added for d in self.deltas)

    @property
    def lines_removed(self) -> int:
        return sum(d.lines_removed for d in self.deltas)

    @property
    def lines_changed(self) -> int:
        return self.lines_added + self.lines_removed

    def touched_paths(self) -> list[str]:
        return sorted(d.path for d in self.deltas)

    def summary(self) -> str:
        return (
            f"{self.files_touched}/{self.files_total} files touched, "
            f"+{self.lines_added}/-{self.lines_removed} lines"
        )


def diff_builds(before: dict[str, str], after: dict[str, str]) -> ChangeImpact:
    """Compare two builds given as ``{path: text}`` mappings."""
    impact = ChangeImpact()
    for path in sorted(set(before) | set(after)):
        if path not in after:
            impact.deltas.append(
                FileDelta(
                    path,
                    "removed",
                    lines_removed=len(before[path].splitlines()),
                )
            )
            continue
        if path not in before:
            impact.deltas.append(
                FileDelta(path, "added", lines_added=len(after[path].splitlines()))
            )
            continue
        if before[path] == after[path]:
            impact.unchanged.append(path)
            continue
        added, removed = _count_line_changes(before[path], after[path])
        impact.deltas.append(
            FileDelta(path, "modified", lines_added=added, lines_removed=removed)
        )
    return impact


def _count_line_changes(before: str, after: str) -> tuple[int, int]:
    added = removed = 0
    matcher = difflib.SequenceMatcher(
        a=before.splitlines(), b=after.splitlines(), autojunk=False
    )
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag in ("replace", "delete"):
            removed += i2 - i1
        if tag in ("replace", "insert"):
            added += j2 - j1
    return added, removed


def unified_diff(
    before: dict[str, str], after: dict[str, str], path: str, *, context: int = 2
) -> str:
    """A unified diff of one file between two builds (for reports)."""
    return "\n".join(
        difflib.unified_diff(
            before.get(path, "").splitlines(),
            after.get(path, "").splitlines(),
            fromfile=f"before/{path}",
            tofile=f"after/{path}",
            n=context,
            lineterm="",
        )
    )
