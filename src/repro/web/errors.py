"""Errors raised by the web layer."""

from __future__ import annotations


class WebError(Exception):
    """Base class for web-layer errors."""


class StylesheetError(WebError):
    """A stylesheet rule is missing or misbehaves."""


class SiteError(WebError):
    """A site is inconsistent (duplicate paths, missing pages, ...)."""
