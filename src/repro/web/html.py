"""A small HTML document model on top of the XML substrate.

Pages are well-formed XHTML trees (:class:`repro.xmlcore.Element`), so the
same parser, serializer and differ work on data documents and rendered
pages alike.  The helpers here keep page construction readable and put
navigation anchors in one canonical shape: ``<a href rel>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypermedia.access import Anchor
from repro.xmlcore import Element, build, comment, serialize

#: Class attribute marking the per-session breadcrumb trail ``<nav>`` — the
#: only session-variant region of a rendered page (everything else is
#: deterministic for a fixed audience, page and deployment state).
TRAIL_NAV_CLASS = "breadcrumbs"

#: The placeholder the skeleton serializer emits where the trail block
#: sat.  :func:`compose_page` splices a per-request fragment over it.
TRAIL_SLOT = "<!--repro:trail-->"


def page_skeleton(title: str) -> tuple[Element, Element]:
    """An ``<html>`` scaffold; returns ``(html, body)``."""
    body = build("body", {})
    html = build(
        "html",
        {},
        build("head", {}, build("title", {}, title)),
        body,
    )
    return html, body


def heading(level: int, text: str) -> Element:
    return build(f"h{level}", {}, text)


def paragraph(*children: Element | str) -> Element:
    return build("p", {}, *children)


def image(src: str, alt: str) -> Element:
    return build("img", {"src": src, "alt": alt})


def anchor_element(anchor: Anchor) -> Element:
    """Render an :class:`~repro.hypermedia.access.Anchor` as ``<a>``."""
    return build("a", {"href": anchor.href, "rel": anchor.rel}, anchor.label)


def anchor_list(anchors: list[Anchor]) -> Element:
    """A ``<ul>`` of anchors — the index listings of Figures 3–4."""
    items = [build("li", {}, anchor_element(a)) for a in anchors]
    return build("ul", {}, *items)


def nav_block(anchors: list[Anchor]) -> Element:
    """The navigation region of a page: one ``<nav>`` with all anchors.

    Keeping every navigational element inside a single ``<nav>`` is what
    lets the weaving pipeline add or replace navigation without touching
    the content region — the separation the paper is after.
    """
    children: list[Element] = []
    steps = [a for a in anchors if a.rel in ("prev", "next")]
    entries = [a for a in anchors if a not in steps]
    if entries:
        children.append(anchor_list(entries))
    for step in steps:
        children.append(paragraph(anchor_element(step)))
    return build("nav", {}, *children)


def compose_page(skeleton: str, fragment: str) -> str:
    """Splice a per-request trail *fragment* into a cached *skeleton*.

    The inverse of :meth:`HtmlPage.skeleton_html`: the skeleton's
    :data:`TRAIL_SLOT` is replaced by the fragment (or removed when the
    request has no trail to show).  Plain string surgery — this is the
    serving hot path's entire per-request serialization cost on a cache
    hit.
    """
    return skeleton.replace(TRAIL_SLOT, fragment, 1)


@dataclass(frozen=True)
class HtmlPage:
    """One built page: a site-relative path plus its XHTML tree."""

    path: str
    tree: Element

    @property
    def title(self) -> str:
        title_el = self.tree.find("title")
        return title_el.text_content() if title_el is not None else ""

    def html(self, *, indent: str | None = "  ") -> str:
        return serialize(self.tree, indent=indent)

    def anchors(self) -> list[Anchor]:
        """All anchors in the page, in document order."""
        return [
            Anchor(
                label=a.text_content(),
                href=a.get("href") or "",
                rel=a.get("rel") or "link",
            )
            for a in self.tree.findall("a")
        ]

    def skeleton_html(self, *, indent: str | None = "  ") -> tuple[str, str]:
        """Serialize this page split into ``(skeleton, trail_fragment)``.

        The skeleton is the full page with the session-variant trail
        block (the ``<nav class="breadcrumbs">``, if any) lifted out and
        :data:`TRAIL_SLOT` emitted in its place — at the end of ``<body>``
        when the page carries no trail, so a cached skeleton always has a
        splice point.  The fragment is the lifted trail serialized
        compactly (``""`` when absent).  ``compose_page(skeleton,
        fragment)`` reassembles the page; the tree is restored before
        returning, so splitting never mutates the page for later readers.
        """
        body = self.tree.find("body")
        if body is None:
            return serialize(self.tree, indent=indent), ""
        trail = next(
            (
                nav
                for nav in body.findall("nav")
                if nav.get("class") == TRAIL_NAV_CLASS
            ),
            None,
        )
        if trail is None:
            slot_index = len(body.children)
            fragment = ""
        else:
            slot_index = body.child_index(trail)
            body.remove(trail)
            fragment = serialize(trail)
        slot = comment("repro:trail")
        body.insert(slot_index, slot)
        try:
            skeleton = serialize(self.tree, indent=indent)
        finally:
            body.remove(slot)
            if trail is not None:
                body.insert(slot_index, trail)
        return skeleton, fragment

    def content_region(self) -> Element | None:
        """The page body minus its ``<nav>`` blocks (for content diffs)."""
        body = self.tree.find("body")
        if body is None:
            return None
        from repro.xmlcore import deep_copy

        clone = deep_copy(body)
        for nav in list(clone.findall("nav")):
            nav.detach()
        return clone
