"""A small HTML document model on top of the XML substrate.

Pages are well-formed XHTML trees (:class:`repro.xmlcore.Element`), so the
same parser, serializer and differ work on data documents and rendered
pages alike.  The helpers here keep page construction readable and put
navigation anchors in one canonical shape: ``<a href rel>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypermedia.access import Anchor
from repro.xmlcore import Element, build, serialize


def page_skeleton(title: str) -> tuple[Element, Element]:
    """An ``<html>`` scaffold; returns ``(html, body)``."""
    body = build("body", {})
    html = build(
        "html",
        {},
        build("head", {}, build("title", {}, title)),
        body,
    )
    return html, body


def heading(level: int, text: str) -> Element:
    return build(f"h{level}", {}, text)


def paragraph(*children: Element | str) -> Element:
    return build("p", {}, *children)


def image(src: str, alt: str) -> Element:
    return build("img", {"src": src, "alt": alt})


def anchor_element(anchor: Anchor) -> Element:
    """Render an :class:`~repro.hypermedia.access.Anchor` as ``<a>``."""
    return build("a", {"href": anchor.href, "rel": anchor.rel}, anchor.label)


def anchor_list(anchors: list[Anchor]) -> Element:
    """A ``<ul>`` of anchors — the index listings of Figures 3–4."""
    items = [build("li", {}, anchor_element(a)) for a in anchors]
    return build("ul", {}, *items)


def nav_block(anchors: list[Anchor]) -> Element:
    """The navigation region of a page: one ``<nav>`` with all anchors.

    Keeping every navigational element inside a single ``<nav>`` is what
    lets the weaving pipeline add or replace navigation without touching
    the content region — the separation the paper is after.
    """
    children: list[Element] = []
    steps = [a for a in anchors if a.rel in ("prev", "next")]
    entries = [a for a in anchors if a not in steps]
    if entries:
        children.append(anchor_list(entries))
    for step in steps:
        children.append(paragraph(anchor_element(step)))
    return build("nav", {}, *children)


@dataclass(frozen=True)
class HtmlPage:
    """One built page: a site-relative path plus its XHTML tree."""

    path: str
    tree: Element

    @property
    def title(self) -> str:
        title_el = self.tree.find("title")
        return title_el.text_content() if title_el is not None else ""

    def html(self, *, indent: str | None = "  ") -> str:
        return serialize(self.tree, indent=indent)

    def anchors(self) -> list[Anchor]:
        """All anchors in the page, in document order."""
        return [
            Anchor(
                label=a.text_content(),
                href=a.get("href") or "",
                rel=a.get("rel") or "link",
            )
            for a in self.tree.findall("a")
        ]

    def content_region(self) -> Element | None:
        """The page body minus its ``<nav>`` blocks (for content diffs)."""
        body = self.tree.find("body")
        if body is None:
            return None
        from repro.xmlcore import deep_copy

        clone = deep_copy(body)
        for nav in list(clone.findall("nav")):
            nav.detach()
        return clone
