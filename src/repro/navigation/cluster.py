"""A multi-process serving cluster with consistent-hash session sharding.

One serving process holds every audience's instance-scoped stack and one
scope tier per session; this module scales that across *processes*:

- :class:`HashRing` — consistent hashing (SHA-1, virtual nodes) from
  session ids to worker names.  Adding or retiring one worker remaps
  only the sessions that must move, not the whole population.
- :class:`WorkerProcess` — supervises one child ``python -m repro.tools
  serve --port 0`` on an ephemeral port: spawn (parse the serving
  banner), health, graceful ``SIGTERM`` retirement, hard kill.  Each
  worker rebuilds the full audience scope hierarchy for itself; workers
  share nothing but the session records that migrate between them.
- :class:`ClusterFront` — an ASGI reverse proxy (run it under
  :class:`~repro.navigation.asgi.AsgiHttpServer`): mints/keeps the
  session cookie, routes each request to ``ring.owner(sid)``, forwards
  on a worker thread, and answers the cluster-level management surface
  (aggregate ``/-/stats``, fan-out ``/-/reconfigure/{audience}``).
- :class:`WorkerPool` — the supervisor tying those together: spawns N
  workers, owns the ring, and *rebalances* on retirement — the leaving
  worker's sessions are snapshotted as portable
  :class:`~repro.navigation.session.SessionRecord`\\ s and restored into
  their new ring owners, so a browsing user's breadcrumb trail survives
  the worker swap byte-for-byte.  A worker that dies *unexpectedly* is
  respawned under its own ring name the next time a request routes to
  it (bounded retries, exponential backoff); only when the respawns are
  exhausted does the name leave the ring and its sessions remap.

Sessions are sticky by construction (same sid, same worker) which is
what keeps each session's scope tier — its private renderer and trail
deployment — on exactly one process at a time.
"""

from __future__ import annotations

import asyncio
import hashlib
import http.client
import itertools
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import uuid
from bisect import bisect_right
from typing import Any, Iterable, Mapping

from .session import SessionRecord

#: The serving banner every worker prints before accepting requests.
_BANNER = re.compile(r"http://([\d.]+):(\d+)/")

#: Hop-by-hop headers a proxy must not forward either direction.
_HOP_BY_HOP = {
    "connection",
    "keep-alive",
    "proxy-authenticate",
    "proxy-authorization",
    "te",
    "trailers",
    "transfer-encoding",
    "upgrade",
}


class ClusterError(RuntimeError):
    """A worker failed to spawn, retire, or answer."""


class HashRing:
    """Consistent hashing from string keys to member names.

    Each member occupies *replicas* virtual points on a SHA-1 ring; a
    key belongs to the first point clockwise from its own hash.  The
    properties the cluster leans on: the mapping is stable across
    processes (no interpreter hash randomization), uniform enough at a
    few dozen virtual nodes per member, and *minimally disruptive* —
    removing one member remaps only the keys that pointed at it.
    """

    def __init__(self, members: Iterable[str] = (), *, replicas: int = 64):
        if replicas < 1:
            raise ValueError("hash ring replicas must be >= 1")
        self._replicas = replicas
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(
            hashlib.sha1(text.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self._replicas):
            self._points.append((self._hash(f"{member}#{replica}"), member))
        self._points.sort()

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise KeyError(member)
        self._members.discard(member)
        self._points = [
            point for point in self._points if point[1] != member
        ]

    def owner(self, key: str) -> str:
        """The member owning *key* (raises :class:`ClusterError` if empty)."""
        if not self._points:
            raise ClusterError("hash ring has no members")
        index = bisect_right(self._points, (self._hash(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


class WorkerProcess:
    """One supervised serving child on an ephemeral port."""

    def __init__(
        self,
        name: str,
        *,
        audiences: str = "visitor,curator",
        asgi: bool = False,
        snapshot_path: str | None = None,
        extra_args: Iterable[str] = (),
        env: Mapping[str, str] | None = None,
        spawn_timeout: float = 30.0,
    ):
        self.name = name
        self.host = ""
        self.port = 0
        self.process: subprocess.Popen | None = None
        self.snapshot_path = snapshot_path
        self._audiences = audiences
        self._asgi = asgi
        self._extra_args = tuple(extra_args)
        self._env = dict(env) if env is not None else None
        self._spawn_timeout = spawn_timeout

    @property
    def base(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def spawn(self) -> None:
        """Start the child and wait for its serving banner."""
        argv = [
            sys.executable,
            "-m",
            "repro.tools",
            "serve",
            "--port",
            "0",
            "--audiences",
            self._audiences,
        ]
        if self._asgi:
            argv.append("--asgi")
        if self.snapshot_path:
            argv.extend(["--snapshot", self.snapshot_path])
        argv.extend(self._extra_args)
        env = dict(os.environ)
        if self._env:
            env.update(self._env)
        self.process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        banner = self._read_banner()
        match = _BANNER.search(banner)
        if match is None:
            self.process.kill()
            _, stderr = self.process.communicate(timeout=10)
            raise ClusterError(
                f"worker {self.name}: no serving banner (got {banner!r})\n"
                f"{stderr}"
            )
        self.host, self.port = match.group(1), int(match.group(2))

    def _read_banner(self) -> str:
        # readline() on a wedged child would hang the supervisor; a
        # daemon thread turns a silent child into an ordinary failure.
        assert self.process is not None and self.process.stdout is not None
        holder: dict[str, str] = {}
        stdout = self.process.stdout

        def read() -> None:
            holder["line"] = stdout.readline()

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=self._spawn_timeout)
        return holder.get("line", "")

    def request(
        self,
        method: str,
        path: str,
        *,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
        timeout: float = 10.0,
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        """One HTTP exchange with this worker (raises on transport errors)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            connection.request(method, path, body=body, headers=dict(headers or {}))
            response = connection.getresponse()
            payload = response.read()
            return response.status, response.getheaders(), payload
        finally:
            connection.close()

    def snapshot_sessions(self) -> list[SessionRecord]:
        """Pull the worker's live sessions via ``GET /-/sessions``."""
        status, _, payload = self.request("GET", "/-/sessions")
        if status != 200:
            raise ClusterError(
                f"worker {self.name}: /-/sessions returned {status}"
            )
        return [
            SessionRecord.from_dict(item)
            for item in json.loads(payload)["sessions"]
        ]

    def restore_sessions(self, records: Iterable[SessionRecord]) -> int:
        """Push *records* into this worker; returns how many restored."""
        records = list(records)
        if not records:
            return 0
        status, _, payload = self.request(
            "POST",
            "/-/sessions/restore",
            headers={"Content-Type": "application/json"},
            body=json.dumps(
                {"sessions": [record.to_dict() for record in records]}
            ).encode("utf-8"),
        )
        if status != 200:
            raise ClusterError(
                f"worker {self.name}: /-/sessions/restore returned {status}"
            )
        result = json.loads(payload)
        if result["errors"]:
            raise ClusterError(
                f"worker {self.name}: restore errors: {result['errors']}"
            )
        return len(result["restored"])

    def terminate(self, *, timeout: float = 15.0) -> int:
        """Graceful ``SIGTERM`` retirement; returns the exit status."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10)
            raise ClusterError(
                f"worker {self.name} ignored SIGTERM; killed"
            ) from None
        return self.process.returncode

    def kill(self) -> None:
        """Hard ``SIGKILL`` (a crash stand-in for failover tests)."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)

    def stderr_text(self) -> str:
        if self.process is None or self.process.stderr is None:
            return ""
        try:
            return self.process.stderr.read() or ""
        except ValueError:  # stream already closed
            return ""


class WorkerPool:
    """Spawn, route to, rebalance, revive, and retire serving workers."""

    def __init__(
        self,
        count: int = 2,
        *,
        audiences: str = "visitor,curator",
        asgi_workers: bool = False,
        env: Mapping[str, str] | None = None,
        replicas: int = 64,
        spawn_timeout: float = 30.0,
        restart_limit: int = 3,
        restart_backoff: float = 0.25,
    ):
        if count < 1:
            raise ValueError("a worker pool needs at least one worker")
        self._lock = threading.Lock()
        self.ring = HashRing(replicas=replicas)
        self.workers: dict[str, WorkerProcess] = {}
        self.restarts: dict[str, int] = {}
        self._names = itertools.count()
        self._audiences = audiences
        self._asgi_workers = asgi_workers
        self._env = env
        self._spawn_timeout = spawn_timeout
        self._initial_count = count
        self._restart_limit = restart_limit
        self._restart_backoff = restart_backoff
        self._revive_lock = threading.Lock()
        self._sleep = time.sleep

    def start(self) -> None:
        # No traffic has hit the pool yet, so the rebalance sweep would
        # only issue empty snapshots against the earlier workers.
        for _ in range(self._initial_count):
            self.add_worker(rebalance=False)

    def _new_worker(self, name: str) -> WorkerProcess:
        return WorkerProcess(
            name,
            audiences=self._audiences,
            asgi=self._asgi_workers,
            env=self._env,
            spawn_timeout=self._spawn_timeout,
        )

    def add_worker(self, *, rebalance: bool = True) -> WorkerProcess:
        """Spawn one more worker, add it to the ring, and rebalance.

        Joining the ring moves a slice of every existing worker's key
        space onto the newcomer — requests for those sids route to it
        immediately, so their session records must follow (the mirror
        image of :meth:`retire_worker`'s drain).  Each live worker is
        snapshotted and the records the ring now assigns to the new
        name are restored into it.  The donors keep their (now
        unreachable) copies; a session record is a portable snapshot,
        not an owning handle, so the stale copy is dead weight that
        dies with the donor rather than a consistency hazard.

        ``rebalance=False`` skips the migration sweep — only correct
        while the pool holds no sessions (:meth:`start`'s initial fill).
        """
        with self._lock:
            name = f"w{next(self._names)}"
        worker = self._new_worker(name)
        worker.spawn()
        with self._lock:
            self.workers[name] = worker
            self.ring.add(name)
            donors = [
                w
                for donor_name, w in self.workers.items()
                if rebalance and donor_name != name and w.alive
            ]
        for donor in donors:
            records = donor.snapshot_sessions()
            with self._lock:
                moved = [r for r in records if self.ring.owner(r.sid) == name]
            if moved:
                worker.restore_sessions(moved)
        return worker

    def owner_of(self, sid: str) -> WorkerProcess:
        with self._lock:
            name = self.ring.owner(sid)
            worker = self.workers[name]
        if worker.alive:
            return worker
        revived = self.revive_worker(name)
        if revived is not None:
            return revived
        # The name left the ring; the sid now hashes to a survivor
        # (or the ring is empty, and owner() raises ClusterError —
        # which the front turns into a 503).
        with self._lock:
            return self.workers[self.ring.owner(sid)]

    def revive_worker(self, name: str) -> WorkerProcess | None:
        """Replace a dead worker's process, keeping its ring identity.

        A worker that died *unexpectedly* (crash, OOM kill) took its
        session tier with it; what can still be saved is the routing
        identity.  Respawning under the same name keeps every sid that
        hashed to the casualty hashing to its replacement — the sticky
        mapping and every *other* worker's sessions are untouched, and
        affected visitors restart from a fresh session instead of
        503ing forever.  Spawn attempts are bounded with exponential
        backoff; when they are exhausted the name is removed from the
        ring so its sessions remap to the survivors.  Returns the
        replacement, or ``None`` when the name was given up on (or was
        already retired by someone else).
        """
        with self._revive_lock:
            with self._lock:
                current = self.workers.get(name)
            if current is None or current.alive:
                # Retired, or another thread revived it while this one
                # waited on the revive lock.
                return current
            current.kill()  # reap; a no-op when the child is fully gone
            for attempt in range(self._restart_limit):
                if attempt:
                    self._sleep(self._restart_backoff * 2 ** (attempt - 1))
                replacement = self._new_worker(name)
                try:
                    replacement.spawn()
                except ClusterError:
                    continue
                with self._lock:
                    self.workers[name] = replacement
                    self.ring.add(name)  # idempotent: the name never left
                    self.restarts[name] = self.restarts.get(name, 0) + 1
                return replacement
            with self._lock:
                self.workers.pop(name, None)
                if name in self.ring:
                    self.ring.remove(name)
            return None

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return self.ring.members

    def retire_worker(self, name: str) -> int:
        """Drain *name* out of the cluster; returns sessions migrated.

        The rebalance sequence: take the worker out of the ring (new
        requests immediately route elsewhere), snapshot its live
        sessions over HTTP, ``SIGTERM`` it, and restore each record into
        the worker the ring now assigns its sid — the owner every
        subsequent request for that session will hit.
        """
        with self._lock:
            worker = self.workers.pop(name, None)
            if worker is None:
                raise KeyError(name)
            self.ring.remove(name)
        try:
            records = worker.snapshot_sessions() if worker.alive else []
        finally:
            exit_status = worker.terminate()
        if exit_status != 0:
            raise ClusterError(
                f"worker {name} exited {exit_status} on retirement\n"
                f"{worker.stderr_text()}"
            )
        return self._redistribute(records)

    def _redistribute(self, records: Iterable[SessionRecord]) -> int:
        by_owner: dict[str, list[SessionRecord]] = {}
        for record in records:
            by_owner.setdefault(
                self.ring.owner(record.sid), []
            ).append(record)
        migrated = 0
        for owner, owned in by_owner.items():
            with self._lock:
                target = self.workers[owner]
            migrated += target.restore_sessions(owned)
        return migrated

    def stop(self) -> None:
        """Retire every worker (tolerating ones already gone)."""
        with self._lock:
            workers = list(self.workers.values())
            self.workers.clear()
            for name in list(self.ring.members):
                self.ring.remove(name)
        for worker in workers:
            try:
                worker.terminate()
            except ClusterError:
                pass

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class ClusterFront:
    """The ASGI reverse proxy routing sessions to their ring owners.

    Session identity is decided *here*: the front honours an incoming
    ``X-Repro-Session`` header or ``repro_session`` cookie, mints a sid
    otherwise (setting the cookie on the response), and always forwards
    the sid as the explicit header — so every worker sees a stable
    identity regardless of how the client carries it.  Page requests go
    to ``ring.owner(sid)``; the management surface is cluster-level:

    - ``GET /-/stats`` — per-worker stats plus cluster totals;
    - ``GET /-/sessions`` — every worker's session records, merged;
    - ``POST /-/reconfigure/{audience}`` — fanned out to all workers
      (each holds its own audience scopes; all must re-weave).

    Forwarding is blocking ``http.client`` work and runs on the event
    loop's executor, one slot per in-flight request.
    """

    def __init__(self, pool: WorkerPool):
        self._pool = pool
        self._sid_counter = itertools.count(1)

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(
                f"ClusterFront only serves http scopes, not {scope['type']!r}"
            )
        body = await _drain_body(receive)
        loop = asyncio.get_running_loop()
        status, headers, payload = await loop.run_in_executor(
            None, self._respond, scope, body
        )
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in headers
                ],
            }
        )
        await send({"type": "http.response.body", "body": payload})

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- the synchronous proxy core (runs on the executor) --------------------

    def _respond(self, scope, body: bytes):
        method = scope.get("method", "GET")
        raw_path = scope.get("raw_path") or scope.get("path", "/").encode()
        path = raw_path.decode("latin-1")
        query = scope.get("query_string", b"").decode("latin-1")
        target = f"{path}?{query}" if query else path
        headers = {
            name.decode("latin-1"): value.decode("latin-1")
            for name, value in scope.get("headers", ())
        }
        if path == "/-/stats" and method == "GET":
            return self._cluster_stats()
        if path == "/-/sessions" and method == "GET":
            return self._cluster_sessions()
        if path.startswith("/-/reconfigure/"):
            return self._fan_out(method, target, headers, body)
        sid, minted = self._session_id(headers)
        try:
            worker = self._pool.owner_of(sid)
            status, response_headers, payload = worker.request(
                method,
                target,
                headers=self._forward_headers(headers, sid),
                body=body,
            )
        except (OSError, http.client.HTTPException, ClusterError) as exc:
            return _error(503, f"no worker available for this session: {exc}")
        out = [
            (name, value)
            for name, value in response_headers
            if name.lower() not in _HOP_BY_HOP
        ]
        out.append(("X-Repro-Worker", worker.name))
        if minted:
            out.append(("Set-Cookie", f"repro_session={sid}; Path=/"))
        return status, out, payload

    def _session_id(self, headers: Mapping[str, str]) -> tuple[str, bool]:
        sid = headers.get("x-repro-session")
        if sid:
            return sid, False
        for part in headers.get("cookie", "").split(";"):
            name, _, value = part.strip().partition("=")
            if name == "repro_session" and value:
                return value, False
        minted = f"c{next(self._sid_counter)}-{uuid.uuid4().hex[:12]}"
        return minted, True

    @staticmethod
    def _forward_headers(
        headers: Mapping[str, str], sid: str
    ) -> dict[str, str]:
        forwarded = {
            name: value
            for name, value in headers.items()
            if name.lower() not in _HOP_BY_HOP
            # x-repro-session is replaced below — keeping the client's
            # copy would send the header twice and the worker would see
            # the comma-joined value as the session id.
            and name.lower() not in ("host", "content-length", "x-repro-session")
        }
        forwarded["X-Repro-Session"] = sid
        return forwarded

    def _each_worker(self) -> list[WorkerProcess]:
        return [
            self._pool.workers[name]
            for name in self._pool.names()
            if name in self._pool.workers
        ]

    def _cluster_stats(self):
        workers: dict[str, Any] = {}
        for worker in self._each_worker():
            try:
                status, _, payload = worker.request("GET", "/-/stats")
                workers[worker.name] = (
                    json.loads(payload)
                    if status == 200
                    else {"error": f"stats returned {status}"}
                )
            except (OSError, http.client.HTTPException) as exc:
                workers[worker.name] = {"error": str(exc)}
        sessions = sum(
            stats.get("sessions", {}).get("active", 0)
            for stats in workers.values()
        )
        return _json(
            200,
            {
                "cluster": {
                    "workers": len(workers),
                    "ring": list(self._pool.names()),
                    "sessions": sessions,
                },
                "workers": workers,
            },
        )

    def _cluster_sessions(self):
        merged: list[dict[str, Any]] = []
        for worker in self._each_worker():
            records = worker.snapshot_sessions()
            merged.extend(
                dict(record.to_dict(), worker=worker.name)
                for record in records
            )
        return _json(200, {"sessions": merged})

    def _fan_out(self, method, target, headers, body):
        results: dict[str, Any] = {}
        status = 200
        for worker in self._each_worker():
            worker_status, _, payload = worker.request(
                method,
                target,
                headers=self._forward_headers(headers, "cluster-admin"),
                body=body,
            )
            if worker_status != 200:
                status = worker_status
            try:
                results[worker.name] = json.loads(payload)
            except json.JSONDecodeError:
                results[worker.name] = payload.decode("utf-8", "replace")
        return _json(status, {"workers": results})


def _json(status: int, payload: Any):
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    return (
        status,
        [
            ("Content-Type", "application/json"),
            ("Content-Length", str(len(body))),
        ],
        body,
    )


def _error(status: int, message: str):
    body = (message + "\n").encode("utf-8")
    return (
        status,
        [
            ("Content-Type", "text/plain; charset=utf-8"),
            ("Content-Length", str(len(body))),
        ],
        body,
    )


async def _drain_body(receive) -> bytes:
    chunks = []
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise ConnectionError("client disconnected during request body")
        chunks.append(message.get("body", b""))
        if not message.get("more_body"):
            return b"".join(chunks)
