"""Browser-style navigation history (back/forward stacks)."""

from __future__ import annotations

from typing import Generic, TypeVar

from .errors import NavigationError

T = TypeVar("T")


class History(Generic[T]):
    """The familiar back/forward model: visiting clears the forward stack."""

    def __init__(self) -> None:
        self._back: list[T] = []
        self._current: T | None = None
        self._forward: list[T] = []

    @property
    def current(self) -> T:
        if self._current is None:
            raise NavigationError("history is empty")
        return self._current

    @property
    def is_empty(self) -> bool:
        return self._current is None

    def visit(self, item: T) -> None:
        """Record a new visit; any forward entries are discarded."""
        if self._current is not None:
            self._back.append(self._current)
        self._current = item
        self._forward.clear()

    def back(self) -> T:
        """Move back one entry and return it."""
        if not self._back:
            raise NavigationError("nothing to go back to")
        assert self._current is not None
        self._forward.append(self._current)
        self._current = self._back.pop()
        return self._current

    def forward(self) -> T:
        """Move forward one entry and return it."""
        if not self._forward:
            raise NavigationError("nothing to go forward to")
        assert self._current is not None
        self._back.append(self._current)
        self._current = self._forward.pop()
        return self._current

    def can_go_back(self) -> bool:
        return bool(self._back)

    def can_go_forward(self) -> bool:
        return bool(self._forward)

    def trail(self) -> list[T]:
        """Everything behind and including the current entry, oldest first."""
        if self._current is None:
            return []
        return [*self._back, self._current]

    def __len__(self) -> int:
        return len(self.trail())
