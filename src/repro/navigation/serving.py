"""Live multi-audience serving over instance-scoped weaving.

The paper's claim is that navigation is a swappable aspect over an
untouched base program; the production question is serving *several
audiences at once* from one live process.  Class-level weaving cannot do
that — two differently-configured navigation stacks woven into the shared
renderer class would both fire on every page.  Instance-scoped
deployments (:meth:`repro.aop.WeaverRuntime.deploy` with ``instances=``)
can: every audience gets its own renderer *instance*, its navigation
aspects are scoped to exactly that instance, and all the deployments stay
live side by side in **one** runtime woven from **one** class scan.

:class:`AudienceServer` is that arrangement held as an object::

    from repro.navigation import AudienceServer, UserAgent

    with AudienceServer(fixture, DEFAULT_AUDIENCES) as server:
        visitor = UserAgent(server.provider("visitor"))
        curator = UserAgent(server.provider("curator"))
        visitor.open("index.html")          # tour + index navigation
        curator.open("index.html")          # index only — same process
        server.reconfigure("curator", ("indexed-guided-tour",))
        curator.open("index.html")          # new nav; visitor untouched

Pages render on demand through :class:`LazyWovenProvider`, so a
:meth:`~AudienceServer.reconfigure` between two requests changes what the
*next* page shows — for that audience only.  Reconfiguration rides the
runtime's transactional machinery: the audience's deployments are
partially undeployed (survivors re-weave with their original instance
scopes, so the other audiences' pages stay byte-identical) and the new
stack is added to the same deployment set.
"""

from __future__ import annotations

import posixpath
from typing import Any, Iterable, Mapping

from repro.aop import Deployment, WeaverRuntime

from .agent import PageAnchor, PageView
from .audience import DEFAULT_AUDIENCES, AudienceBundle
from .errors import NavigationError


def normalize_page_uri(uri: str) -> str:
    """The site-relative normal form providers key their page maps by.

    Collapses ``.``/``..`` segments and strips any leading slashes, so
    rooted (``/index.html``) and explicitly-relative (``./rooms/r1.html``)
    spellings of the same page resolve to one key.  References escaping
    the site root (``../outside.html``) are left intact — they miss the
    page map and surface as :class:`NavigationError`, not as a silent
    remap.
    """
    normalized = posixpath.normpath(uri.strip())
    while normalized.startswith("/"):
        normalized = normalized[1:]
    if normalized in ("", "."):
        return "index.html"
    return normalized


class LazyWovenProvider:
    """On-demand page provider over a live woven renderer.

    Unlike a materialized site build, a page is rendered only when the
    user agent asks for it — and because rendering passes through the
    renderer's deployed join points, reconfiguring the weave between two
    requests changes the navigation of pages rendered afterwards.

    Accepts a :class:`~repro.core.renderer.PageRenderer` (or anything
    exposing the same ``render_home``/``render_node``/``node_inventory``
    surface, including a ``.renderer``-bearing wrapper like
    :class:`~repro.core.weave.NavigationWeaver`).
    """

    def __init__(self, renderer: Any):
        renderer = getattr(renderer, "renderer", renderer)
        self._renderer = renderer
        # Normalized URI -> node, computed once from the inventory.
        self._nodes = {
            normalize_page_uri(node.uri): node for node in renderer.node_inventory()
        }

    def page(self, uri: str) -> PageView:
        from repro.xlink import resolve_uri

        normalized = normalize_page_uri(uri)
        if normalized == "index.html":
            page = self._renderer.render_home()
        elif normalized in self._nodes:
            page = self._renderer.render_node(self._nodes[normalized])
        else:
            raise NavigationError(f"no page at {uri!r}")
        anchors = [
            PageAnchor(
                label=a.label,
                href=normalize_page_uri(resolve_uri(normalized, a.href)),
                rel=a.rel,
            )
            for a in page.anchors()
        ]
        return PageView(uri=normalized, title=page.title, anchors=anchors)


class AudienceServer:
    """Serve every audience's navigation live from one woven process.

    One :class:`~repro.aop.WeaverRuntime`, one transactional
    :class:`~repro.aop.DeploymentSet`, one shadow scan of the renderer
    class: each audience bundle gets a private renderer instance and one
    instance-scoped :class:`~repro.core.aspect.NavigationAspect`
    deployment per stacked access structure.  All audiences' deployments
    are live simultaneously; the per-shadow dispatch routes each render
    call to the receiving renderer's own navigation stack.

    ``specs_by_access`` maps access-structure names to prebuilt specs;
    unresolved names are built once via
    :func:`~repro.core.navspec.default_museum_spec` and shared across
    every bundle that stacks them.
    """

    def __init__(
        self,
        fixture: Any,
        bundles: Iterable[AudienceBundle] | None = None,
        *,
        specs_by_access: Mapping[str, Any] | None = None,
        runtime: WeaverRuntime | None = None,
    ):
        from repro.core import PageRenderer

        self._fixture = fixture
        self._specs: dict[str, Any] = dict(specs_by_access or {})
        self._runtime = (
            runtime if runtime is not None else WeaverRuntime("audience-server")
        )
        self._bundles: dict[str, AudienceBundle] = {}
        self._renderers: dict[str, Any] = {}
        self._aspects: dict[str, list[Any]] = {}
        self._providers: dict[str, LazyWovenProvider] = {}
        self._closed = False
        self._tx = self._runtime.transaction([PageRenderer])
        try:
            for bundle in bundles if bundles is not None else DEFAULT_AUDIENCES:
                if bundle.name in self._renderers:
                    raise NavigationError(
                        f"duplicate audience bundle {bundle.name!r}"
                    )
                self._renderers[bundle.name] = PageRenderer(fixture)
                self._weave(bundle)
        except BaseException:
            self._tx.rollback()
            raise
        self._tx.commit()

    # -- construction helpers --------------------------------------------------

    def _spec_for(self, access: str) -> Any:
        from repro.core.navspec import default_museum_spec

        spec = self._specs.get(access)
        if spec is None:
            spec = self._specs[access] = default_museum_spec(access)
        return spec

    def _weave(self, bundle: AudienceBundle) -> None:
        from repro.core import NavigationAspect

        renderer = self._renderers[bundle.name]
        # Build every aspect first: an unknown access-structure name (or a
        # broken spec) must fail before any deployment is touched.
        aspects = [
            NavigationAspect(self._spec_for(access), self._fixture)
            for access in bundle.access_structures
        ]
        added: list[Any] = []
        try:
            for aspect in aspects:
                self._tx.add(aspect, instances=[renderer])
                added.append(aspect)
        except BaseException:
            # Unwind the partial stack so the audience is never left with
            # deployments no bookkeeping entry tracks.
            partial = set(map(id, added))
            live = [d for d in self._tx.deployments if id(d.aspect) in partial]
            if live:
                self._tx.undeploy(live)
            raise
        self._bundles[bundle.name] = bundle
        self._aspects[bundle.name] = aspects

    def _require(self, audience: str) -> None:
        if self._closed:
            raise NavigationError("audience server is closed")
        if audience not in self._bundles:
            raise NavigationError(
                f"no audience {audience!r} "
                f"(serving: {', '.join(sorted(self._bundles)) or 'none'})"
            )

    # -- the serving surface ---------------------------------------------------

    @property
    def runtime(self) -> WeaverRuntime:
        """The scoped runtime holding every audience's deployments."""
        return self._runtime

    def audiences(self) -> list[str]:
        """The audiences currently served, in registration order."""
        return list(self._bundles)

    def bundle(self, audience: str) -> AudienceBundle:
        """The bundle *audience* is currently configured with."""
        self._require(audience)
        return self._bundles[audience]

    def renderer(self, audience: str) -> Any:
        """The audience's private (woven) renderer instance."""
        self._require(audience)
        return self._renderers[audience]

    def deployments(self, audience: str) -> list[Deployment]:
        """The audience's live deployment handles, oldest first.

        Looked up by aspect identity rather than cached: a partial
        undeploy (another audience reconfiguring) re-weaves survivors and
        refreshes their handles.
        """
        self._require(audience)
        aspects = set(map(id, self._aspects[audience]))
        return [d for d in self._tx.deployments if id(d.aspect) in aspects]

    def provider(self, audience: str) -> LazyWovenProvider:
        """A lazy per-audience page provider (created once, then cached).

        Pages render concurrently with every other audience's — each
        render passes through the shared class's dispatch wrappers and
        runs only the receiving renderer's navigation stack.
        """
        self._require(audience)
        provider = self._providers.get(audience)
        if provider is None:
            provider = self._providers[audience] = LazyWovenProvider(
                self._renderers[audience]
            )
        return provider

    def reconfigure(
        self, audience: str, bundle: AudienceBundle | Iterable[str]
    ) -> None:
        """Swap one audience's navigation stack without disturbing the rest.

        *bundle* is an :class:`AudienceBundle` or a bare iterable of
        access-structure names.  The audience's deployments are undeployed
        through the set (LIFO unwind, survivors re-woven with their
        original instance scopes) and the new stack is added in their
        place; the audience keeps its renderer instance, so existing
        providers and agents see the new navigation on their next request.

        Failure-safe: the new bundle's specs are resolved *before* the old
        stack is disturbed (an unknown access-structure name raises with
        the audience untouched), and if weaving the new stack fails anyway
        the previous stack is re-woven before the exception propagates.
        """
        self._require(audience)
        if not isinstance(bundle, AudienceBundle):
            bundle = AudienceBundle(audience, tuple(bundle))
        for access in bundle.access_structures:
            self._spec_for(access)
        previous = self._bundles[audience]
        old = self.deployments(audience)
        if old:
            self._tx.undeploy(old)
        try:
            self._weave(bundle)
        except BaseException:
            self._weave(previous)
            raise

    def close(self) -> None:
        """Undeploy every audience's stack and release the renderer class."""
        if self._closed:
            return
        self._closed = True
        self._tx.undeploy()

    def __enter__(self) -> "AudienceServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<AudienceServer {state}, audiences={self.audiences()!r}>"
