"""Live multi-audience serving over instance-scoped weaving.

The paper's claim is that navigation is a swappable aspect over an
untouched base program; the production question is serving *several
audiences at once* from one live process.  Class-level weaving cannot do
that — two differently-configured navigation stacks woven into the shared
renderer class would both fire on every page.  Instance-scoped
deployments (:meth:`repro.aop.WeaverRuntime.deploy` with ``instances=``)
can: every audience gets its own renderer *instance*, its navigation
aspects are scoped to exactly that instance, and all the deployments stay
live side by side in **one** runtime woven from **one** class scan.

:class:`AudienceServer` is that arrangement held as an object::

    from repro.navigation import AudienceServer, UserAgent

    with AudienceServer(fixture, DEFAULT_AUDIENCES) as server:
        visitor = UserAgent(server.provider("visitor"))
        curator = UserAgent(server.provider("curator"))
        visitor.open("index.html")          # tour + index navigation
        curator.open("index.html")          # index only — same process
        server.reconfigure("curator", ("indexed-guided-tour",))
        curator.open("index.html")          # new nav; visitor untouched

Pages render on demand through :class:`LazyWovenProvider`, so a
:meth:`~AudienceServer.reconfigure` between two requests changes what the
*next* page shows — for that audience only.  Reconfiguration rides the
runtime's transactional machinery: the audience's deployments are
partially undeployed (survivors re-weave with their original instance
scopes, so the other audiences' pages stay byte-identical) and the new
stack is added to the same deployment set.
"""

from __future__ import annotations

import posixpath
import threading
from typing import Any, Iterable, Mapping
from urllib.parse import unquote

from repro.aop import Aspect, Deployment, InstanceScope, WeaverRuntime

from .agent import PageAnchor, PageView
from .audience import DEFAULT_AUDIENCES, AudienceBundle
from .errors import NavigationError


def normalize_page_uri(uri: str) -> str:
    """The site-relative normal form providers key their page maps by.

    Decodes percent-encoded segments (``rooms%2Fr1.html``), folds
    Windows-style backslashes to ``/``, strips any leading slashes and
    collapses ``.``/``..`` segments, so rooted (``/index.html``),
    explicitly-relative (``./rooms/r1.html``) and escaped spellings of the
    same page resolve to one key.  References escaping the site root —
    plain (``../outside.html``), rooted (``/../outside.html``) or dressed
    up in percent-encoding (``%2e%2e%2foutside.html``) — are rejected
    with :class:`NavigationError` *after* decoding, so no encoded escape
    can silently remap to an in-site page: slashes are stripped before
    ``..`` segments collapse, which keeps a rooted escape's ``..`` in the
    normal form where the guard sees it.

    Deliberate tradeoff: the HTTP front's ``PATH_INFO`` arrives with one
    WSGI decode already applied, so over HTTP this adds a second decode —
    double-encoded spellings (``%2567uitar``) alias to the same page.
    The page map is the only authority here (there are no path-keyed
    ACLs), escapes past the site root are rejected after any number of
    decodes, and provider-side callers hand in raw node URIs that need
    the decode — so one normal form for both surfaces wins over
    boundary-split decoding.
    """
    decoded = unquote(uri.strip()).replace("\\", "/")
    normalized = posixpath.normpath(decoded.lstrip("/"))
    if normalized == ".." or normalized.startswith("../"):
        raise NavigationError(f"page URI {uri!r} escapes the site root")
    if normalized in ("", "."):
        return "index.html"
    return normalized


def build_node_map(renderer: Any) -> "dict[str, Any]":
    """Normalized URI -> node for everything *renderer* serves.

    The one page-map builder both serving surfaces key off — the
    in-process :class:`LazyWovenProvider` and the HTTP front — so page
    keys cannot drift between them.
    """
    renderer = getattr(renderer, "renderer", renderer)
    return {
        normalize_page_uri(node.uri): node for node in renderer.node_inventory()
    }


def resolve_page_target(nodes: Mapping[str, Any], uri: str) -> "tuple[str, Any]":
    """``(normalized_uri, node)`` for *uri*; ``node=None`` means the home page.

    Raises :class:`NavigationError` when the page is not in the map —
    shared by every serving surface so lookup/404 semantics stay
    identical.
    """
    normalized = normalize_page_uri(uri)
    if normalized == "index.html":
        return normalized, None
    node = nodes.get(normalized)
    if node is None:
        raise NavigationError(f"no page at {uri!r}")
    return normalized, node


class LazyWovenProvider:
    """On-demand page provider over a live woven renderer.

    Unlike a materialized site build, a page is rendered only when the
    user agent asks for it — and because rendering passes through the
    renderer's deployed join points, reconfiguring the weave between two
    requests changes the navigation of pages rendered afterwards.

    Accepts a :class:`~repro.core.renderer.PageRenderer` (or anything
    exposing the same ``render_home``/``render_node``/``node_inventory``
    surface, including a ``.renderer``-bearing wrapper like
    :class:`~repro.core.weave.NavigationWeaver`).
    """

    def __init__(self, renderer: Any):
        renderer = getattr(renderer, "renderer", renderer)
        self._renderer = renderer
        # Normalized URI -> node, computed once from the inventory.
        self._nodes = build_node_map(renderer)

    def page(self, uri: str) -> PageView:
        from repro.xlink import resolve_uri

        normalized, node = resolve_page_target(self._nodes, uri)
        if node is None:
            page = self._renderer.render_home()
        else:
            page = self._renderer.render_node(node)
        anchors = [
            PageAnchor(
                label=a.label,
                href=normalize_page_uri(resolve_uri(normalized, a.href)),
                rel=a.rel,
            )
            for a in page.anchors()
        ]
        return PageView(uri=normalized, title=page.title, anchors=anchors)


class AudienceServer:
    """Serve every audience's navigation live from one woven process.

    One :class:`~repro.aop.WeaverRuntime`, one transactional
    :class:`~repro.aop.DeploymentSet`, one shadow scan of the renderer
    class: each audience bundle gets a private renderer instance and one
    instance-scoped :class:`~repro.core.aspect.NavigationAspect`
    deployment per stacked access structure.  All audiences' deployments
    are live simultaneously; the per-shadow dispatch routes each render
    call to the receiving renderer's own navigation stack.

    ``specs_by_access`` maps access-structure names to prebuilt specs;
    unresolved names are built once via
    :func:`~repro.core.navspec.default_museum_spec` and shared across
    every bundle that stacks them.

    **Two scope tiers.**  Each audience's deployments share one
    *persistent* :class:`~repro.aop.InstanceScope` (created with the
    audience's renderer and kept across :meth:`reconfigure`), so extra
    renderer instances adopted into the audience — one per connected
    session, see :mod:`repro.navigation.http` — ride the audience's
    navigation stack the moment they are added.  Session-private concerns
    (breadcrumb trails) deploy through :meth:`deploy_scoped` into their
    own per-session scopes, layered over the audience tier in the same
    transactional deployment set.  All weave *mutations* are serialized
    on an internal lock; renders stay lock-free and concurrent.
    """

    def __init__(
        self,
        fixture: Any,
        bundles: Iterable[AudienceBundle] | None = None,
        *,
        specs_by_access: Mapping[str, Any] | None = None,
        runtime: WeaverRuntime | None = None,
        lint: str | None = None,
    ):
        from repro.core import PageRenderer

        self._fixture = fixture
        # None, "warn" or "error": passed to every DeploymentSet.add this
        # server performs (audience stacks and session aspects alike), so
        # a serving process can refuse statically-broken weaves up front.
        self._lint = lint
        self._specs: dict[str, Any] = dict(specs_by_access or {})
        self._runtime = (
            runtime if runtime is not None else WeaverRuntime("audience-server")
        )
        self._bundles: dict[str, AudienceBundle] = {}
        self._renderers: dict[str, Any] = {}
        self._scopes: dict[str, InstanceScope] = {}
        self._aspects: dict[str, list[Any]] = {}
        #: id(aspect) -> (aspect, resolved scope, audience or None) for
        #: live deploy_scoped deployments.
        self._session_aspects: dict[int, tuple[Aspect, InstanceScope, str | None]] = {}
        self._providers: dict[str, LazyWovenProvider] = {}
        self._closed = False
        self._lock = threading.RLock()
        self._tx = self._runtime.transaction([PageRenderer])
        try:
            for bundle in bundles if bundles is not None else DEFAULT_AUDIENCES:
                if bundle.name in self._renderers:
                    raise NavigationError(
                        f"duplicate audience bundle {bundle.name!r}"
                    )
                renderer = PageRenderer(fixture)
                self._renderers[bundle.name] = renderer
                self._scopes[bundle.name] = InstanceScope([renderer])
                self._weave(bundle)
        except BaseException:
            self._tx.rollback()
            raise
        self._tx.commit()

    # -- construction helpers --------------------------------------------------

    def _spec_for(self, access: str) -> Any:
        from repro.core.navspec import default_museum_spec

        spec = self._specs.get(access)
        if spec is None:
            spec = self._specs[access] = default_museum_spec(access)
        return spec

    def _weave(self, bundle: AudienceBundle) -> None:
        from repro.core import NavigationAspect

        scope = self._scopes[bundle.name]
        # Build every aspect first: an unknown access-structure name (or a
        # broken spec) must fail before any deployment is touched.
        aspects = [
            NavigationAspect(self._spec_for(access), self._fixture)
            for access in bundle.access_structures
        ]
        added: list[Any] = []
        try:
            for aspect in aspects:
                self._tx.add(aspect, instances=scope, lint=self._lint)
                added.append(aspect)
        except BaseException:
            # Unwind the partial stack so the audience is never left with
            # deployments no bookkeeping entry tracks.
            partial = set(map(id, added))
            live = [d for d in self._tx.deployments if id(d.aspect) in partial]
            if live:
                self._tx.undeploy(live)
            raise
        self._bundles[bundle.name] = bundle
        self._aspects[bundle.name] = aspects

    def _require(self, audience: str) -> None:
        if self._closed:
            raise NavigationError("audience server is closed")
        if audience not in self._bundles:
            raise NavigationError(
                f"no audience {audience!r} "
                f"(serving: {', '.join(sorted(self._bundles)) or 'none'})"
            )

    # -- the serving surface ---------------------------------------------------

    @property
    def runtime(self) -> WeaverRuntime:
        """The scoped runtime holding every audience's deployments."""
        return self._runtime

    @property
    def fixture(self) -> Any:
        """The content fixture every renderer instance serves from."""
        return self._fixture

    def audiences(self) -> list[str]:
        """The audiences currently served, in registration order."""
        return list(self._bundles)

    def scope(self, audience: str) -> InstanceScope:
        """The audience's persistent instance scope.

        Every deployment of the audience's stack dispatches through this
        one scope — across reconfigures — so a renderer adopted into it is
        advised by whatever the audience's *current* stack is.
        """
        self._require(audience)
        return self._scopes[audience]

    def bundle(self, audience: str) -> AudienceBundle:
        """The bundle *audience* is currently configured with."""
        self._require(audience)
        return self._bundles[audience]

    def renderer(self, audience: str) -> Any:
        """The audience's private (woven) renderer instance."""
        self._require(audience)
        return self._renderers[audience]

    def deployments(self, audience: str) -> list[Deployment]:
        """The audience's live deployment handles, oldest first.

        Looked up by aspect identity rather than cached: a partial
        undeploy (another audience reconfiguring) re-weaves survivors and
        refreshes their handles.
        """
        self._require(audience)
        aspects = set(map(id, self._aspects[audience]))
        return [d for d in self._tx.deployments if id(d.aspect) in aspects]

    def provider(self, audience: str) -> LazyWovenProvider:
        """A lazy per-audience page provider (created once, then cached).

        Pages render concurrently with every other audience's — each
        render passes through the shared class's dispatch wrappers and
        runs only the receiving renderer's navigation stack.
        """
        self._require(audience)
        provider = self._providers.get(audience)
        if provider is None:
            provider = self._providers[audience] = LazyWovenProvider(
                self._renderers[audience]
            )
        return provider

    # -- the session tier ------------------------------------------------------

    def adopt_renderer(self, audience: str) -> Any:
        """A fresh renderer instance riding *audience*'s navigation stack.

        The instance joins the audience's persistent scope, so the stack's
        marker dispatch stamps it immediately — its very first render
        carries the audience's navigation, and a later
        :meth:`reconfigure` of the audience re-skins it along with every
        other member.  One is adopted per connected session (see
        :mod:`repro.navigation.http`); pair with :meth:`release_renderer`.
        """
        from repro.core import PageRenderer

        with self._lock:
            self._require(audience)
            renderer = PageRenderer(self._fixture)
            self._scopes[audience].add(renderer)
            return renderer

    def release_renderer(self, audience: str, renderer: Any) -> None:
        """Evict an adopted renderer from the audience's scope.

        Discarding strips the scope's marker stamp, so the instance falls
        back to plain (navigation-free) rendering; idempotent, and safe
        after :meth:`close`.
        """
        with self._lock:
            scope = self._scopes.get(audience)
            if scope is not None:
                scope.discard(renderer)

    def deploy_scoped(
        self,
        aspect: Aspect,
        instances: "Iterable[Any] | InstanceScope",
        *,
        audience: str | None = None,
    ) -> Deployment:
        """Layer a session-private aspect over the audience tier.

        Deploys *aspect* into the server's transactional set, scoped to
        *instances* (typically one session's adopted renderer).  The
        deployment stacks over whatever is already live and unwinds with
        the set; undo it with :meth:`undeploy_scoped` — by aspect, because
        a reconfigure re-weaves survivors and refreshes their handles.

        *instances* is resolved to one :class:`~repro.aop.InstanceScope`
        up front (a bare iterable is consumed exactly once) and that same
        scope object rides every re-weave, so membership mutated after
        deployment survives reconfigures.  ``audience`` (when known) lets
        :meth:`reconfigure` re-stack only the *targeted* audience's
        session aspects instead of every session in the process.
        """
        with self._lock:
            if self._closed:
                raise NavigationError("audience server is closed")
            scope = InstanceScope.resolve(instances)
            deployment = self._tx.add(aspect, instances=scope, lint=self._lint)
            self._session_aspects[id(aspect)] = (aspect, scope, audience)
            return deployment

    def undeploy_scoped(self, aspect: Aspect) -> None:
        """Unwind a session aspect deployed via :meth:`deploy_scoped`.

        Looked up by aspect identity (handles are refreshed whenever a
        reconfigure re-weaves the stack above it); a no-op when the aspect
        is not live — eviction after :meth:`close` must not raise.
        """
        with self._lock:
            self._session_aspects.pop(id(aspect), None)
            if self._closed:
                return
            live = [d for d in self._tx.deployments if d.aspect is aspect]
            if live:
                self._tx.undeploy(live)

    def reconfigure(
        self, audience: str, bundle: AudienceBundle | Iterable[str]
    ) -> None:
        """Swap one audience's navigation stack without disturbing the rest.

        *bundle* is an :class:`AudienceBundle` or a bare iterable of
        access-structure names.  The audience's deployments are undeployed
        through the set (LIFO unwind, survivors re-woven with their
        original instance scopes) and the new stack is added in their
        place; the audience keeps its renderer instance, so existing
        providers and agents see the new navigation on their next request.

        Failure-safe: the new bundle's specs are resolved *before* the old
        stack is disturbed (an unknown access-structure name raises with
        the audience untouched), and if weaving the new stack fails anyway
        the previous stack is re-woven before the exception propagates.
        """
        with self._lock:
            self._require(audience)
            if not isinstance(bundle, AudienceBundle):
                bundle = AudienceBundle(audience, tuple(bundle))
            for access in bundle.access_structures:
                self._spec_for(access)
            previous = self._bundles[audience]
            old = self.deployments(audience)
            # Session aspects always stack *above* every audience's
            # navigation (they are deployed after the constructor wove
            # the audiences).  Re-weaving the new stack appends it to the
            # top of the transaction, so the *targeted* audience's session
            # deployments are unwound here and re-added afterwards —
            # keeping the documented order (audience tier below, session
            # tier above) stable across reconfigures for its live
            # sessions.  Other audiences' sessions are left to the partial
            # undeploy's survivor re-weave (they end up above the new
            # stack regardless, since they were deployed after every
            # audience's initial weave).
            restacked = [
                entry
                for entry in self._session_aspects.values()
                if entry[2] in (None, audience)
            ]
            restack_ids = {id(entry[0]) for entry in restacked}
            sessions = [
                d
                for d in self._tx.deployments
                if id(d.aspect) in restack_ids
            ]
            if old or sessions:
                self._tx.undeploy([*old, *sessions])
            try:
                self._weave(bundle)
            except BaseException:
                self._weave(previous)
                raise
            finally:
                # Both on success and on a rolled-back failure, the
                # audience's sessions return to the top of the stack.
                for aspect, scope, _ in restacked:
                    self._tx.add(aspect, instances=scope)

    def close(self) -> None:
        """Undeploy every audience's stack and release the renderer class."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._tx.undeploy()

    def __enter__(self) -> "AudienceServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<AudienceServer {state}, audiences={self.audiences()!r}>"
