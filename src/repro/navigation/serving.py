"""Live multi-audience serving over instance-scoped weaving.

The paper's claim is that navigation is a swappable aspect over an
untouched base program; the production question is serving *several
audiences at once* from one live process.  Class-level weaving cannot do
that — two differently-configured navigation stacks woven into the shared
renderer class would both fire on every page.  Instance-scoped
deployments (:meth:`repro.aop.WeaverRuntime.deploy` with ``instances=``)
can: every audience gets its own renderer *instance*, its navigation
aspects are scoped to exactly that instance, and all the deployments stay
live side by side in **one** runtime woven from **one** class scan.

:class:`AudienceServer` is that arrangement held as an object::

    from repro.navigation import AudienceServer, UserAgent

    with AudienceServer(fixture, DEFAULT_AUDIENCES) as server:
        visitor = UserAgent(server.provider("visitor"))
        curator = UserAgent(server.provider("curator"))
        visitor.open("index.html")          # tour + index navigation
        curator.open("index.html")          # index only — same process
        server.reconfigure("curator", ("indexed-guided-tour",))
        curator.open("index.html")          # new nav; visitor untouched

Pages render on demand through :class:`LazyWovenProvider`, so a
:meth:`~AudienceServer.reconfigure` between two requests changes what the
*next* page shows — for that audience only.  Reconfiguration rides the
runtime's transactional machinery: the audience's deployments are
partially undeployed (survivors re-weave with their original instance
scopes, so the other audiences' pages stay byte-identical) and the new
stack is added to the same deployment set.
"""

from __future__ import annotations

import posixpath
import threading
import warnings
from typing import Any, Iterable, Mapping
from urllib.parse import unquote

from repro.aop import Aspect, Deployment, InstanceScope, WeaverRuntime

from .agent import PageAnchor, PageView
from .audience import DEFAULT_AUDIENCES, AudienceBundle
from .cache import PageCache
from .config import ServingConfig
from .errors import NavigationError

#: Sentinel distinguishing "not passed" from an explicit ``None`` in the
#: deprecated keyword shims.
_UNSET: Any = object()


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.navigation.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def normalize_page_uri(uri: str) -> str:
    """The site-relative normal form providers key their page maps by.

    Decodes percent-encoded segments (``rooms%2Fr1.html``), folds
    Windows-style backslashes to ``/``, strips any leading slashes and
    collapses ``.``/``..`` segments, so rooted (``/index.html``),
    explicitly-relative (``./rooms/r1.html``) and escaped spellings of the
    same page resolve to one key.  References escaping the site root —
    plain (``../outside.html``), rooted (``/../outside.html``) or dressed
    up in percent-encoding (``%2e%2e%2foutside.html``) — are rejected
    with :class:`NavigationError` *after* decoding, so no encoded escape
    can silently remap to an in-site page: slashes are stripped before
    ``..`` segments collapse, which keeps a rooted escape's ``..`` in the
    normal form where the guard sees it.

    Deliberate tradeoff: the HTTP front's ``PATH_INFO`` arrives with one
    WSGI decode already applied, so over HTTP this adds a second decode —
    double-encoded spellings (``%2567uitar``) alias to the same page.
    The page map is the only authority here (there are no path-keyed
    ACLs), escapes past the site root are rejected after any number of
    decodes, and provider-side callers hand in raw node URIs that need
    the decode — so one normal form for both surfaces wins over
    boundary-split decoding.
    """
    decoded = unquote(uri.strip()).replace("\\", "/")
    normalized = posixpath.normpath(decoded.lstrip("/"))
    if normalized == ".." or normalized.startswith("../"):
        raise NavigationError(f"page URI {uri!r} escapes the site root")
    if normalized in ("", "."):
        return "index.html"
    return normalized


def build_node_map(renderer: Any) -> "dict[str, Any]":
    """Normalized URI -> node for everything *renderer* serves.

    The one page-map builder both serving surfaces key off — the
    in-process :class:`LazyWovenProvider` and the HTTP front — so page
    keys cannot drift between them.
    """
    renderer = getattr(renderer, "renderer", renderer)
    return {
        normalize_page_uri(node.uri): node for node in renderer.node_inventory()
    }


def resolve_page_target(nodes: Mapping[str, Any], uri: str) -> "tuple[str, Any]":
    """``(normalized_uri, node)`` for *uri*; ``node=None`` means the home page.

    Raises :class:`NavigationError` when the page is not in the map —
    shared by every serving surface so lookup/404 semantics stay
    identical.
    """
    normalized = normalize_page_uri(uri)
    if normalized == "index.html":
        return normalized, None
    node = nodes.get(normalized)
    if node is None:
        raise NavigationError(f"no page at {uri!r}")
    return normalized, node


class LazyWovenProvider:
    """On-demand page provider over a live woven renderer.

    Unlike a materialized site build, a page is rendered only when the
    user agent asks for it — and because rendering passes through the
    renderer's deployed join points, reconfiguring the weave between two
    requests changes the navigation of pages rendered afterwards.

    Accepts a :class:`~repro.core.renderer.PageRenderer` (or anything
    exposing the same ``render_home``/``render_node``/``node_inventory``
    surface, including a ``.renderer``-bearing wrapper like
    :class:`~repro.core.weave.NavigationWeaver`).
    """

    def __init__(self, renderer: Any):
        renderer = getattr(renderer, "renderer", renderer)
        self._renderer = renderer
        # Normalized URI -> node, computed once from the inventory.
        self._nodes = build_node_map(renderer)

    def page(self, uri: str) -> PageView:
        from repro.xlink import resolve_uri

        normalized, node = resolve_page_target(self._nodes, uri)
        if node is None:
            page = self._renderer.render_home()
        else:
            page = self._renderer.render_node(node)
        anchors = [
            PageAnchor(
                label=a.label,
                href=normalize_page_uri(resolve_uri(normalized, a.href)),
                rel=a.rel,
            )
            for a in page.anchors()
        ]
        return PageView(uri=normalized, title=page.title, anchors=anchors)


class AudienceServer:
    """Serve every audience's navigation live from one woven process.

    One :class:`~repro.aop.WeaverRuntime`, one transactional
    :class:`~repro.aop.DeploymentSet`, one shadow scan of the renderer
    class: each audience bundle gets a private renderer instance and one
    instance-scoped :class:`~repro.core.aspect.NavigationAspect`
    deployment per stacked access structure.  All audiences' deployments
    are live simultaneously; the per-shadow dispatch routes each render
    call to the receiving renderer's own navigation stack.

    ``specs_by_access`` maps access-structure names to prebuilt specs;
    unresolved names are built once via
    :func:`~repro.core.navspec.default_museum_spec` and shared across
    every bundle that stacks them.

    **Two scope tiers.**  Each audience's deployments share one
    *persistent* :class:`~repro.aop.InstanceScope` (created with the
    audience's renderer and kept across :meth:`reconfigure`), so extra
    renderer instances adopted into the audience — one per connected
    session, see :mod:`repro.navigation.http` — ride the audience's
    navigation stack the moment they are added.  Session-private concerns
    (breadcrumb trails) deploy through a :meth:`session_tier` handle into
    their own per-session scopes, layered over the audience tier in the
    same transactional deployment set.  All weave *mutations* are serialized
    on an internal lock; renders stay lock-free and concurrent.
    """

    def __init__(
        self,
        fixture: Any,
        bundles: Iterable[AudienceBundle] | None = None,
        *,
        specs_by_access: Mapping[str, Any] | None = None,
        runtime: WeaverRuntime | None = None,
        config: ServingConfig | None = None,
        lint: Any = _UNSET,
    ):
        from repro.core import PageRenderer

        self._fixture = fixture
        if config is None:
            config = ServingConfig()
        if lint is not _UNSET:
            _deprecated(
                "AudienceServer(lint=...)",
                "AudienceServer(config=ServingConfig(lint=...))",
            )
            config = config.replace(lint=lint)
        self._config = config
        # None, "warn" or "error": passed to every DeploymentSet.add this
        # server performs (audience stacks and session aspects alike), so
        # a serving process can refuse statically-broken weaves up front.
        self._lint = config.lint
        # Read once: flipping REPRO_PAGE_CACHE affects servers built
        # afterwards, never this one's live caches.
        self._cache_active = config.cache_active()
        self._specs: dict[str, Any] = dict(specs_by_access or {})
        self._runtime = (
            runtime if runtime is not None else WeaverRuntime("audience-server")
        )
        self._bundles: dict[str, AudienceBundle] = {}
        self._renderers: dict[str, Any] = {}
        self._scopes: dict[str, InstanceScope] = {}
        self._aspects: dict[str, list[Any]] = {}
        #: Audience -> snapshot of the runtime's weave epoch taken after
        #: the last mutation touching that audience's stack; the page
        #: cache keys on it (readers snapshot it lock-free).
        self._epochs: dict[str, int] = {}
        #: Audience -> skeleton cache (``None`` when the tier is off).
        self._caches: dict[str, PageCache | None] = {}
        #: id(aspect) -> (aspect, resolved scope, audience or None) for
        #: live session-tier deployments.
        self._session_aspects: dict[int, tuple[Aspect, InstanceScope, str | None]] = {}
        self._providers: dict[str, LazyWovenProvider] = {}
        self._closed = False
        self._lock = threading.RLock()
        self._tx = self._runtime.transaction([PageRenderer])
        try:
            for bundle in bundles if bundles is not None else DEFAULT_AUDIENCES:
                if bundle.name in self._renderers:
                    raise NavigationError(
                        f"duplicate audience bundle {bundle.name!r}"
                    )
                renderer = PageRenderer(fixture)
                self._renderers[bundle.name] = renderer
                self._scopes[bundle.name] = InstanceScope([renderer])
                self._weave(bundle)
                self._epochs[bundle.name] = self._runtime.weave_epoch
                self._caches[bundle.name] = (
                    PageCache(config.cache_pages) if self._cache_active else None
                )
        except BaseException:
            self._tx.rollback()
            raise
        self._tx.commit()

    # -- construction helpers --------------------------------------------------

    def _spec_for(self, access: str) -> Any:
        from repro.core.navspec import default_museum_spec

        spec = self._specs.get(access)
        if spec is None:
            spec = self._specs[access] = default_museum_spec(access)
        return spec

    def _weave(self, bundle: AudienceBundle) -> None:
        from repro.core import NavigationAspect

        scope = self._scopes[bundle.name]
        # Build every aspect first: an unknown access-structure name (or a
        # broken spec) must fail before any deployment is touched.
        aspects = [
            NavigationAspect(self._spec_for(access), self._fixture)
            for access in bundle.access_structures
        ]
        added: list[Any] = []
        try:
            for aspect in aspects:
                self._tx._add(aspect, instances=scope, lint=self._lint)
                added.append(aspect)
        except BaseException:
            # Unwind the partial stack so the audience is never left with
            # deployments no bookkeeping entry tracks.
            partial = set(map(id, added))
            live = [d for d in self._tx.deployments if id(d.aspect) in partial]
            if live:
                self._tx.undeploy(live)
            raise
        self._bundles[bundle.name] = bundle
        self._aspects[bundle.name] = aspects

    def _require(self, audience: str) -> None:
        if self._closed:
            raise NavigationError("audience server is closed")
        if audience not in self._bundles:
            raise NavigationError(
                f"no audience {audience!r} "
                f"(serving: {', '.join(sorted(self._bundles)) or 'none'})"
            )

    def _bump_epoch(self, audience: str | None) -> None:
        """Move *audience* (or every audience) to a fresh weave epoch.

        Callers hold ``self._lock``.  The fresh value is strictly newer
        than anything a concurrent reader can have snapshotted, so every
        skeleton cached before — or rendered across — the mutation is
        unreachable the moment this returns; the stale generation is
        reclaimed from the cache eagerly.
        """
        fresh = self._runtime.advance_epoch()
        for name in [audience] if audience is not None else list(self._bundles):
            self._epochs[name] = fresh
            cache = self._caches.get(name)
            if cache is not None:
                cache.drop_stale(fresh)

    # -- the serving surface ---------------------------------------------------

    @property
    def runtime(self) -> WeaverRuntime:
        """The scoped runtime holding every audience's deployments."""
        return self._runtime

    @property
    def config(self) -> ServingConfig:
        """The serving configuration this server was built with."""
        return self._config

    @property
    def fixture(self) -> Any:
        """The content fixture every renderer instance serves from."""
        return self._fixture

    def audiences(self) -> list[str]:
        """The audiences currently served, in registration order."""
        return list(self._bundles)

    def scope(self, audience: str) -> InstanceScope:
        """The audience's persistent instance scope.

        Every deployment of the audience's stack dispatches through this
        one scope — across reconfigures — so a renderer adopted into it is
        advised by whatever the audience's *current* stack is.
        """
        self._require(audience)
        return self._scopes[audience]

    def bundle(self, audience: str) -> AudienceBundle:
        """The bundle *audience* is currently configured with."""
        self._require(audience)
        return self._bundles[audience]

    def renderer(self, audience: str) -> Any:
        """The audience's private (woven) renderer instance."""
        self._require(audience)
        return self._renderers[audience]

    def deployments(self, audience: str) -> list[Deployment]:
        """The audience's live deployment handles, oldest first.

        Looked up by aspect identity rather than cached: a partial
        undeploy (another audience reconfiguring) re-weaves survivors and
        refreshes their handles.
        """
        self._require(audience)
        aspects = set(map(id, self._aspects[audience]))
        return [d for d in self._tx.deployments if id(d.aspect) in aspects]

    def provider(self, audience: str) -> LazyWovenProvider:
        """A lazy per-audience page provider (created once, then cached).

        Pages render concurrently with every other audience's — each
        render passes through the shared class's dispatch wrappers and
        runs only the receiving renderer's navigation stack.
        """
        self._require(audience)
        provider = self._providers.get(audience)
        if provider is None:
            provider = self._providers[audience] = LazyWovenProvider(
                self._renderers[audience]
            )
        return provider

    # -- the cache tier --------------------------------------------------------

    def weave_epoch(self, audience: str) -> int:
        """The epoch *audience*'s stack is currently at (lock-free read).

        A snapshot of :attr:`~repro.aop.WeaverRuntime.weave_epoch` taken
        under the server lock after the last mutation that touched this
        audience — ``reconfigure``, a scoped session deployment, or
        ``close``.  A skeleton rendered and cached under epoch *e* is
        valid exactly while this still returns *e*.
        """
        self._require(audience)
        return self._epochs[audience]

    def page_cache(self, audience: str) -> PageCache | None:
        """The audience's skeleton cache, or ``None`` when the tier is off.

        Off when the server's config disables it or the
        ``REPRO_PAGE_CACHE`` environment escape hatch was set at
        construction time.
        """
        self._require(audience)
        return self._caches.get(audience)

    # -- the session tier ------------------------------------------------------

    def session_tier(self, audience: str) -> "SessionTier":
        """Open a session scope tier over *audience*'s live stack.

        Adopts a fresh private renderer into the audience's persistent
        scope and pairs it with a per-session
        :class:`~repro.aop.InstanceScope`; the returned
        :class:`SessionTier` deploys session-private aspects through
        :meth:`SessionTier.deploy` and unwinds everything — deployments
        and the renderer's scope membership — in one
        :meth:`SessionTier.close` (or ``with`` block).
        """
        with self._lock:
            renderer = self._adopt_renderer(audience)
            return SessionTier(self, audience, renderer, InstanceScope([renderer]))

    def _adopt_renderer(self, audience: str) -> Any:
        from repro.core import PageRenderer

        with self._lock:
            self._require(audience)
            renderer = PageRenderer(self._fixture)
            self._scopes[audience].add(renderer)
            return renderer

    def _release_renderer(self, audience: str, renderer: Any) -> None:
        with self._lock:
            scope = self._scopes.get(audience)
            if scope is not None:
                scope.discard(renderer)

    def _deploy_scoped(
        self,
        aspect: Aspect,
        instances: "Iterable[Any] | InstanceScope",
        *,
        audience: str | None = None,
    ) -> Deployment:
        with self._lock:
            if self._closed:
                raise NavigationError("audience server is closed")
            scope = InstanceScope.resolve(instances)
            deployment = self._tx._add(aspect, instances=scope, lint=self._lint)
            self._session_aspects[id(aspect)] = (aspect, scope, audience)
            # Cached skeletons render through the audience's *shared*
            # renderer, so a scoped deployment only supersedes them when
            # that renderer is a scope member.  A purely session-scoped
            # deploy (the common case: every new session's breadcrumb
            # tier) leaves the cache warm.  With no target audience we
            # can't tell whose skeletons the scope touches — bump all.
            if audience is None or self._renderers[audience] in scope:
                self._bump_epoch(audience)
            return deployment

    def _undeploy_scoped(self, aspect: Aspect) -> None:
        with self._lock:
            entry = self._session_aspects.pop(id(aspect), None)
            if self._closed:
                return
            live = [d for d in self._tx.deployments if d.aspect is aspect]
            if live:
                self._tx.undeploy(live)
            if live or entry is not None:
                # Mirror the deploy-side rule: a deployment that never
                # covered the audience's shared renderer never reached a
                # cached skeleton, so undeploying it leaves the cache
                # coherent.  Unknown target → conservative bump of all.
                audience = entry[2] if entry is not None else None
                if audience is None or self._renderers[audience] in entry[1]:
                    self._bump_epoch(audience)

    def adopt_renderer(self, audience: str) -> Any:
        """Deprecated: use :meth:`session_tier` (adopt + scope in one handle).

        A fresh renderer instance riding *audience*'s navigation stack:
        the instance joins the audience's persistent scope, so the
        stack's marker dispatch stamps it immediately and a later
        :meth:`reconfigure` re-skins it along with every other member.
        Pair with :meth:`release_renderer`.
        """
        _deprecated("AudienceServer.adopt_renderer", "session_tier")
        return self._adopt_renderer(audience)

    def release_renderer(self, audience: str, renderer: Any) -> None:
        """Deprecated: use :meth:`SessionTier.close`.

        Evicts an adopted renderer from the audience's scope, stripping
        the scope's marker stamp so the instance falls back to plain
        rendering; idempotent, and safe after :meth:`close`.
        """
        _deprecated("AudienceServer.release_renderer", "SessionTier.close")
        self._release_renderer(audience, renderer)

    def deploy_scoped(
        self,
        aspect: Aspect,
        instances: "Iterable[Any] | InstanceScope",
        *,
        audience: str | None = None,
    ) -> Deployment:
        """Deprecated: use :meth:`SessionTier.deploy`.

        Layers a session-private aspect over the audience tier: deploys
        *aspect* into the server's transactional set, scoped to
        *instances* (resolved to one :class:`~repro.aop.InstanceScope`
        up front — a bare iterable is consumed exactly once — and that
        same scope object rides every re-weave).  ``audience`` (when
        known) lets :meth:`reconfigure` re-stack only the targeted
        audience's session aspects; undo with :meth:`undeploy_scoped`.
        """
        _deprecated("AudienceServer.deploy_scoped", "SessionTier.deploy")
        return self._deploy_scoped(aspect, instances, audience=audience)

    def undeploy_scoped(self, aspect: Aspect) -> None:
        """Deprecated: use :meth:`SessionTier.undeploy` (or ``close``).

        Unwinds a session aspect deployed via :meth:`deploy_scoped`,
        looked up by aspect identity (handles are refreshed whenever a
        reconfigure re-weaves the stack above it); a no-op when the
        aspect is not live — eviction after :meth:`close` must not raise.
        """
        _deprecated("AudienceServer.undeploy_scoped", "SessionTier.undeploy")
        self._undeploy_scoped(aspect)

    def reconfigure(
        self, audience: str, bundle: AudienceBundle | Iterable[str]
    ) -> None:
        """Swap one audience's navigation stack without disturbing the rest.

        *bundle* is an :class:`AudienceBundle` or a bare iterable of
        access-structure names.  The audience's deployments are undeployed
        through the set (LIFO unwind, survivors re-woven with their
        original instance scopes) and the new stack is added in their
        place; the audience keeps its renderer instance, so existing
        providers and agents see the new navigation on their next request.

        Failure-safe: the new bundle's specs are resolved *before* the old
        stack is disturbed (an unknown access-structure name raises with
        the audience untouched), and if weaving the new stack fails anyway
        the previous stack is re-woven before the exception propagates.
        """
        with self._lock:
            self._require(audience)
            if not isinstance(bundle, AudienceBundle):
                bundle = AudienceBundle(audience, tuple(bundle))
            for access in bundle.access_structures:
                self._spec_for(access)
            # Epoch fence *before* the first weave mutation: requests
            # that snapshotted the pre-reconfigure epoch can no longer
            # install skeletons under a key any later reader will hit.
            self._bump_epoch(audience)
            previous = self._bundles[audience]
            old = self.deployments(audience)
            # Session aspects always stack *above* every audience's
            # navigation (they are deployed after the constructor wove
            # the audiences).  Re-weaving the new stack appends it to the
            # top of the transaction, so the *targeted* audience's session
            # deployments are unwound here and re-added afterwards —
            # keeping the documented order (audience tier below, session
            # tier above) stable across reconfigures for its live
            # sessions.  Other audiences' sessions are left to the partial
            # undeploy's survivor re-weave (they end up above the new
            # stack regardless, since they were deployed after every
            # audience's initial weave).
            restacked = [
                entry
                for entry in self._session_aspects.values()
                if entry[2] in (None, audience)
            ]
            restack_ids = {id(entry[0]) for entry in restacked}
            sessions = [
                d
                for d in self._tx.deployments
                if id(d.aspect) in restack_ids
            ]
            if old or sessions:
                self._tx.undeploy([*old, *sessions])
            try:
                self._weave(bundle)
            except BaseException:
                self._weave(previous)
                raise
            finally:
                # Both on success and on a rolled-back failure, the
                # audience's sessions return to the top of the stack.
                for aspect, scope, _ in restacked:
                    self._tx._add(aspect, instances=scope)
                # Closing fence: anything rendered *during* the swap was
                # keyed under the opening fence's epoch and dies here, so
                # the first post-reconfigure request re-renders.
                self._bump_epoch(audience)

    def close(self) -> None:
        """Undeploy every audience's stack and release the renderer class."""
        with self._lock:
            if self._closed:
                return
            self._bump_epoch(None)
            for cache in self._caches.values():
                if cache is not None:
                    cache.clear()
            self._closed = True
            self._tx.undeploy()

    def __enter__(self) -> "AudienceServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<AudienceServer {state}, audiences={self.audiences()!r}>"


class SessionTier:
    """One session's scope tier over an audience's live stack, as a handle.

    Returned by :meth:`AudienceServer.session_tier`: owns a freshly
    adopted private renderer (a member of the audience's persistent
    scope, so it rides the audience's navigation and any live
    reconfigure of it) plus a per-session
    :class:`~repro.aop.InstanceScope` for session-private concerns.
    :meth:`deploy` layers an aspect over the audience tier scoped to
    this session; :meth:`close` — or leaving a ``with`` block — unwinds
    every tier deployment *and* the renderer's scope membership
    together, replacing the four-call adopt/deploy/undeploy/release
    dance of the old surface.
    """

    def __init__(
        self,
        server: AudienceServer,
        audience: str,
        renderer: Any,
        scope: InstanceScope,
    ):
        self._server = server
        self._audience = audience
        self._renderer = renderer
        self._scope = scope
        self._aspects: list[Aspect] = []
        self._closed = False

    @property
    def audience(self) -> str:
        return self._audience

    @property
    def renderer(self) -> Any:
        """The session's private renderer (member of the audience scope)."""
        return self._renderer

    @property
    def scope(self) -> InstanceScope:
        """The per-session scope tier deployments dispatch through."""
        return self._scope

    def aspects(self) -> list[Aspect]:
        """This tier's live aspects, oldest first."""
        return list(self._aspects)

    def deploy(
        self, aspect: Aspect, instances: "Iterable[Any] | InstanceScope | None" = None
    ) -> Deployment:
        """Deploy *aspect* scoped to this session (default: the tier scope).

        Stacks over the audience tier in the server's transactional set;
        closed tiers refuse.  The deployment is owned by the tier —
        :meth:`close` unwinds it — or undo it early with
        :meth:`undeploy`.
        """
        if self._closed:
            raise NavigationError(
                f"session tier over {self._audience!r} is closed"
            )
        deployment = self._server._deploy_scoped(
            aspect,
            self._scope if instances is None else instances,
            audience=self._audience,
        )
        self._aspects.append(aspect)
        return deployment

    def undeploy(self, aspect: Aspect) -> None:
        """Unwind one tier deployment early (by aspect identity)."""
        self._server._undeploy_scoped(aspect)
        self._aspects = [a for a in self._aspects if a is not aspect]

    def close(self) -> None:
        """Unwind the whole tier: every deployment, then the renderer.

        LIFO over the tier's aspects, then the renderer leaves the
        audience scope (stripping its marker stamp, back to plain
        rendering).  Idempotent, and safe after the server closed.
        """
        if self._closed:
            return
        self._closed = True
        for aspect in reversed(self._aspects):
            self._server._undeploy_scoped(aspect)
        self._aspects.clear()
        self._server._release_renderer(self._audience, self._renderer)

    def __enter__(self) -> "SessionTier":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<SessionTier {state}, audience={self._audience!r}, "
            f"aspects={len(self._aspects)}>"
        )
