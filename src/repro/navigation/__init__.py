"""Navigation runtime: sessions, history, and a user-agent simulator.

Executes the paper's navigation semantics: movement through an information
space where "the next page to visit will depend on the previous
navigation" — see :class:`NavigationSession` for the context-dependent
``next()``/``previous()`` and :class:`UserAgent` for the browser stand-in.
"""

from .agent import CallableProvider, PageAnchor, PageProvider, PageView, UserAgent
from .audience import DEFAULT_AUDIENCES, AudienceBundle
from .errors import NavigationError
from .history import History
from .session import NavigationSession, Position

__all__ = [
    "AudienceBundle",
    "CallableProvider",
    "DEFAULT_AUDIENCES",
    "History",
    "NavigationError",
    "NavigationSession",
    "PageAnchor",
    "PageProvider",
    "PageView",
    "Position",
    "UserAgent",
]
