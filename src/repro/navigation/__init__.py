"""Navigation runtime: sessions, history, a user agent, and live serving.

Executes the paper's navigation semantics: movement through an information
space where "the next page to visit will depend on the previous
navigation" — see :class:`NavigationSession` for the context-dependent
``next()``/``previous()`` and :class:`UserAgent` for the browser stand-in.

The serving layer (:mod:`repro.navigation.serving`) turns the paper's
"navigation is a swappable aspect" claim into a live multi-audience
process: an :class:`AudienceServer` holds one instance-scoped navigation
stack per :class:`AudienceBundle` over a single woven renderer class,
serves lazy per-audience page providers concurrently, and reconfigures
one audience's navigation without disturbing the others::

    with AudienceServer(fixture, DEFAULT_AUDIENCES) as server:
        visitor = UserAgent(server.provider("visitor"))
        curator = UserAgent(server.provider("curator"))
        visitor.open("index.html")      # tour + index navigation
        curator.open("index.html")      # index only — same live process
        server.reconfigure("curator", ("indexed-guided-tour",))

The HTTP front (:mod:`repro.navigation.http`) puts that process behind a
threaded WSGI server — ``GET /{audience}/{page_uri}`` with one *session
scope* per connected user (private renderer + :class:`BreadcrumbAspect`
trail, idle eviction) and a live management surface
(``POST /-/reconfigure/{audience}``, ``GET /-/stats``)::

    python -m repro.tools serve --audiences visitor,curator

(See ``examples/live_weaving.py`` for the full walkthrough.)
"""

from .agent import CallableProvider, PageAnchor, PageProvider, PageView, UserAgent
from .asgi import AsgiHttpServer, AsgiNavigationApp, serve_async
from .audience import DEFAULT_AUDIENCES, AudienceBundle
from .cache import CachedSkeleton, PageCache, page_cache_enabled
from .config import ServingConfig
from .errors import NavigationError
from .history import History
from .http import NavigationApp, serve
from .serving import (
    AudienceServer,
    LazyWovenProvider,
    SessionTier,
    normalize_page_uri,
)
from .session import (
    BreadcrumbAspect,
    BreadcrumbTrail,
    NavigationSession,
    Position,
    SessionRecord,
)

__all__ = [
    "AsgiHttpServer",
    "AsgiNavigationApp",
    "AudienceBundle",
    "AudienceServer",
    "BreadcrumbAspect",
    "BreadcrumbTrail",
    "CachedSkeleton",
    "CallableProvider",
    "DEFAULT_AUDIENCES",
    "History",
    "LazyWovenProvider",
    "NavigationApp",
    "NavigationError",
    "NavigationSession",
    "PageAnchor",
    "PageCache",
    "PageProvider",
    "PageView",
    "Position",
    "ServingConfig",
    "SessionRecord",
    "SessionTier",
    "UserAgent",
    "normalize_page_uri",
    "page_cache_enabled",
    "serve",
    "serve_async",
]
