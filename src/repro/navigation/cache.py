"""A weave-epoch page cache for the serving hot path.

The serving layer's pages are deterministic for a fixed audience, page
and deployment state — everything session-variant is confined to the
breadcrumb trail block, which :meth:`~repro.web.html.HtmlPage.
skeleton_html` lifts out behind :data:`~repro.web.html.TRAIL_SLOT`.  That
makes the rendered *skeleton* cacheable, provided the cache key pins down
the deployment state.  The pin is the **weave epoch**: a monotonic
counter (:attr:`~repro.aop.WeaverRuntime.weave_epoch`, snapshotted per
audience by :class:`~repro.navigation.serving.AudienceServer`) that
advances on every weave mutation touching the audience's stack.  A
``deploy``, ``undeploy``, ``reconfigure`` or scoped session deployment
moves the audience to a new epoch; every entry keyed under an older
epoch becomes unreachable at that instant — invalidation is a counter
bump, never a scan.

One :class:`PageCache` per audience (the audience is the cache instance;
the key inside it is ``(page_uri, epoch)``), LRU-bounded, counters for
``/-/stats``.  ``REPRO_PAGE_CACHE=0`` switches the whole tier off,
mirroring the ``REPRO_AOP_CODEGEN`` escape hatch.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass


def page_cache_enabled() -> bool:
    """Whether the serving layer caches page skeletons (default: yes).

    Controlled by the ``REPRO_PAGE_CACHE`` environment variable; ``0``,
    ``false``, ``no`` and ``off`` disable it.  Read when an
    :class:`~repro.navigation.serving.AudienceServer` is constructed, so
    flipping it affects subsequently-built servers, never live caches.
    """
    return os.environ.get("REPRO_PAGE_CACHE", "1").strip().lower() not in {
        "0",
        "false",
        "no",
        "off",
    }


@dataclass(frozen=True)
class CachedSkeleton:
    """One cache entry: a serialized skeleton plus trail-recording facts.

    ``title`` and ``path`` let a cache hit record the visit on the
    session's breadcrumb trail exactly as the
    :class:`~repro.navigation.session.BreadcrumbAspect` would have during
    a live render — same ``(path, title)`` pair, so hit and miss produce
    identical trails.
    """

    skeleton: str
    title: str
    path: str


class PageCache:
    """An LRU map of ``(page_uri, weave_epoch)`` -> serialized skeleton.

    Thread-safe: the serving layer's renders are lock-free and
    concurrent, so lookups and stores race freely; every operation here
    holds one short internal lock.  Entries under superseded epochs are
    never *served* (readers always key with the current epoch) but would
    otherwise linger until LRU pressure pushes them out —
    :meth:`drop_stale` reclaims them eagerly after an epoch bump.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("page cache needs max_entries >= 1")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], CachedSkeleton] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, page_uri: str, epoch: int) -> CachedSkeleton | None:
        """The entry for *page_uri* at *epoch*, or ``None`` (counted)."""
        key = (page_uri, epoch)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, page_uri: str, epoch: int, entry: CachedSkeleton) -> None:
        """Store *entry*, evicting least-recently-used ones past the cap."""
        key = (page_uri, epoch)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def drop_stale(self, epoch: int) -> int:
        """Reclaim every entry keyed under an epoch older than *epoch*.

        Correctness never needs this — superseded keys are unreachable —
        but an epoch bump otherwise leaves the old generation squatting
        in the LRU until natural pressure evicts it.  Returns the count
        (tallied as ``invalidations``, distinct from LRU ``evictions``).
        """
        with self._lock:
            stale = [key for key in self._entries if key[1] < epoch]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> "dict[str, int]":
        """Counters for ``/-/stats``: hits, misses, evictions, size."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }
