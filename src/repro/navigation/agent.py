"""A user-agent simulator over rendered pages.

The paper laments that "browsers aren't ready to work with XLink yet"; this
module is the browser substitute: it walks any *page provider* — something
that maps a URI to a page view with anchors — following links by label or
rel, with history.  The web site builder and the woven XLink pipeline both
provide pages, so the same agent exercises tangled and separated sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from .errors import NavigationError
from .history import History


@dataclass(frozen=True)
class PageAnchor:
    """An anchor as seen by the user agent."""

    label: str
    href: str
    rel: str = "link"


@dataclass
class PageView:
    """What the agent sees of one page: its URI, title and anchors."""

    uri: str
    title: str = ""
    anchors: list[PageAnchor] = field(default_factory=list)

    def anchor_labelled(self, label: str) -> PageAnchor:
        for anchor in self.anchors:
            if anchor.label == label:
                return anchor
        raise NavigationError(
            f"page {self.uri!r} has no anchor labelled {label!r} "
            f"(has: {', '.join(a.label for a in self.anchors) or 'none'})"
        )

    def anchors_with_rel(self, rel: str) -> list[PageAnchor]:
        return [a for a in self.anchors if a.rel == rel]


class PageProvider(Protocol):
    """Anything that can serve page views by URI."""

    def page(self, uri: str) -> PageView: ...


class UserAgent:
    """Follows anchors across a page provider, recording the trail."""

    def __init__(self, provider: PageProvider):
        self._provider = provider
        self._history: History[PageView] = History()

    @property
    def current(self) -> PageView:
        return self._history.current

    @property
    def history(self) -> History[PageView]:
        return self._history

    def open(self, uri: str) -> PageView:
        """Load a page by URI."""
        page = self._provider.page(uri)
        self._history.visit(page)
        return page

    def click(self, label: str) -> PageView:
        """Follow the anchor with the given label."""
        anchor = self.current.anchor_labelled(label)
        return self.open(anchor.href)

    def follow_rel(self, rel: str) -> PageView:
        """Follow the unique anchor with the given rel (e.g. ``next``)."""
        anchors = self.current.anchors_with_rel(rel)
        if not anchors:
            raise NavigationError(
                f"page {self.current.uri!r} has no rel={rel!r} anchor"
            )
        if len(anchors) > 1:
            raise NavigationError(
                f"page {self.current.uri!r} has {len(anchors)} rel={rel!r} anchors"
            )
        return self.open(anchors[0].href)

    def back(self) -> PageView:
        return self._history.back()

    def forward(self) -> PageView:
        return self._history.forward()

    def trail(self) -> list[str]:
        """URIs visited, oldest first."""
        return [page.uri for page in self._history.trail()]

    def crawl(self, start: str, *, max_pages: int = 10_000) -> dict[str, PageView]:
        """Breadth-first reachability from *start* (does not touch history).

        Useful for site-wide assertions: every anchor target must exist,
        every page reachable.
        """
        seen: dict[str, PageView] = {}
        frontier = [start]
        while frontier:
            uri = frontier.pop(0)
            if uri in seen:
                continue
            if len(seen) >= max_pages:
                raise NavigationError(f"crawl exceeded {max_pages} pages")
            page = self._provider.page(uri)
            seen[uri] = page
            for anchor in page.anchors:
                if anchor.href not in seen:
                    frontier.append(anchor.href)
        return seen


class CallableProvider:
    """Adapt a plain ``uri -> PageView`` function to the provider protocol."""

    def __init__(self, fn: Callable[[str], PageView]):
        self._fn = fn

    def page(self, uri: str) -> PageView:
        return self._fn(uri)
