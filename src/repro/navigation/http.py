"""An HTTP serving front over :class:`~repro.navigation.serving.AudienceServer`.

The ROADMAP's production rung: the live multi-audience process behind a
real (threaded WSGI) HTTP server.  ``GET /{audience}/{page_uri}`` renders
the page through that audience's instance-scoped navigation stack — one
woven renderer class, every audience's stack live simultaneously — and
every *session* gets a second scope tier of its own:

- the session's private renderer instance is adopted into the audience's
  persistent :class:`~repro.aop.InstanceScope`, so it rides the
  audience's navigation (and any live ``reconfigure`` of it);
- session-private concerns — the :class:`~repro.navigation.session.\
BreadcrumbAspect` trail — deploy into a per-session scope layered on
  top, so two users of one audience each see only their own footsteps;
- sessions idle past the timeout are evicted: their trail deployment
  unwinds (releasing the scope's marker defaults) and their renderer is
  discarded from the audience scope.

Sessions are identified by the ``repro_session`` cookie (minted on the
first response) or an explicit ``X-Repro-Session`` request header.

The management surface lives under ``/-/``:

- ``GET /-/stats`` — scope-aware :meth:`~repro.aop.WeaverRuntime.stats`
  (dispatch tiers, join point pools, codegen counters) plus per-audience
  scope sizes and live session counts, as JSON;
- ``POST /-/reconfigure/{audience}`` — swap one audience's stack while
  requests are in flight (body: comma-separated access-structure names,
  or JSON ``{"access_structures": [...]}``); every other audience's — and
  every live session's trail — next response is unchanged.

Run it::

    python -m repro.tools serve --audiences visitor,curator --port 8000

or embed it: :class:`NavigationApp` is a plain WSGI callable, and
:func:`make_wsgi_server` binds it under a threaded ``wsgiref`` server
(one OS thread per in-flight request — genuine request concurrency over
the instance-scope dispatchers and join point pools).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from socketserver import ThreadingMixIn
from typing import Any, Callable, Iterable, Mapping
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.web import compose_page

from .audience import DEFAULT_AUDIENCES, AudienceBundle
from .cache import CachedSkeleton
from .config import ServingConfig
from .errors import NavigationError
from .serving import (
    _UNSET,
    AudienceServer,
    SessionTier,
    _deprecated,
    build_node_map,
    resolve_page_target,
)
from .session import BreadcrumbAspect, SessionRecord, breadcrumb_fragment

#: The session cookie the app mints on a cookieless request.
SESSION_COOKIE = "repro_session"

#: Request header overriding the cookie (handy for scripted clients).
SESSION_HEADER = "HTTP_X_REPRO_SESSION"

#: Request header controlling the page cache; send ``bypass`` to force a
#: full render through the session's own woven renderer.  Responses echo
#: the cache outcome in the same header: ``hit``, ``miss``, ``bypass``
#: or ``off``.
CACHE_HEADER = "HTTP_X_REPRO_CACHE"


class SessionCapacityError(RuntimeError):
    """No capacity for another session scope (served as ``503``)."""


def quantile(sorted_values: "list[float]", q: float) -> float:
    """The *q*-quantile of pre-sorted *sorted_values* (nearest-rank).

    ``0.0`` on an empty list — callers report latency summaries for
    windows that may not have seen a request yet.
    """
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * len(sorted_values)) - 1))
    return sorted_values[rank]


class LatencyWindow:
    """A bounded rolling window of request latencies, in microseconds.

    One per audience on the serving app: every successful page response
    records its service time, and :meth:`summary` folds the window into
    the ``count``/``p50``/``p99`` triple ``/-/stats`` publishes — so a
    load harness reads its results from the management surface instead of
    scraping stdout.  The count is lifetime (monotonic); the percentiles
    cover the last *size* requests.  Mutations are lock-serialized:
    renders run concurrently across server threads.
    """

    def __init__(self, size: int = 512):
        if size < 1:
            raise ValueError("latency window size must be >= 1")
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=size)
        self._count = 0

    def record(self, elapsed_us: float) -> None:
        with self._lock:
            self._window.append(elapsed_us)
            self._count += 1

    def summary(self) -> dict[str, float]:
        with self._lock:
            count = self._count
            window = sorted(self._window)
        return {
            "count": count,
            "window": len(window),
            "p50_us": round(quantile(window, 0.50), 1),
            "p99_us": round(quantile(window, 0.99), 1),
        }


class _MethodNotAllowed(Exception):
    """Wrong HTTP method for a known route (served as ``405`` + Allow)."""

    def __init__(self, method: str, allowed: str):
        super().__init__(f"method {method} not allowed here (use {allowed})")
        self.allowed = allowed


@dataclass
class ServingSession:
    """One authenticated session's scope tier, held by the app."""

    sid: str
    audience: str
    #: The session's scope tier handle (renderer + scope + deployments).
    tier: SessionTier
    #: The session's trail aspect (undeployed on eviction, via the tier).
    breadcrumbs: BreadcrumbAspect
    #: Last request time, by the app's clock; eviction compares this.
    last_seen: float
    #: Pages served to this session (observability for ``/-/stats``).
    requests: int = 0

    @property
    def renderer(self) -> Any:
        """The session's private renderer (a member of the audience scope)."""
        return self.tier.renderer

    @property
    def scope(self) -> Any:
        """The per-session scope the trail deployment dispatches through."""
        return self.tier.scope


class NavigationApp:
    """A WSGI application serving every audience — and every user — live.

    One :class:`~repro.navigation.serving.AudienceServer` underneath; the
    app adds the HTTP routing and the per-session scope tier.  Renders
    are lock-free and run concurrently across server threads; session
    bookkeeping (open/evict) and weave mutations are serialized by the
    app's lock over the server's.

    Session policy comes from a :class:`~repro.navigation.config.
    ServingConfig` (default: the server's own): ``session_idle_timeout``
    seconds without a request evicts a session (checked opportunistically
    on every request, or explicitly via :meth:`evict_idle`);
    ``max_sessions`` bounds the live scope tier — every session costs a
    renderer instance plus a weave deployment, so a client that never
    replays its cookie must not grow the stack without limit; at the cap
    (after evicting every idle session) new sessions are refused with
    ``503``.  The old per-knob keyword arguments still work as
    deprecated shims.  ``clock`` is injectable for tests.

    When the server's page-cache tier is on, ``GET`` responses assemble
    from a cached audience-level skeleton plus the session's freshly
    rendered breadcrumb fragment (see :mod:`repro.navigation.cache`);
    the ``X-Repro-Cache`` response header reports ``hit``/``miss``/
    ``bypass``/``off``, and sending ``X-Repro-Cache: bypass`` forces a
    full render through the session's own woven renderer.
    """

    def __init__(
        self,
        server: AudienceServer,
        config: ServingConfig | None = None,
        *,
        session_idle_timeout: Any = _UNSET,
        max_sessions: Any = _UNSET,
        breadcrumb_limit: Any = _UNSET,
        clock: Callable[[], float] = time.monotonic,
    ):
        from repro.core import PageRenderer

        self._server = server
        if config is None:
            config = server.config
        for name, value in (
            ("session_idle_timeout", session_idle_timeout),
            ("max_sessions", max_sessions),
            ("breadcrumb_limit", breadcrumb_limit),
        ):
            if value is not _UNSET:
                _deprecated(
                    f"NavigationApp({name}=...)",
                    f"NavigationApp(config=ServingConfig({name}=...))",
                )
                config = config.replace(**{name: value})
        self._config = config
        self._idle_timeout = config.session_idle_timeout
        self._max_sessions = config.max_sessions
        self._breadcrumb_limit = config.breadcrumb_limit
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: dict[tuple[str, str], ServingSession] = {}
        self._evicted_total = 0
        #: Pages served by sessions since evicted (live counts add to it).
        self._served_by_evicted = 0
        self._sid_counter = itertools.count(1)
        # Per-audience request counters and rolling latency windows; the
        # /-/stats latency summary the load harness reads comes from here.
        self._latency: dict[str, LatencyWindow] = {
            audience: LatencyWindow() for audience in server.audiences()
        }
        # Normalized URI -> node: fixture-level, identical for every
        # renderer instance, so one inventory pass serves all sessions.
        self._nodes = build_node_map(PageRenderer(server.fixture))

    @property
    def config(self) -> ServingConfig:
        """The effective serving configuration (shims already folded in)."""
        return self._config

    # -- the WSGI surface ------------------------------------------------------

    def __call__(self, environ, start_response) -> list[bytes]:
        status, headers, body = self.respond(environ)
        start_response(status, headers)
        return [body]

    def respond(self, environ) -> tuple[str, list[tuple[str, str]], bytes]:
        """The transport-neutral request surface: environ in, response out.

        Takes a WSGI-shaped environ dict and returns the complete
        ``(status, headers, body)`` triple with the routing errors already
        mapped to their HTTP statuses.  Both fronts route through here —
        :meth:`__call__` adds the WSGI calling convention on top, and the
        ASGI front (:mod:`repro.navigation.asgi`) runs it on a worker
        thread under its event loop — so the two cannot drift apart.
        """
        try:
            return self._route(environ)
        except NavigationError as exc:
            return _text_response("404 Not Found", str(exc))
        except SessionCapacityError as exc:
            return _text_response("503 Service Unavailable", str(exc))
        except _MethodNotAllowed as exc:
            status, headers, body = _text_response(
                "405 Method Not Allowed", str(exc)
            )
            headers.append(("Allow", exc.allowed))
            return status, headers, body

    def _route(self, environ) -> tuple[str, list[tuple[str, str]], bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/") or "/"
        if path == "/":
            return self._front_door(method)
        if path == "/-/stats":
            _require_method(method, "GET")
            return _json_response("200 OK", self.stats())
        if path == "/-/sessions":
            _require_method(method, "GET")
            return _json_response(
                "200 OK",
                {
                    "sessions": [
                        record.to_dict() for record in self.snapshot_sessions()
                    ]
                },
            )
        if path == "/-/sessions/restore":
            _require_method(method, "POST")
            return self._restore_sessions(environ)
        if path.startswith("/-/reconfigure/"):
            _require_method(method, "POST")
            return self._reconfigure(environ, path[len("/-/reconfigure/") :])
        if path.startswith("/-/"):
            raise NavigationError(f"no management endpoint at {path!r}")
        audience, _, page_uri = path.lstrip("/").partition("/")
        # Existence before method: 405 asserts the resource exists, so a
        # POST to an unknown audience must 404 like its GET would.
        self._require_audience(audience)
        _require_method(method, "GET")
        return self._page(environ, audience, page_uri)

    def _front_door(self, method: str):
        _require_method(method, "GET")
        lines = ["<html><head><title>Audiences</title></head><body><ul>"]
        for audience in self._server.audiences():
            stack = "+".join(self._server.bundle(audience).access_structures)
            lines.append(
                f'<li><a href="/{audience}/index.html">{audience}</a>'
                f" ({stack})</li>"
            )
        lines.append("</ul></body></html>")
        body = "\n".join(lines).encode("utf-8")
        return "200 OK", _html_headers(body), body

    def _require_audience(self, audience: str) -> None:
        if audience not in self._server.audiences():
            raise NavigationError(
                f"no audience {audience!r} "
                f"(serving: {', '.join(self._server.audiences()) or 'none'})"
            )

    def _page(self, environ, audience: str, page_uri: str):
        started = time.perf_counter()
        # Resolve the page *before* touching the session tier: a request
        # that will 404 must not cost a renderer + weave deployment.
        normalized, node = resolve_page_target(self._nodes, page_uri)
        session, minted = self._session_for(environ, audience)
        bypass = environ.get(CACHE_HEADER, "").strip().lower() == "bypass"
        cache = None if bypass else self._server.page_cache(audience)
        if cache is None:
            # Full render through the session's own woven renderer: the
            # audience stack *and* the session's trail aspect both fire.
            if node is None:
                page = session.renderer.render_home()
            else:
                page = session.renderer.render_node(node)
            text = page.html()
            outcome = "bypass" if bypass else "off"
        else:
            # Cached path: the skeleton is audience-level (rendered
            # through the audience's shared renderer, which no session
            # scope advises — nothing session-variant can leak into it)
            # and the trail block is rendered fresh per request, then
            # spliced over the skeleton's slot.  The epoch is snapshotted
            # *before* the render: a weave mutation landing mid-render
            # moves the audience to a newer epoch, so the skeleton we
            # install stays keyed under the superseded one and no later
            # request can hit it.
            epoch = self._server.weave_epoch(audience)
            entry = cache.get(normalized, epoch)
            if entry is None:
                outcome = "miss"
                renderer = self._server.renderer(audience)
                if node is None:
                    page = renderer.render_home()
                else:
                    page = renderer.render_node(node)
                skeleton, _ = page.skeleton_html()
                entry = CachedSkeleton(
                    skeleton=skeleton,
                    title=page.title or page.path,
                    path=page.path,
                )
                cache.put(normalized, epoch, entry)
            else:
                outcome = "hit"
            # Same (path, title) the trail aspect would have recorded on
            # a live render, so hit, miss and bypass grow the trail
            # identically.
            crumbs = session.breadcrumbs.trail.record(entry.path, entry.title)
            text = compose_page(
                entry.skeleton, breadcrumb_fragment(crumbs, entry.path)
            )
        body = text.encode("utf-8")
        headers = _html_headers(body)
        if minted:
            headers.append(
                ("Set-Cookie", f"{SESSION_COOKIE}={session.sid}; Path=/")
            )
        headers.append(("X-Repro-Audience", audience))
        headers.append(("X-Repro-Session", session.sid))
        headers.append(("X-Repro-Cache", outcome))
        self._latency[audience].record((time.perf_counter() - started) * 1e6)
        return "200 OK", headers, body

    def _reconfigure(self, environ, audience: str):
        # ValueError -> 400 only here: a malformed body or an unknown
        # access-structure name is the client's fault (and the audience's
        # old stack stays intact — reconfigure is atomic), while a
        # ValueError anywhere else in the request path is a server bug
        # and must surface as a 500.  Unknown audiences raise
        # NavigationError -> 404 (the route names a resource).
        try:
            names = _parse_reconfigure_body(environ)
            self._server.reconfigure(audience, names)
        except ValueError as exc:
            return _text_response("400 Bad Request", str(exc))
        return _json_response(
            "200 OK",
            {
                "audience": audience,
                "access_structures": list(
                    self._server.bundle(audience).access_structures
                ),
            },
        )

    # -- the session tier ------------------------------------------------------

    def _session_for(self, environ, audience: str) -> tuple[ServingSession, bool]:
        sid = environ.get(SESSION_HEADER) or _cookie_sid(environ)
        now = self._clock()
        with self._lock:
            self._evict_idle_locked(now)
            minted = sid is None
            if minted:
                sid = f"s{next(self._sid_counter)}-{uuid.uuid4().hex[:12]}"
            session = self._sessions.get((sid, audience))
            if session is None:
                if len(self._sessions) >= self._max_sessions:
                    raise SessionCapacityError(
                        f"{len(self._sessions)} live sessions (cap "
                        f"{self._max_sessions}); retry with an existing "
                        "session cookie or after the idle timeout"
                    )
                session = self._open_session_locked(sid, audience, now)
            session.last_seen = now
            session.requests += 1
            return session, minted

    def _open_session_locked(
        self, sid: str, audience: str, now: float
    ) -> ServingSession:
        tier = self._server.session_tier(audience)
        breadcrumbs = BreadcrumbAspect(limit=self._breadcrumb_limit)
        try:
            tier.deploy(breadcrumbs)
        except BaseException:
            tier.close()
            raise
        session = ServingSession(
            sid=sid,
            audience=audience,
            tier=tier,
            breadcrumbs=breadcrumbs,
            last_seen=now,
        )
        self._sessions[(sid, audience)] = session
        return session

    def _close_session_locked(self, session: ServingSession) -> None:
        self._sessions.pop((session.sid, session.audience), None)
        # Closing the tier unwinds the trail deployment (releasing the
        # session scope's marker state) and discards the renderer from
        # the audience scope, so the instance is back to plain rendering.
        session.tier.close()
        self._evicted_total += 1
        self._served_by_evicted += session.requests

    def _evict_idle_locked(self, now: float) -> list[ServingSession]:
        if self._idle_timeout is None:
            return []
        expired = [
            session
            for session in self._sessions.values()
            if now - session.last_seen > self._idle_timeout
        ]
        for session in expired:
            self._close_session_locked(session)
        return expired

    def evict_idle(self, *, now: float | None = None) -> int:
        """Evict every session idle past the timeout; returns the count."""
        with self._lock:
            return len(
                self._evict_idle_locked(self._clock() if now is None else now)
            )

    def sessions(self) -> list[ServingSession]:
        """The live sessions (snapshot, newest bookkeeping included)."""
        with self._lock:
            return list(self._sessions.values())

    # -- session portability ---------------------------------------------------

    def snapshot_sessions(self) -> list[SessionRecord]:
        """Every live session as a portable :class:`SessionRecord`.

        Plain data — the cluster front (or a draining worker's ``SIGTERM``
        handler) serializes these, and another worker restores them via
        :meth:`restore_session` with the trails byte-for-byte intact.
        Also served at ``GET /-/sessions``.
        """
        with self._lock:
            return [
                SessionRecord(
                    sid=session.sid,
                    audience=session.audience,
                    trail=tuple(session.breadcrumbs.trail.entries()),
                    last_seen=session.last_seen,
                    requests=session.requests,
                )
                for session in self._sessions.values()
            ]

    def restore_session(self, record: SessionRecord) -> ServingSession:
        """Restore a snapshotted session into this app's scope tier.

        Opens the session's scope tier if ``(sid, audience)`` is not
        already live (same path a cookie-bearing request takes: capacity
        check, private renderer, session-scoped trail deployment), then
        replaces its breadcrumb trail with the record's — so the next
        page this session renders shows exactly the crumbs it would have
        on the worker it left.  ``last_seen`` is stamped from *this*
        app's clock (monotonic clocks don't travel between processes)
        and the record's request count is carried over.

        Raises :class:`~repro.navigation.errors.NavigationError` for an
        unknown audience and :class:`SessionCapacityError` at the session
        cap — the HTTP surface maps them to 404/503 as usual.
        """
        now = self._clock()
        with self._lock:
            self._evict_idle_locked(now)
            if record.audience not in self._server.audiences():
                raise NavigationError(
                    f"cannot restore session {record.sid!r}: no audience "
                    f"{record.audience!r}"
                )
            session = self._sessions.get((record.sid, record.audience))
            if session is None:
                if len(self._sessions) >= self._max_sessions:
                    raise SessionCapacityError(
                        f"cannot restore session {record.sid!r}: "
                        f"{len(self._sessions)} live sessions (cap "
                        f"{self._max_sessions})"
                    )
                session = self._open_session_locked(
                    record.sid, record.audience, now
                )
                session.requests = record.requests
            session.last_seen = now
            session.breadcrumbs.trail.restore(record.trail)
            return session

    def _restore_sessions(self, environ):
        # Mirrors _reconfigure's error split: a malformed body is the
        # client's fault (400); capacity is 503 per the session-tier
        # contract.  Restores are per-record best-effort so one bad
        # record cannot strand the rest of a draining worker's sessions —
        # the response reports both sides.
        try:
            records = _parse_restore_body(environ)
        except ValueError as exc:
            return _text_response("400 Bad Request", str(exc))
        restored, errors = [], []
        for record in records:
            try:
                self.restore_session(record)
            except (NavigationError, SessionCapacityError) as exc:
                errors.append({"sid": record.sid, "error": str(exc)})
            else:
                restored.append(record.sid)
        return _json_response(
            "200 OK", {"restored": restored, "errors": errors}
        )

    def close(self) -> None:
        """Evict every session (the underlying server stays open)."""
        with self._lock:
            for session in list(self._sessions.values()):
                self._close_session_locked(session)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The management snapshot served at ``GET /-/stats``."""
        with self._lock:
            by_audience: dict[str, int] = {}
            for session in self._sessions.values():
                by_audience[session.audience] = (
                    by_audience.get(session.audience, 0) + 1
                )
            sessions = {
                "active": len(self._sessions),
                "evicted_total": self._evicted_total,
                "by_audience": by_audience,
                # Monotonic: evicted sessions' counts are accumulated, so
                # the total never drops when the idle timeout fires.
                "requests": self._served_by_evicted
                + sum(s.requests for s in self._sessions.values()),
            }
        audiences = {}
        for audience in self._server.audiences():
            cache = self._server.page_cache(audience)
            latency = self._latency[audience].summary()
            audiences[audience] = {
                "access_structures": list(
                    self._server.bundle(audience).access_structures
                ),
                "scope_instances": len(self._server.scope(audience)),
                "weave_epoch": self._server.weave_epoch(audience),
                "requests": latency.pop("count"),
                "latency": latency,
                "cache": {"enabled": cache is not None}
                | (cache.stats() if cache is not None else {}),
            }
        return {
            "audiences": audiences,
            "sessions": sessions,
            "runtime": self._server.runtime.stats(),
        }


# -- WSGI plumbing -------------------------------------------------------------


def _require_method(method: str, expected: str) -> None:
    if method != expected:
        raise _MethodNotAllowed(method, expected)


def _cookie_sid(environ) -> str | None:
    for part in environ.get("HTTP_COOKIE", "").split(";"):
        name, _, value = part.strip().partition("=")
        if name == SESSION_COOKIE and value:
            return value
    return None


def _parse_reconfigure_body(environ) -> list[str]:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    raw = environ["wsgi.input"].read(length).decode("utf-8") if length else ""
    raw = raw.strip()
    if raw.startswith("{"):
        payload = json.loads(raw)
        names = payload.get("access_structures")
        if not isinstance(names, list) or not names:
            raise ValueError(
                'reconfigure body must carry {"access_structures": [...]}'
            )
        return [str(name) for name in names]
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise ValueError(
            "reconfigure body names no access structures "
            "(send e.g. 'index,guided-tour')"
        )
    return names


def _parse_restore_body(environ) -> list[SessionRecord]:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    raw = environ["wsgi.input"].read(length).decode("utf-8") if length else ""
    raw = raw.strip()
    if not raw:
        raise ValueError(
            'restore body must carry {"sessions": [...]} or a JSON list '
            "of session records"
        )
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"restore body is not JSON: {exc}") from exc
    if isinstance(payload, Mapping):
        payload = payload.get("sessions")
    if not isinstance(payload, list):
        raise ValueError(
            'restore body must carry {"sessions": [...]} or a JSON list '
            "of session records"
        )
    return [SessionRecord.from_dict(item) for item in payload]


def _html_headers(body: bytes) -> list[tuple[str, str]]:
    return [
        ("Content-Type", "text/html; charset=utf-8"),
        ("Content-Length", str(len(body))),
    ]


def _json_response(status: str, payload: Any):
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    headers = [
        ("Content-Type", "application/json"),
        ("Content-Length", str(len(body))),
    ]
    return status, headers, body


def _text_response(status: str, message: str):
    body = (message + "\n").encode("utf-8")
    headers = [
        ("Content-Type", "text/plain; charset=utf-8"),
        ("Content-Length", str(len(body))),
    ]
    return status, headers, body


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """``wsgiref`` with one thread per in-flight request."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Suppress per-request access logging (CI logs stay readable)."""

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass


def make_wsgi_server(
    app: NavigationApp,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> WSGIServer:
    """Bind *app* under a threaded WSGI server (``port=0``: ephemeral).

    Returns the listening server; call ``serve_forever()`` on it (or
    drive it from a thread in tests) and ``server_close()`` when done.
    """
    return make_server(
        host,
        port,
        app,
        server_class=ThreadingWSGIServer,
        handler_class=_QuietHandler if quiet else WSGIRequestHandler,
    )


def serve(
    fixture: Any,
    bundles: Iterable[AudienceBundle] | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    config: ServingConfig | None = None,
    session_idle_timeout: Any = _UNSET,
    quiet: bool = True,
    ready: Callable[[WSGIServer], None] | None = None,
    on_drain: Callable[[NavigationApp], None] | None = None,
) -> None:
    """Stand up the whole stack and serve until interrupted.

    Weaves every bundle into one live :class:`AudienceServer` (built with
    *config* — session policy, lint mode and the page-cache tier in one
    :class:`~repro.navigation.config.ServingConfig`), wraps it in a
    :class:`NavigationApp`, binds the threaded WSGI server and blocks in
    ``serve_forever()``.  *ready* (if given) is called with the bound
    server before serving starts — the CLI uses it to print the ephemeral
    port.  *on_drain* (if given) is called with the still-live app after
    the listener closes but before the sessions unwind — the CLI's
    graceful-shutdown hook snapshots every live
    :class:`~repro.navigation.session.SessionRecord` there.  Teardown
    unwinds every session and the audience stacks, so the renderer class
    leaves the process exactly as it entered.
    """
    if config is None:
        config = ServingConfig()
    if session_idle_timeout is not _UNSET:
        _deprecated(
            "serve(session_idle_timeout=...)",
            "serve(config=ServingConfig(session_idle_timeout=...))",
        )
        config = config.replace(session_idle_timeout=session_idle_timeout)
    bundles = list(bundles) if bundles is not None else list(DEFAULT_AUDIENCES)
    with AudienceServer(fixture, bundles, config=config) as server:
        app = NavigationApp(server)
        httpd = make_wsgi_server(app, host, port, quiet=quiet)
        if ready is not None:
            ready(httpd)
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            httpd.server_close()
            if on_drain is not None:
                on_drain(app)
            app.close()
