"""Navigation sessions: position, context, and context-dependent movement.

This is the executable form of the paper's §2 example: *where Next goes
depends on how you got here*.  A session tracks both the current node and
the current navigational context; ``next()`` asks the context, so Guitar →
Next yields another Picasso in the by-painter context and another cubist
painting in the by-movement context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypermedia.context import NavigationalContext
from repro.hypermedia.nodes import Node
from repro.hypermedia.schema import NavigationalSchema

from .errors import NavigationError
from .history import History


@dataclass(frozen=True)
class Position:
    """One history entry: a node seen within a context (or none)."""

    node: Node
    context: NavigationalContext | None = None

    def describe(self) -> str:
        where = f" in {self.context.name}" if self.context is not None else ""
        return f"{self.node.node_class.name}:{self.node.node_id}{where}"


class NavigationSession:
    """A user's walk through the navigation space."""

    def __init__(self, schema: NavigationalSchema | None = None):
        self._schema = schema
        self._history: History[Position] = History()

    # -- state ------------------------------------------------------------

    @property
    def position(self) -> Position:
        return self._history.current

    @property
    def current_node(self) -> Node:
        return self._history.current.node

    @property
    def current_context(self) -> NavigationalContext | None:
        return self._history.current.context

    @property
    def history(self) -> History[Position]:
        return self._history

    # -- movement ------------------------------------------------------------

    def visit(self, node: Node, context: NavigationalContext | None = None) -> Position:
        """Jump to *node*, optionally entering a context.

        When a context is given the node must belong to it — arriving "in"
        a context you are not a member of is meaningless.
        """
        if context is not None and node not in context:
            raise NavigationError(
                f"{node!r} is not a member of context {context.name!r}"
            )
        position = Position(node, context)
        self._history.visit(position)
        return position

    def enter_context(
        self, context: NavigationalContext, at: Node | None = None
    ) -> Position:
        """Enter a context at *at* (default: its first member)."""
        if at is None:
            if not context.members:
                raise NavigationError(f"context {context.name!r} is empty")
            at = context.members[0]
        return self.visit(at, context)

    def next(self) -> Position:
        """Move to the next member of the current context."""
        context = self._require_context("next")
        following = context.next_after(self.current_node)
        if following is None:
            raise NavigationError(
                f"no next node after {self.current_node.node_id!r} "
                f"in context {context.name!r}"
            )
        return self.visit(following, context)

    def previous(self) -> Position:
        """Move to the previous member of the current context."""
        context = self._require_context("previous")
        preceding = context.previous_before(self.current_node)
        if preceding is None:
            raise NavigationError(
                f"no previous node before {self.current_node.node_id!r} "
                f"in context {context.name!r}"
            )
        return self.visit(preceding, context)

    def follow(self, link_class_name: str, *, to: str | None = None) -> Position:
        """Traverse a schema link class from the current node.

        Leaving through a link abandons the current context (you moved to a
        different information space).  With multiple targets, *to* selects
        by node id; otherwise a unique target is required.
        """
        if self._schema is None:
            raise NavigationError("session has no navigational schema to follow")
        link_class = self._schema.link_class(link_class_name)
        links = link_class.resolve(self.current_node)
        if to is not None:
            links = [link for link in links if link.target.node_id == to]
        if not links:
            raise NavigationError(
                f"no {link_class_name!r} link from {self.current_node.node_id!r}"
                + (f" to {to!r}" if to is not None else "")
            )
        if len(links) > 1:
            choices = ", ".join(link.target.node_id for link in links)
            raise NavigationError(
                f"{link_class_name!r} from {self.current_node.node_id!r} is "
                f"ambiguous; pick one of: {choices}"
            )
        return self.visit(links[0].target, None)

    def back(self) -> Position:
        """Go back in history (restores both node and context)."""
        return self._history.back()

    def forward(self) -> Position:
        """Go forward in history."""
        return self._history.forward()

    def _require_context(self, operation: str) -> NavigationalContext:
        context = self.current_context
        if context is None:
            raise NavigationError(
                f"{operation}() needs a current context; visit a node "
                "through a context first (the paper's point: movement "
                "depends on how you arrived)"
            )
        return context

    def trail(self) -> list[str]:
        """Human-readable history, oldest first."""
        return [position.describe() for position in self._history.trail()]
