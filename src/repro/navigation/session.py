"""Navigation sessions: position, context, and context-dependent movement.

This is the executable form of the paper's §2 example: *where Next goes
depends on how you got here*.  A session tracks both the current node and
the current navigational context; ``next()`` asks the context, so Guitar →
Next yields another Picasso in the by-painter context and another cubist
painting in the by-movement context.

The per-user half of that example lives here too:
:class:`BreadcrumbAspect` is a *session* navigation concern — a trail of
the pages one user visited, woven over that user's private renderer
instance (an instance-scoped deployment, see
:mod:`repro.navigation.http`), so two users browsing the same audience
from one live process each see only their own footsteps.
"""

from __future__ import annotations

import json
import posixpath
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.aop import Aspect, around
from repro.hypermedia.access import Anchor
from repro.hypermedia.context import NavigationalContext
from repro.hypermedia.nodes import Node
from repro.hypermedia.schema import NavigationalSchema

from .errors import NavigationError
from .history import History


@dataclass(frozen=True)
class Position:
    """One history entry: a node seen within a context (or none)."""

    node: Node
    context: NavigationalContext | None = None

    def describe(self) -> str:
        where = f" in {self.context.name}" if self.context is not None else ""
        return f"{self.node.node_class.name}:{self.node.node_id}{where}"


class NavigationSession:
    """A user's walk through the navigation space."""

    def __init__(self, schema: NavigationalSchema | None = None):
        self._schema = schema
        self._history: History[Position] = History()

    # -- state ------------------------------------------------------------

    @property
    def position(self) -> Position:
        return self._history.current

    @property
    def current_node(self) -> Node:
        return self._history.current.node

    @property
    def current_context(self) -> NavigationalContext | None:
        return self._history.current.context

    @property
    def history(self) -> History[Position]:
        return self._history

    # -- movement ------------------------------------------------------------

    def visit(self, node: Node, context: NavigationalContext | None = None) -> Position:
        """Jump to *node*, optionally entering a context.

        When a context is given the node must belong to it — arriving "in"
        a context you are not a member of is meaningless.
        """
        if context is not None and node not in context:
            raise NavigationError(
                f"{node!r} is not a member of context {context.name!r}"
            )
        position = Position(node, context)
        self._history.visit(position)
        return position

    def enter_context(
        self, context: NavigationalContext, at: Node | None = None
    ) -> Position:
        """Enter a context at *at* (default: its first member)."""
        if at is None:
            if not context.members:
                raise NavigationError(f"context {context.name!r} is empty")
            at = context.members[0]
        return self.visit(at, context)

    def next(self) -> Position:
        """Move to the next member of the current context."""
        context = self._require_context("next")
        following = context.next_after(self.current_node)
        if following is None:
            raise NavigationError(
                f"no next node after {self.current_node.node_id!r} "
                f"in context {context.name!r}"
            )
        return self.visit(following, context)

    def previous(self) -> Position:
        """Move to the previous member of the current context."""
        context = self._require_context("previous")
        preceding = context.previous_before(self.current_node)
        if preceding is None:
            raise NavigationError(
                f"no previous node before {self.current_node.node_id!r} "
                f"in context {context.name!r}"
            )
        return self.visit(preceding, context)

    def follow(self, link_class_name: str, *, to: str | None = None) -> Position:
        """Traverse a schema link class from the current node.

        Leaving through a link abandons the current context (you moved to a
        different information space).  With multiple targets, *to* selects
        by node id; otherwise a unique target is required.
        """
        if self._schema is None:
            raise NavigationError("session has no navigational schema to follow")
        link_class = self._schema.link_class(link_class_name)
        links = link_class.resolve(self.current_node)
        if to is not None:
            links = [link for link in links if link.target.node_id == to]
        if not links:
            raise NavigationError(
                f"no {link_class_name!r} link from {self.current_node.node_id!r}"
                + (f" to {to!r}" if to is not None else "")
            )
        if len(links) > 1:
            choices = ", ".join(link.target.node_id for link in links)
            raise NavigationError(
                f"{link_class_name!r} from {self.current_node.node_id!r} is "
                f"ambiguous; pick one of: {choices}"
            )
        return self.visit(links[0].target, None)

    def back(self) -> Position:
        """Go back in history (restores both node and context)."""
        return self._history.back()

    def forward(self) -> Position:
        """Go forward in history."""
        return self._history.forward()

    def _require_context(self, operation: str) -> NavigationalContext:
        context = self.current_context
        if context is None:
            raise NavigationError(
                f"{operation}() needs a current context; visit a node "
                "through a context first (the paper's point: movement "
                "depends on how you arrived)"
            )
        return context

    def trail(self) -> list[str]:
        """Human-readable history, oldest first."""
        return [position.describe() for position in self._history.trail()]


class BreadcrumbTrail:
    """A bounded, per-user trail of rendered pages (oldest first).

    Revisiting a page moves it to the end instead of duplicating it; the
    trail keeps at most *limit* entries, dropping the oldest.  Mutations
    are serialized on an internal lock: renders are lock-free and
    concurrent in the serving layer, so one session fetching pages in
    parallel must not lose trail entries to a read-rebuild-replace race.
    """

    def __init__(self, limit: int = 8):
        if limit < 1:
            raise ValueError("breadcrumb trail limit must be >= 1")
        self._limit = limit
        self._lock = threading.Lock()
        self._entries: list[tuple[str, str]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[tuple[str, str]]:
        """``(path, title)`` pairs, oldest first."""
        with self._lock:
            return list(self._entries)

    def paths(self) -> list[str]:
        return [path for path, _ in self.entries()]

    def record(self, path: str, title: str) -> list[tuple[str, str]]:
        """Atomically push ``(path, title)``; returns the *prior* crumbs.

        The returned entries exclude *path* itself — exactly the trail a
        page being rendered should display (where you were, not where you
        are).  One lock hold covers read-and-push, so two concurrent
        renders from the same session cannot overwrite each other.
        """
        with self._lock:
            crumbs = [e for e in self._entries if e[0] != path]
            self._entries = crumbs + [(path, title)]
            if len(self._entries) > self._limit:
                del self._entries[: len(self._entries) - self._limit]
            return crumbs

    def push(self, path: str, title: str) -> None:
        self.record(path, title)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def restore(self, entries: "Iterable[tuple[str, str]]") -> None:
        """Atomically replace the trail with *entries* (oldest first).

        The restore half of session portability: a
        :class:`SessionRecord`'s trail snapshot becomes this trail's
        exact state, so the next rendered page shows the same crumbs it
        would have on the worker the session left.  Entries beyond the
        trail's limit drop from the *old* end, matching what
        :meth:`record` would have converged to.
        """
        replacement = [(str(path), str(title)) for path, title in entries]
        if len(replacement) > self._limit:
            replacement = replacement[len(replacement) - self._limit :]
        with self._lock:
            self._entries = replacement


def breadcrumb_nav(crumbs: "list[tuple[str, str]]", path: str):
    """The trail ``<nav>`` for a page at *path*, given prior *crumbs*.

    ``None`` when there is nothing to show (first visit).  One builder for
    both trail producers — :class:`BreadcrumbAspect` appends the element
    into the rendered tree, while the serving layer's cache-hit path
    serializes it standalone as the per-request fragment — so the two can
    never drift apart.
    """
    if not crumbs:
        return None
    from repro.web import TRAIL_NAV_CLASS, anchor_list
    from repro.xmlcore import build

    directory = posixpath.dirname(path)
    anchors = [
        Anchor(
            label=title,
            href=posixpath.relpath(crumb_path, directory or "."),
            rel="breadcrumb",
        )
        for crumb_path, title in crumbs
    ]
    return build("nav", {"class": TRAIL_NAV_CLASS}, anchor_list(anchors))


def breadcrumb_fragment(crumbs: "list[tuple[str, str]]", path: str) -> str:
    """:func:`breadcrumb_nav` serialized compactly (``""`` when empty).

    Exactly the fragment :meth:`~repro.web.html.HtmlPage.skeleton_html`
    lifts out of a rendered page, so skeleton-plus-fragment assembly
    produces the same bytes whether the fragment came from a live render
    (cache miss) or straight from the session's trail (cache hit).
    """
    nav = breadcrumb_nav(crumbs, path)
    if nav is None:
        return ""
    from repro.xmlcore import serialize

    return serialize(nav)


class BreadcrumbAspect(Aspect):
    """Weaves one user's breadcrumb trail into the pages they render.

    A *session* navigation concern: where :class:`NavigationAspect` is
    per-audience (what the site offers), the breadcrumb trail is per-user
    (where *you* have been).  Deployed instance-scoped over one session's
    private renderer, the advice fires only for that user's renders — the
    audience's other sessions, and the audience's shared renderer, never
    see this trail.

    The trail block is a ``<nav class="breadcrumbs">`` appended after the
    page content (and after whatever audience navigation wrapped it),
    listing the *previously* visited pages with hrefs relativized to the
    rendered page's path.
    """

    def __init__(self, *, limit: int = 8, trail: BreadcrumbTrail | None = None):
        self.trail = trail if trail is not None else BreadcrumbTrail(limit)
        self._count_lock = threading.Lock()
        #: Join point observations, useful for tests and /-/stats.
        self.pages_advised: int = 0

    @around("execution(PageRenderer.render_node)")
    def trail_node(self, jp):
        return self._stamp(jp.proceed())

    @around("execution(PageRenderer.render_home)")
    def trail_home(self, jp):
        return self._stamp(jp.proceed())

    def _stamp(self, page):
        # Renders run lock-free and concurrent; the counter must not lose
        # increments to an interleaved read-modify-write.
        with self._count_lock:
            self.pages_advised += 1
        crumbs = self.trail.record(page.path, page.title or page.path)
        nav = breadcrumb_nav(crumbs, page.path)
        if nav is None:
            return page
        body = page.tree.find("body")
        if body is None:
            return page
        body.append(nav)
        return page


@dataclass(frozen=True)
class SessionRecord:
    """A serializable snapshot of one serving session — plain data only.

    The portable form of a session's state: its id, audience, breadcrumb
    trail and bookkeeping counters, with no object graph attached.  A
    worker snapshots its live sessions into records (on ``SIGTERM`` drain
    or via ``GET /-/sessions``), hands them across a process boundary as
    JSON, and the receiving worker restores each into a fresh
    :class:`~repro.navigation.serving.SessionTier` — the trail picks up
    byte-for-byte where it left off, which is what lets the cluster
    front rebalance sessions across workers and survive worker restarts.

    ``last_seen`` is the *snapshotting* process's clock
    (``time.monotonic``-based, so meaningless across processes); restore
    stamps the session with the restoring app's own clock and keeps this
    value purely informational.
    """

    sid: str
    audience: str
    #: ``(path, title)`` crumbs, oldest first — the trail's exact state.
    trail: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    #: Last-seen clock reading on the worker that snapshotted the session.
    last_seen: float = 0.0
    #: Pages served to the session before the snapshot (restored so the
    #: cluster's request totals survive a rebalance).
    requests: int = 0

    def __post_init__(self) -> None:
        if not self.sid:
            raise ValueError("session record needs a non-empty sid")
        if not self.audience:
            raise ValueError("session record needs a non-empty audience")
        normalized = tuple(
            (str(path), str(title)) for path, title in self.trail
        )
        object.__setattr__(self, "trail", normalized)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping (lists for the trail pairs)."""
        return {
            "sid": self.sid,
            "audience": self.audience,
            "trail": [[path, title] for path, title in self.trail],
            "last_seen": self.last_seen,
            "requests": self.requests,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionRecord":
        """Rebuild a record from :meth:`to_dict`'s shape (validated)."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"session record must be a mapping, not {payload!r}")
        try:
            sid = payload["sid"]
            audience = payload["audience"]
        except KeyError as exc:
            raise ValueError(f"session record is missing {exc.args[0]!r}") from None
        trail_raw = payload.get("trail", [])
        if not isinstance(trail_raw, (list, tuple)):
            raise ValueError(f"session record trail must be a list: {trail_raw!r}")
        trail = []
        for entry in trail_raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValueError(
                    f"trail entries are (path, title) pairs, not {entry!r}"
                )
            trail.append((str(entry[0]), str(entry[1])))
        return cls(
            sid=str(sid),
            audience=str(audience),
            trail=tuple(trail),
            last_seen=float(payload.get("last_seen", 0.0)),
            requests=int(payload.get("requests", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "SessionRecord":
        return cls.from_dict(json.loads(text))
