"""One typed configuration surface for the whole serving stack.

:class:`ServingConfig` gathers every knob that used to travel as loose
keyword arguments across :class:`~repro.navigation.serving.
AudienceServer`, :class:`~repro.navigation.http.NavigationApp` and
``repro.tools serve`` — session policy, lint mode and the page-cache
tier — into a single frozen dataclass handed to each layer.  Each layer
reads the fields it owns:

==========================  ================================================
field                       consumed by
==========================  ================================================
``lint``                    ``AudienceServer`` (every weave this server adds)
``cache_enabled``           ``AudienceServer`` (page-cache tier on/off)
``cache_pages``             ``AudienceServer`` (per-audience LRU bound)
``session_idle_timeout``    ``NavigationApp`` (idle eviction)
``max_sessions``            ``NavigationApp`` (session-tier capacity)
``breadcrumb_limit``        ``NavigationApp`` (per-session trail bound)
==========================  ================================================

The old per-layer keyword arguments still work as deprecated shims (see
the constructors), so existing callers keep running while they migrate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .cache import page_cache_enabled

#: Valid ``lint`` modes (``None`` disables the static weave-plan gate).
LINT_MODES = (None, "warn", "error")


@dataclass(frozen=True)
class ServingConfig:
    """Every serving-stack policy knob, validated once at construction.

    ``cache_enabled`` is the *configuration* switch; the effective state
    also honours the ``REPRO_PAGE_CACHE`` environment escape hatch — see
    :meth:`cache_active`.  ``session_idle_timeout=None`` disables idle
    eviction entirely.
    """

    session_idle_timeout: float | None = 600.0
    max_sessions: int = 512
    breadcrumb_limit: int = 8
    lint: str | None = None
    cache_enabled: bool = True
    cache_pages: int = 256

    def __post_init__(self) -> None:
        if self.session_idle_timeout is not None and self.session_idle_timeout <= 0:
            raise ValueError("session_idle_timeout must be positive (or None)")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.breadcrumb_limit < 1:
            raise ValueError("breadcrumb_limit must be >= 1")
        if self.lint not in LINT_MODES:
            raise ValueError(
                f"lint must be one of {LINT_MODES!r}, not {self.lint!r}"
            )
        if self.cache_pages < 1:
            raise ValueError("cache_pages must be >= 1")

    def cache_active(self) -> bool:
        """Whether servers built from this config cache page skeletons.

        Both switches must agree: the config's ``cache_enabled`` *and*
        the ``REPRO_PAGE_CACHE`` environment flag (the operational
        escape hatch that needs no code change).
        """
        return self.cache_enabled and page_cache_enabled()

    def replace(self, **changes: object) -> "ServingConfig":
        """A copy with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)
