"""Audience bundles: named stacks of access structures.

The paper's point is that access structures are swappable artifacts; the
ROADMAP's production scenario is serving *several audiences at once*, each
with its own stack of them (a visitor wants the guided tour layered over
the index; a curator just wants the index).  An
:class:`AudienceBundle` names such a stack without knowing how specs are
built — :func:`repro.core.weave.build_audience_sites` resolves the names
to :class:`~repro.core.navspec.NavigationSpec` instances and weaves each
bundle in its own scoped :class:`~repro.aop.WeaverRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AudienceBundle:
    """One audience's navigation, as a stack of access-structure names.

    ``access_structures`` are layered in order: later entries wrap (and so
    render after) earlier ones, exactly like aspects in a
    :class:`~repro.aop.DeploymentSet`.
    """

    name: str
    access_structures: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.access_structures:
            raise ValueError(f"audience bundle {self.name!r} stacks no structures")


#: Stock bundles for the museum scenario.
DEFAULT_AUDIENCES: tuple[AudienceBundle, ...] = (
    AudienceBundle("visitor", ("index", "guided-tour")),
    AudienceBundle("curator", ("index",)),
    AudienceBundle("tour-only", ("guided-tour",)),
)
