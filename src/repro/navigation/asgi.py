"""An asyncio/ASGI serving front over the same :class:`NavigationApp`.

The WSGI front (:mod:`repro.navigation.http`) spends one OS thread per
in-flight request; this module serves the identical application surface —
routing, session scope tiers, cache semantics, management endpoints —
under a single event loop:

- :class:`AsgiNavigationApp` adapts a :class:`~repro.navigation.http.\
NavigationApp` to the ASGI 3 calling convention.  The render path is
  synchronous by design (instance-scope dispatch, join point pools and
  the session locks are all thread-based), so each request's
  :meth:`~repro.navigation.http.NavigationApp.respond` runs on the
  loop's worker-thread executor; the event loop itself only parses,
  schedules and writes.  Both fronts call the *same* ``respond``, so
  they cannot drift apart — a WSGI response and an ASGI response to the
  same request are byte-identical.
- :class:`AsgiHttpServer` binds any ASGI callable under a hand-rolled
  ``asyncio`` HTTP/1.1 server (``asyncio.start_server`` + a minimal
  request parser) — the container has no third-party ASGI server, and
  the protocol surface the app needs (methods, paths, headers,
  content-length bodies, keep-alive) is small enough to own.  It also
  provides the graceful half of cluster life: ``close()`` stops
  accepting, ``drain()`` awaits in-flight requests.
- :func:`serve_async` stands up the whole stack — fixture, audience
  server, app, ASGI adapter, HTTP server — and serves until cancelled,
  mirroring :func:`repro.navigation.http.serve`.

Run it::

    python -m repro.tools serve --asgi --audiences visitor,curator
"""

from __future__ import annotations

import asyncio
import io
from typing import Any, Callable, Iterable
from urllib.parse import unquote

from .audience import DEFAULT_AUDIENCES, AudienceBundle
from .config import ServingConfig
from .http import NavigationApp
from .serving import AudienceServer

#: Request-line / header-block size bound (a parser, not a proxy target).
MAX_HEADER_BYTES = 64 * 1024

#: Request body size bound (management bodies are small JSON documents).
MAX_BODY_BYTES = 16 * 1024 * 1024


class RequestSyntaxError(ValueError):
    """A malformed HTTP request (served as ``400`` and disconnected)."""


def build_environ(scope: "dict[str, Any]", body: bytes) -> "dict[str, Any]":
    """A WSGI-shaped environ from an ASGI http *scope* plus its *body*.

    Only the keys :meth:`NavigationApp.respond` reads are populated —
    method, path, headers (as ``HTTP_*``), content length and the body
    stream — plus the conventional address/scheme keys for parity with
    what a WSGI server would hand over.  ``raw_path`` is preferred when
    the scope carries it: the app's own URI normalization handles
    percent-encoding, and decoding ``%2F`` early would corrupt page
    paths the way it would under any other server.
    """
    raw_path = scope.get("raw_path")
    if raw_path:
        path = raw_path.decode("latin-1").split("?", 1)[0]
    else:
        path = scope.get("path", "/")
    environ: dict[str, Any] = {
        "REQUEST_METHOD": scope.get("method", "GET"),
        "PATH_INFO": path,
        "QUERY_STRING": scope.get("query_string", b"").decode("latin-1"),
        "SERVER_PROTOCOL": f"HTTP/{scope.get('http_version', '1.1')}",
        "wsgi.url_scheme": scope.get("scheme", "http"),
        "CONTENT_LENGTH": str(len(body)),
        "wsgi.input": io.BytesIO(body),
    }
    for name, value in scope.get("headers", ()):
        key = name.decode("latin-1").strip().upper().replace("-", "_")
        text = value.decode("latin-1").strip()
        if key == "CONTENT_TYPE":
            environ["CONTENT_TYPE"] = text
        elif key == "CONTENT_LENGTH":
            pass  # measured from the body actually read
        else:
            http_key = f"HTTP_{key}"
            if http_key in environ:
                environ[http_key] += f",{text}"
            else:
                environ[http_key] = text
    client = scope.get("client")
    if client:
        environ["REMOTE_ADDR"], environ["REMOTE_PORT"] = (
            client[0],
            str(client[1]),
        )
    server = scope.get("server")
    if server:
        environ["SERVER_NAME"], environ["SERVER_PORT"] = (
            server[0],
            str(server[1]),
        )
    return environ


async def _drain_body(receive) -> bytes:
    chunks = []
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise ConnectionError("client disconnected during request body")
        chunks.append(message.get("body", b""))
        if not message.get("more_body"):
            return b"".join(chunks)


class AsgiNavigationApp:
    """ASGI 3 adapter over a :class:`NavigationApp`.

    HTTP requests are translated to WSGI-shaped environs and answered by
    the wrapped app's :meth:`~repro.navigation.http.NavigationApp.\
respond` on the event loop's default thread-pool executor — renders
    stay genuinely concurrent (they are lock-free in the serving layer)
    while the loop never blocks on one.  Lifespan scopes are
    acknowledged so the adapter also runs under standard ASGI servers.
    """

    def __init__(self, app: NavigationApp):
        self._app = app

    @property
    def app(self) -> NavigationApp:
        """The wrapped (transport-neutral) application."""
        return self._app

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(
                f"AsgiNavigationApp only serves http scopes, not "
                f"{scope['type']!r}"
            )
        body = await _drain_body(receive)
        environ = build_environ(scope, body)
        loop = asyncio.get_running_loop()
        status, headers, payload = await loop.run_in_executor(
            None, self._app.respond, environ
        )
        await send(
            {
                "type": "http.response.start",
                "status": int(status.split(maxsplit=1)[0]),
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in headers
                ],
            }
        )
        await send({"type": "http.response.body", "body": payload})

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return


# -- the asyncio HTTP/1.1 server ------------------------------------------------


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _read_request(reader: asyncio.StreamReader):
    """One parsed request: ``(method, target, version, headers, body)``.

    Returns ``None`` on a clean EOF before any bytes (the client closed
    an idle keep-alive connection).  Raises :class:`RequestSyntaxError`
    on anything malformed — the connection handler answers 400 and
    disconnects rather than guessing at framing.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise RequestSyntaxError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise RequestSyntaxError("request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise RequestSyntaxError("request head too large")
    request_line, _, header_block = head.partition(b"\r\n")
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise RequestSyntaxError(f"malformed request line: {parts!r}")
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise RequestSyntaxError(f"malformed HTTP version: {version!r}")
    headers: list[tuple[bytes, bytes]] = []
    for line in header_block.split(b"\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise RequestSyntaxError(f"malformed header line: {line!r}")
        headers.append((name.strip().lower(), value.strip()))
    length = 0
    for name, value in headers:
        if name == b"content-length":
            try:
                length = int(value)
            except ValueError:
                raise RequestSyntaxError(
                    f"malformed content-length: {value!r}"
                ) from None
        elif name == b"transfer-encoding":
            raise RequestSyntaxError("chunked request bodies are unsupported")
    if length < 0 or length > MAX_BODY_BYTES:
        raise RequestSyntaxError(f"unacceptable content-length: {length}")
    body = await reader.readexactly(length) if length else b""
    return method, target, version.removeprefix("HTTP/"), headers, body


class AsgiHttpServer:
    """A minimal asyncio HTTP/1.1 host for one ASGI application.

    Owns the protocol work a third-party server would do: accept
    connections, parse requests (with size bounds), build ASGI http
    scopes, run the application, frame responses, keep connections
    alive.  Every response carries an explicit ``Content-Length`` (the
    application always sets one; the server adds it if missing), so
    keep-alive framing is unambiguous.

    Shutdown is two-phase for the cluster's graceful drain:
    ``close()`` stops accepting new connections, ``drain()`` awaits the
    requests already in flight — after which the process can snapshot
    its sessions and exit with nothing half-served.
    """

    def __init__(
        self,
        asgi_app: Callable,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._asgi_app = asgi_app
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing = False

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_HEADER_BYTES,
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def close(self) -> None:
        """Stop accepting new connections (in-flight requests continue)."""
        self._closing = True
        if self._server is not None:
            self._server.close()

    async def drain(self, timeout: float | None = None) -> bool:
        """Await in-flight requests; ``False`` if *timeout* expired first.

        Call :meth:`close` first — draining while still accepting never
        terminates under load.  Idle keep-alive connections are told to
        finish via the closing flag and are cancelled at the deadline.
        """
        pending = {task for task in self._connections if not task.done()}
        if not pending:
            return True
        done, still_pending = await asyncio.wait(pending, timeout=timeout)
        for task in still_pending:
            task.cancel()
        return not still_pending

    async def aclose(self) -> None:
        self.close()
        await self.drain(timeout=0.1)
        if self._server is not None:
            await self._server.wait_closed()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            pass  # the client went away; nothing to answer
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while not self._closing:
            try:
                request = await _read_request(reader)
            except RequestSyntaxError as exc:
                await self._write_simple(writer, 400, str(exc))
                return
            if request is None:
                return
            method, target, version, headers, body = request
            keep_alive = await self._dispatch(
                writer, method, target, version, headers, body
            )
            if not keep_alive:
                return

    async def _dispatch(
        self, writer, method, target, version, headers, body
    ) -> bool:
        path, _, query = target.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": version,
            "method": method,
            "scheme": "http",
            "path": unquote(path),
            "raw_path": path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": headers,
            "client": writer.get_extra_info("peername"),
            "server": writer.get_extra_info("sockname"),
        }
        wants_close = (
            version == "1.0"
            or any(
                name == b"connection" and value.lower() == b"close"
                for name, value in headers
            )
            or self._closing
        )

        messages = [{"type": "http.request", "body": body, "more_body": False}]

        async def receive():
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        state: dict[str, Any] = {"status": None, "headers": []}

        async def send(message):
            if message["type"] == "http.response.start":
                state["status"] = message["status"]
                state["headers"] = list(message.get("headers", ()))
            elif message["type"] == "http.response.body":
                state.setdefault("body", b"")
                state["body"] += message.get("body", b"")

        try:
            await self._asgi_app(scope, receive, send)
        except Exception:
            if state["status"] is None:
                await self._write_simple(
                    writer, 500, "internal server error"
                )
            return False
        status = state["status"] or 500
        payload = state.get("body", b"")
        response_headers = list(state["headers"])
        if not any(
            name.lower() == b"content-length"
            for name, _ in response_headers
        ):
            response_headers.append(
                (b"content-length", str(len(payload)).encode())
            )
        response_headers.append(
            (b"connection", b"close" if wants_close else b"keep-alive")
        )
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}".encode("latin-1")]
        head.extend(name + b": " + value for name, value in response_headers)
        writer.write(b"\r\n".join(head) + b"\r\n\r\n" + payload)
        await writer.drain()
        return not wants_close

    async def _write_simple(self, writer, status: int, message: str) -> None:
        body = (message + "\n").encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"content-type: text/plain; charset=utf-8\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n".encode("latin-1")
            + body
        )
        await writer.drain()


async def serve_async(
    fixture: Any,
    bundles: Iterable[AudienceBundle] | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    config: ServingConfig | None = None,
    ready: Callable[[AsgiHttpServer], None] | None = None,
    shutdown: "asyncio.Event | None" = None,
    on_drain: Callable[[NavigationApp], None] | None = None,
) -> None:
    """Stand up the asyncio stack and serve until *shutdown* (or cancel).

    The event-loop twin of :func:`repro.navigation.http.serve`: weaves
    the bundles into an :class:`AudienceServer`, wraps the app in the
    ASGI adapter, binds :class:`AsgiHttpServer` and serves.  *ready* is
    called with the bound server (the CLI prints the ephemeral port from
    it).  When *shutdown* is set — the CLI's SIGTERM handler sets it —
    the server stops accepting, drains in-flight requests, then calls
    *on_drain* with the still-live app (the graceful hook: the CLI
    snapshots sessions there) before the stack unwinds.
    """
    if config is None:
        config = ServingConfig()
    bundles = list(bundles) if bundles is not None else list(DEFAULT_AUDIENCES)
    with AudienceServer(fixture, bundles, config=config) as server:
        app = NavigationApp(server)
        httpd = AsgiHttpServer(AsgiNavigationApp(app), host, port)
        await httpd.start()
        if ready is not None:
            ready(httpd)
        serving = asyncio.ensure_future(httpd.serve_forever())
        waiters = [serving]
        stop = None
        if shutdown is not None:
            stop = asyncio.ensure_future(shutdown.wait())
            waiters.append(stop)
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            serving.cancel()
            if stop is not None:
                stop.cancel()
            httpd.close()
            await httpd.drain(timeout=5.0)
            if on_drain is not None:
                on_drain(app)
            await httpd.aclose()
            app.close()
