"""Errors raised by the navigation runtime."""

from __future__ import annotations

from repro.hypermedia.errors import NavigationError

__all__ = ["NavigationError"]
