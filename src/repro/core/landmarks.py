"""Landmarks: a second navigation aspect, composing with the first.

HDM (the methodology the paper credits as the pioneer) has a *landmark*
primitive: destinations reachable from everywhere — the "Museum home" link
of every page.  Implementing landmarks as their *own* aspect demonstrates
the compositionality the paper wants from AOP: two independently-written
navigation concerns woven into the same join points, ordered by aspect
precedence, each separately removable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aop import Aspect, around
from repro.hypermedia import Anchor
from repro.web import HtmlPage, nav_block

from .aspect import _relativize


@dataclass
class LandmarkSpec:
    """The landmark artifact: label → site-absolute target path."""

    landmarks: list[Anchor] = field(default_factory=list)

    def add(self, label: str, href: str) -> "LandmarkSpec":
        self.landmarks.append(Anchor(label, href, "landmark"))
        return self

    def to_text(self) -> str:
        lines = ["[landmarks]"]
        for anchor in self.landmarks:
            lines.append(f"landmark {anchor.label} -> {anchor.href}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "LandmarkSpec":
        spec = cls()
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines or lines[0] != "[landmarks]":
            raise ValueError("landmark spec must start with '[landmarks]'")
        for line in lines[1:]:
            if not line.startswith("landmark "):
                raise ValueError(f"unrecognized landmark line: {line!r}")
            label, arrow, href = line[len("landmark "):].partition("->")
            if not arrow:
                raise ValueError(f"malformed landmark line: {line!r}")
            spec.add(label.strip(), href.strip())
        return spec


class LandmarkAspect(Aspect):
    """Adds the landmark rail to every rendered page.

    Runs *after* (inside) the navigation aspect by default (``order = 10``)
    so the landmark ``<nav>`` block lands before context navigation in the
    page — deploy order still composes either way.
    """

    order = 10

    def __init__(self, spec: LandmarkSpec):
        self.spec = spec
        self.pages_decorated = 0

    @around(
        "execution(PageRenderer.render_node) || execution(PageRenderer.render_home)"
    )
    def add_landmarks(self, jp) -> HtmlPage:
        page: HtmlPage = jp.proceed()
        anchors = [
            a for a in self.spec.landmarks
            # A landmark pointing at the page itself is noise.
            if a.href != page.path
        ]
        if not anchors:
            return page
        self.pages_decorated += 1
        body = page.tree.find("body")
        if body is not None:
            rail = nav_block(_relativize(anchors, page.path))
            rail.set("class", "landmarks")
            body.append(rail)
        return page


def default_museum_landmarks() -> LandmarkSpec:
    """The museum's landmarks: home from everywhere."""
    return LandmarkSpec().add("Museum home", "index.html")
