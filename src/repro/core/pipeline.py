"""The XLink pipeline: data + links + presentation → the browsable site.

Section 6 of the paper, end to end:

1. :func:`export_museum_space` writes the three kinds of artifact into a
   :class:`~repro.xlink.UriSpace` — data documents (Figures 7–8), the
   linkbase (Figure 9) and, conceptually, the stylesheet below.
2. :class:`XLinkSiteBuilder` plays the XLink-aware browser the paper could
   not have: it transforms each data document with the presentation
   stylesheet and materializes the linkbase's traversals as the page's
   ``<nav>`` anchors.

Because pages are *derived*, the change request (index → indexed guided
tour) regenerates only ``links.xml``; the rebuilt pages change precisely
where the navigation differs.
"""

from __future__ import annotations

import posixpath

from repro.baselines.museum_data import MuseumFixture
from repro.hypermedia import Anchor
from repro.web import (
    HtmlPage,
    StaticSite,
    Stylesheet,
    heading,
    image,
    nav_block,
    page_skeleton,
)
from repro.xlink import Linkbase, Locator, Show, UriSpace
from repro.xmlcore import build, serialize

from .navspec import NavigationSpec
from .xlink_io import (
    export_data_documents,
    export_linkbase,
    rel_for_arcrole,
)

LINKBASE_URI = "links.xml"
HOME_DATA_URI = "home.xml"


def export_museum_space(
    fixture: MuseumFixture, spec: NavigationSpec
) -> UriSpace:
    """Write data documents and the linkbase into a fresh URI space."""
    space = UriSpace()
    for uri, document in export_data_documents(fixture).items():
        space.add(uri, document)
    space.add(HOME_DATA_URI, "<home><title>The Museum</title></home>")
    space.add(LINKBASE_URI, export_linkbase(fixture, spec))
    return space


def museum_stylesheet() -> Stylesheet:
    """The presentation artifact: data XML → content-only XHTML body."""
    sheet = Stylesheet()

    @sheet.template("painting")
    def painting(ctx, el):
        title = ctx.value_of(el, "title/text()")
        body = build(
            "div",
            {"class": "painting"},
            heading(1, title),
            image(f"images/{el.get('id')}.jpg", title),
        )
        details = build("dl", {})
        for field in ("year", "movement"):
            value = ctx.value_of(el, f"{field}/text()")
            if value:
                details.subelement("dt", text=field)
                details.subelement("dd", text=value)
        if details.children:
            body.append(details)
        return body

    @sheet.template("painter")
    def painter(ctx, el):
        return build(
            "div",
            {"class": "painter"},
            heading(1, ctx.value_of(el, "name/text()")),
        )

    @sheet.template("home")
    def home(ctx, el):
        return build(
            "div",
            {"class": "home"},
            heading(1, ctx.value_of(el, "title/text()")),
            build("p", {}, "Welcome to the museum."),
        )

    return sheet


def page_path_for(data_uri: str) -> str:
    """Map a data document URI to its page path (``picasso.xml`` → ``picasso.html``)."""
    stem, _, _ = data_uri.rpartition(".")
    return f"{stem or data_uri}.html"


class XLinkSiteBuilder:
    """Builds the site a linkbase-aware browser would show."""

    def __init__(
        self,
        space: UriSpace,
        *,
        linkbase_uri: str = LINKBASE_URI,
        stylesheet: Stylesheet | None = None,
    ):
        self._space = space
        self._linkbase_uri = linkbase_uri
        self._stylesheet = stylesheet or museum_stylesheet()

    def build(self) -> StaticSite:
        site = StaticSite()
        linkbase = Linkbase.from_document(
            self._linkbase_uri, self._space.document(self._linkbase_uri)
        )
        graph = linkbase.graph()
        for uri in self._space.uris():
            if uri == self._linkbase_uri:
                continue
            site.add(self._render_page(uri, graph))
        return site

    def _render_page(self, data_uri: str, graph) -> HtmlPage:
        document = self._space.document(data_uri)
        content = self._stylesheet.transform_to_element(document)
        title_el = content.find("h1")
        title = title_el.text_content() if title_el is not None else data_uri
        path = "index.html" if data_uri == HOME_DATA_URI else page_path_for(data_uri)
        html, body = page_skeleton(title)
        body.append(content)
        for aside in self._embeds_from_graph(data_uri, graph):
            body.append(aside)
        anchors = self._anchors_from_graph(data_uri, path, graph)
        if anchors:
            body.append(nav_block(anchors))
        return HtmlPage(path, html)

    def _embeds_from_graph(self, data_uri: str, graph) -> list:
        """Transclusions: arcs with ``xlink:show="embed"`` (XLink §5.6.1).

        The paper's missing browser would have embedded the ending
        resource at the traversal point; we render it as an ``<aside>``
        with the target's transformed content (one level deep — embedded
        documents do not process their own links, avoiding cycles).
        """
        asides = []
        seen: set[str] = set()
        for traversal in graph.outgoing(data_uri):
            if traversal.start is traversal.end:
                continue
            if traversal.arc.show is not Show.EMBED:
                continue
            end = traversal.end
            if not isinstance(end, Locator) or end.href.uri in seen:
                continue
            seen.add(end.href.uri)
            target_doc = self._space.document(end.href.uri)
            embedded = self._stylesheet.transform_to_element(target_doc)
            aside = build("aside", {"class": "embedded", "data-source": end.href.uri})
            aside.append(embedded)
            asides.append(aside)
        return asides

    def _anchors_from_graph(
        self, data_uri: str, page_path: str, graph
    ) -> list[Anchor]:
        anchors: list[Anchor] = []
        seen: set[tuple[str, str, str]] = set()
        directory = posixpath.dirname(page_path)
        for traversal in graph.outgoing(data_uri):
            if traversal.start is traversal.end:
                continue  # an index arc's self pair
            if traversal.arc.show is Show.EMBED:
                continue  # rendered as a transclusion, not an anchor
            end = traversal.end
            if not isinstance(end, Locator):
                continue
            end_page = (
                "index.html"
                if end.href.uri == HOME_DATA_URI
                else page_path_for(end.href.uri)
            )
            href = posixpath.relpath(end_page, directory or ".")
            rel = rel_for_arcrole(traversal.arc.arcrole)
            label = (
                traversal.arc.title
                if rel in ("next", "prev") and traversal.arc.title
                else (end.title or end_page)
            )
            key = (label, href, rel)
            if key not in seen:
                seen.add(key)
                anchors.append(Anchor(label, href, rel))
        return anchors


def build_xlink_site(fixture: MuseumFixture, spec: NavigationSpec) -> StaticSite:
    """Export the three artifacts and build the site from them."""
    space = export_museum_space(fixture, spec)
    return XLinkSiteBuilder(space).build()


def linkbase_text(fixture: MuseumFixture, spec: NavigationSpec) -> str:
    """The serialized ``links.xml`` (for diffs and the examples)."""
    return serialize(export_linkbase(fixture, spec), indent="  ", xml_declaration=True)
