"""The paper's contribution: navigation separated, then woven back in.

Two composition mechanisms over the same base program
(:class:`~repro.core.renderer.PageRenderer`, which renders content-only
pages):

- **Aspect weaving** (Figure 6): :class:`NavigationAspect` advises the
  renderer's execution join points and injects the anchors a
  :class:`NavigationSpec` defines — see :func:`build_woven_site`.
- **XLink linkbase** (Figures 7–9): the same spec exported as
  ``links.xml`` plus link-free data documents, then re-materialized by
  :class:`~repro.core.pipeline.XLinkSiteBuilder` — see
  :func:`build_xlink_site`.

The change request of §5 (Index → Indexed Guided Tour) is, in both
mechanisms, an edit to one navigation artifact; the experiments quantify
the difference against the tangled baseline.
"""

from .aspect import NavigationAspect
from .landmarks import (
    LandmarkAspect,
    LandmarkSpec,
    default_museum_landmarks,
)
from .navspec import (
    ACCESS_KINDS,
    AccessChoice,
    NavigationSpec,
    default_museum_spec,
)
from .policy import SeparationPolicy, check_separation
from .pipeline import (
    HOME_DATA_URI,
    LINKBASE_URI,
    XLinkSiteBuilder,
    build_xlink_site,
    export_museum_space,
    linkbase_text,
    museum_stylesheet,
    page_path_for,
)
from .renderer import PageRenderer
from .spec_xml import (
    DEFAULT_HOME_POINTCUT,
    DEFAULT_NODE_POINTCUT,
    NAVIGATION_NAMESPACE,
    spec_from_xml,
    spec_to_xml,
)
from .weave import (
    NavigationWeaver,
    build_audience_sites,
    build_plain_site,
    build_woven_site,
    build_woven_site_many,
    build_woven_site_stacked,
)
from .xlink_io import (
    NAV_ENTRY_ARCROLE,
    NAV_LINK_ARCROLE,
    NAV_NEXT_ARCROLE,
    NAV_PREV_ARCROLE,
    data_uri_for,
    export_data_documents,
    export_entity_document,
    export_linkbase,
    rel_for_arcrole,
)

__all__ = [
    "ACCESS_KINDS",
    "AccessChoice",
    "DEFAULT_HOME_POINTCUT",
    "DEFAULT_NODE_POINTCUT",
    "HOME_DATA_URI",
    "LandmarkAspect",
    "LandmarkSpec",
    "LINKBASE_URI",
    "NAV_ENTRY_ARCROLE",
    "NAV_LINK_ARCROLE",
    "NAV_NEXT_ARCROLE",
    "NAV_PREV_ARCROLE",
    "NAVIGATION_NAMESPACE",
    "NavigationAspect",
    "NavigationSpec",
    "NavigationWeaver",
    "PageRenderer",
    "SeparationPolicy",
    "XLinkSiteBuilder",
    "build_audience_sites",
    "build_plain_site",
    "check_separation",
    "build_woven_site",
    "build_woven_site_many",
    "build_woven_site_stacked",
    "build_xlink_site",
    "data_uri_for",
    "default_museum_landmarks",
    "default_museum_spec",
    "export_data_documents",
    "export_entity_document",
    "export_linkbase",
    "export_museum_space",
    "linkbase_text",
    "museum_stylesheet",
    "page_path_for",
    "rel_for_arcrole",
    "spec_from_xml",
    "spec_to_xml",
]
