"""The navigation spec as an XML artifact, with embedded pointcuts.

Section 7 of the paper leaves as future work "how aspect-oriented
languages can be embedded in web pages and web applications".  This module
is that study made concrete: the whole navigation definition — access
structures, exposed links, home indexes *and the pointcut expressions
naming the join points to weave at* — serializes to one XML document:

.. code-block:: xml

    <navigation xmlns="urn:repro:navigation">
      <joinpoints pointcut="execution(PageRenderer.render_node)"
                  home-pointcut="execution(PageRenderer.render_home)"/>
      <access family="by-painter" kind="index" label="title"/>
      <expose node-class="PaintingNode" link-class="painted_by"/>
      <home-index node-class="PainterNode"/>
    </navigation>

Loading validates the embedded pointcuts with the AOP parser and checks
they actually match the base renderer's join point shadows — a navigation
file naming join points that do not exist is a deployment error, caught at
load time.
"""

from __future__ import annotations

from repro.aop import JoinPointKind, parse_pointcut
from repro.aop.weaver import method_shadows
from repro.xmlcore import Document, Element, QName, parse

from .navspec import AccessChoice, NavigationSpec

NAVIGATION_NAMESPACE = "urn:repro:navigation"

#: The join points the shipped NavigationAspect advises.
DEFAULT_NODE_POINTCUT = "execution(PageRenderer.render_node)"
DEFAULT_HOME_POINTCUT = "execution(PageRenderer.render_home)"


def spec_to_xml(
    spec: NavigationSpec,
    *,
    node_pointcut: str = DEFAULT_NODE_POINTCUT,
    home_pointcut: str = DEFAULT_HOME_POINTCUT,
) -> Document:
    """Serialize *spec* (plus its weaving pointcuts) to XML."""
    ns = NAVIGATION_NAMESPACE
    root = Element(QName(ns, "navigation"), namespaces={None: ns})
    joinpoints = Element(QName(ns, "joinpoints"))
    joinpoints.set("pointcut", node_pointcut)
    joinpoints.set("home-pointcut", home_pointcut)
    root.append(joinpoints)
    for family in sorted(spec.access):
        choice = spec.access[family]
        access = Element(QName(ns, "access"))
        access.set("family", family)
        access.set("kind", choice.kind)
        if choice.label_attribute:
            access.set("label", choice.label_attribute)
        if choice.circular:
            access.set("circular", "true")
        if choice.embed_entries:
            access.set("embed", "true")
        root.append(access)
    for node_class in sorted(spec.expose_links):
        for link_class in spec.expose_links[node_class]:
            expose = Element(QName(ns, "expose"))
            expose.set("node-class", node_class)
            expose.set("link-class", link_class)
            root.append(expose)
    for node_class in spec.home_indexes:
        home = Element(QName(ns, "home-index"))
        home.set("node-class", node_class)
        root.append(home)
    document = Document()
    document.append(root)
    return document


def spec_from_xml(
    document: Document | str, *, validate_against: type | None = None
) -> tuple[NavigationSpec, str, str]:
    """Parse an XML navigation artifact back into a spec.

    Returns ``(spec, node_pointcut, home_pointcut)``.  The pointcut
    expressions are parsed with the AOP grammar (malformed ones fail
    here); when *validate_against* names the renderer class, they must
    statically match at least one of its method shadows.
    """
    if isinstance(document, str):
        document = parse(document)
    root = document.root_element
    if root.name != QName(NAVIGATION_NAMESPACE, "navigation"):
        raise ValueError(
            f"not a navigation artifact: root is {root.name.clark()!r}"
        )

    node_pointcut = DEFAULT_NODE_POINTCUT
    home_pointcut = DEFAULT_HOME_POINTCUT
    spec = NavigationSpec()
    for child in root.child_elements():
        local = child.name.local
        if local == "joinpoints":
            node_pointcut = child.get("pointcut") or node_pointcut
            home_pointcut = child.get("home-pointcut") or home_pointcut
        elif local == "access":
            family = child.get("family")
            kind = child.get("kind")
            if not family or not kind:
                raise ValueError("<access> needs family and kind attributes")
            spec.access[family] = AccessChoice(
                kind=kind,
                label_attribute=child.get("label"),
                circular=child.get("circular") == "true",
                embed_entries=child.get("embed") == "true",
            )
        elif local == "expose":
            node_class = child.get("node-class")
            link_class = child.get("link-class")
            if not node_class or not link_class:
                raise ValueError("<expose> needs node-class and link-class")
            spec.expose(node_class, link_class)
        elif local == "home-index":
            node_class = child.get("node-class")
            if not node_class:
                raise ValueError("<home-index> needs node-class")
            spec.index_on_home(node_class)
        else:
            raise ValueError(f"unknown navigation element <{local}>")

    for expression in (node_pointcut, home_pointcut):
        pointcut = parse_pointcut(expression)  # raises on bad syntax
        if validate_against is not None:
            shadows = method_shadows(validate_against)
            if not any(
                pointcut.matches_shadow(
                    validate_against, s.name, JoinPointKind.METHOD_EXECUTION
                )
                for s in shadows
            ):
                raise ValueError(
                    f"pointcut {expression!r} matches no join point of "
                    f"{validate_against.__name__}"
                )
    return spec, node_pointcut, home_pointcut
