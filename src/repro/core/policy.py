"""The separation policy: *enforce* the paper's architecture, statically.

Enabling separation is half the job; keeping later commits from tangling
navigation back into the base program is the other half.  AspectJ answers
with ``declare error``; :class:`SeparationPolicy` does the same here — it
deploys no advice, but refuses deployment when the base program grows
navigation-shaped methods (anchor/link/nav builders outside the aspect).
"""

from __future__ import annotations

from repro.aop import Aspect, DeclareError, declare_error

#: Method-name shapes that indicate navigation leaking into base classes.
FORBIDDEN_SHAPES = (
    "execution(*.render_anchor*)",
    "execution(*.add_link*)",
    "execution(*.build_nav*)",
    "execution(*.make_menu*)",
)


class SeparationPolicy(Aspect):
    """Forbids navigation-shaped members in the classes it is deployed to.

    Deploy it against the base-program classes in a test or CI hook::

        WeaverRuntime().weave([PageRenderer], SeparationPolicy(), require_match=False)

    A clean base program deploys (and un-deploys) without effect; one that
    has grown an ``add_link``-style method fails loudly with the member
    name in the error.
    """

    def __init__(self, extra_shapes: tuple[str, ...] = ()):
        self._shapes = FORBIDDEN_SHAPES + tuple(extra_shapes)

    def declarations(self) -> list[DeclareError]:
        return [
            declare_error(
                shape,
                "navigation must live in the navigation aspect, not the base program",
            )
            for shape in self._shapes
        ]


def check_separation(*classes: type, extra_shapes: tuple[str, ...] = ()) -> None:
    """One-call policy check: raises :class:`~repro.aop.WeavingError` on violation."""
    from repro.aop import WeaverRuntime

    runtime = WeaverRuntime("separation-check")
    deployment = runtime._deploy(
        SeparationPolicy(extra_shapes), list(classes), require_match=False
    )
    runtime.undeploy(deployment)
