"""The navigation specification: navigation as one separate artifact.

Question 2 of the paper's §5: "we should define navigation separately."
:class:`NavigationSpec` is that definition — a declarative object (also
serializable to an XLink linkbase, :mod:`repro.core.xlink_io`) saying which
context families are navigable under which access structures and which
link classes surface on which node pages.  The paper's change request is a
**one-line edit** here: ``access["by-painter"] = "indexed-guided-tour"``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.baselines.museum_data import MuseumFixture
from repro.hypermedia import (
    AccessStructure,
    Anchor,
    GuidedTour,
    Index,
    IndexedGuidedTour,
    NavigationalContext,
    Node,
)

#: Access-structure kind names accepted by the spec.
ACCESS_KINDS = ("index", "guided-tour", "indexed-guided-tour")


@dataclass(frozen=True)
class AccessChoice:
    """Which access structure a context family uses, with its options.

    ``embed_entries`` is an XLink-pipeline presentation option: index
    entries are exported with ``xlink:show="embed"`` / ``actuate="onLoad"``
    so the site builder transcludes member previews instead of rendering
    plain anchors (the woven pipeline ignores it).
    """

    kind: str = "index"
    label_attribute: str | None = "title"
    circular: bool = False
    embed_entries: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ACCESS_KINDS:
            raise ValueError(
                f"unknown access structure kind {self.kind!r} "
                f"(choose from {', '.join(ACCESS_KINDS)})"
            )

    def build(self, name: str) -> AccessStructure:
        if self.kind == "index":
            return Index(name=name, label_attribute=self.label_attribute)
        if self.kind == "guided-tour":
            return GuidedTour(
                name=name, label_attribute=self.label_attribute, circular=self.circular
            )
        return IndexedGuidedTour(
            name=name, label_attribute=self.label_attribute, circular=self.circular
        )


@dataclass
class NavigationSpec:
    """Everything navigational about the site, in one place.

    - ``access`` — context family name → :class:`AccessChoice` (families
      not listed are not navigable).
    - ``expose_links`` — node class name → link class names whose anchors
      appear on those nodes' pages.
    - ``home_indexes`` — node class names indexed from the home page.
    """

    access: dict[str, AccessChoice] = field(default_factory=dict)
    expose_links: dict[str, list[str]] = field(default_factory=dict)
    home_indexes: list[str] = field(default_factory=list)

    # -- editing (the change request is one call) -----------------------------

    def set_access(self, family: str, kind: str, **options) -> "NavigationSpec":
        """Choose the access structure for a family (chainable)."""
        self.access[family] = AccessChoice(kind=kind, **options)
        return self

    def expose(self, node_class: str, *link_classes: str) -> "NavigationSpec":
        """Surface link classes on a node class's pages (chainable)."""
        self.expose_links.setdefault(node_class, []).extend(link_classes)
        return self

    def index_on_home(self, *node_classes: str) -> "NavigationSpec":
        """Index these node classes from the home page (chainable)."""
        self.home_indexes.extend(node_classes)
        return self

    # -- the spec as an authored artifact -------------------------------------

    def to_text(self) -> str:
        """A canonical one-line-per-decision textual form.

        This is "the navigation file" a developer edits; the change-impact
        experiments diff it to show the separated approaches' authored
        change is O(1) lines.
        """
        lines = ["[navigation]"]
        for family in sorted(self.access):
            choice = self.access[family]
            options = (
                f" label={choice.label_attribute}" if choice.label_attribute else ""
            )
            if choice.circular:
                options += " circular"
            lines.append(f"access {family} = {choice.kind}{options}")
        for node_class in sorted(self.expose_links):
            for link_class in self.expose_links[node_class]:
                lines.append(f"expose {node_class} -> {link_class}")
        for node_class in self.home_indexes:
            lines.append(f"home-index {node_class}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "NavigationSpec":
        """Parse the artifact form produced by :meth:`to_text`.

        This closes the loop on "navigation is a separate artifact": the
        spec can live in a file, be diffed, and be loaded back — see the
        CLI in :mod:`repro.tools`.
        """
        spec = cls()
        lines = [line.strip() for line in text.splitlines()]
        lines = [line for line in lines if line and not line.startswith("#")]
        if not lines or lines[0] != "[navigation]":
            raise ValueError("navigation spec must start with '[navigation]'")
        for line in lines[1:]:
            if line.startswith("access "):
                rest = line[len("access "):]
                family, eq, value = rest.partition("=")
                if not eq:
                    raise ValueError(f"malformed access line: {line!r}")
                parts = value.split()
                if not parts:
                    raise ValueError(f"missing access kind: {line!r}")
                kind = parts[0]
                options: dict[str, object] = {"label_attribute": None}
                for option in parts[1:]:
                    if option == "circular":
                        options["circular"] = True
                    elif option.startswith("label="):
                        options["label_attribute"] = option[len("label="):]
                    else:
                        raise ValueError(f"unknown access option {option!r}")
                spec.set_access(family.strip(), kind, **options)
            elif line.startswith("expose "):
                rest = line[len("expose "):]
                node_class, arrow, link_class = rest.partition("->")
                if not arrow:
                    raise ValueError(f"malformed expose line: {line!r}")
                spec.expose(node_class.strip(), link_class.strip())
            elif line.startswith("home-index "):
                spec.index_on_home(line[len("home-index "):].strip())
            else:
                raise ValueError(f"unrecognized spec line: {line!r}")
        return spec

    # -- materialization ------------------------------------------------------

    def build_contexts(
        self, fixture: MuseumFixture
    ) -> dict[str, NavigationalContext]:
        """Contexts for the selected families, with the spec's structures.

        The navigational schema's own access-structure factory is
        *overridden* by the spec — this is what makes the access structure
        a property of the navigation artifact rather than of the schema or
        the pages.
        """
        contexts: dict[str, NavigationalContext] = {}
        for family_name, choice in self.access.items():
            family = fixture.nav.context_family(family_name)
            overridden = dataclasses.replace(
                family, access_structure_factory=choice.build
            )
            contexts.update(overridden.contexts(fixture.store))
        return contexts

    def anchors_for(
        self,
        node: Node,
        contexts: dict[str, NavigationalContext],
        schema,
    ) -> list[Anchor]:
        """All anchors the spec puts on one node's page.

        *schema* is the :class:`~repro.hypermedia.NavigationalSchema` used
        to resolve the exposed link-class names (the spec itself stores
        only names, so it stays a plain data artifact).
        """
        anchors: list[Anchor] = []
        for context in contexts.values():
            if node in context:
                anchors.extend(context.anchors_on(node))
        for link_class_name in self.expose_links.get(node.node_class.name, ()):
            link_class = schema.link_class(link_class_name)
            anchors.extend(
                Anchor(link.title, link.href, rel="link")
                for link in link_class.resolve(node)
            )
        return _dedupe(anchors)

    def home_anchors(self, fixture: MuseumFixture) -> list[Anchor]:
        """Anchors of the home page: one index per listed node class."""
        anchors: list[Anchor] = []
        for node_class_name in self.home_indexes:
            node_class = fixture.nav.node_class(node_class_name)
            for entity in fixture.store.all(node_class.conceptual_class):
                node = node_class.instantiate(entity, fixture.store)
                label = str(
                    node.attributes().get("name")
                    or node.attributes().get("title")
                    or node.node_id
                )
                anchors.append(Anchor(label, node.uri, "entry"))
        return _dedupe(anchors)


def _dedupe(anchors: list[Anchor]) -> list[Anchor]:
    seen: set[tuple[str, str, str]] = set()
    out: list[Anchor] = []
    for anchor in anchors:
        key = (anchor.label, anchor.href, anchor.rel)
        if key not in seen:
            seen.add(key)
            out.append(anchor)
    return out


def default_museum_spec(access_kind: str = "index") -> NavigationSpec:
    """The museum's navigation: the paper's original requirement.

    ``access_kind`` is the one knob the change request turns.
    """
    spec = NavigationSpec()
    spec.set_access("by-painter", access_kind, label_attribute="title")
    spec.expose("PaintingNode", "painted_by")
    spec.expose("PainterNode", "paints")
    spec.index_on_home("PainterNode")
    return spec
