"""The base program: a renderer that knows *nothing* about navigation.

Question 1 of the paper's §5: "Somehow we should describe the main
functionality of the application.  We should implement the conceptual
model."  This module is that description: it renders content-only pages —
node attributes, headings, images — and produces a site with **zero
anchors**.  Every traversal opportunity the finished site has is added by
the navigation aspect (:mod:`repro.core.aspect`) or by the XLink pipeline
(:mod:`repro.core.pipeline`); nothing navigational hides in here.
"""

from __future__ import annotations

from repro.baselines.museum_data import MuseumFixture
from repro.hypermedia import Node
from repro.web import HtmlPage, StaticSite, heading, image, page_skeleton, paragraph
from repro.xmlcore import build


class PageRenderer:
    """Renders content-only pages for nodes and the site home.

    The methods of this class are the *join points* the navigation aspect
    advises (``execution(PageRenderer.render_*)``); its output trees are
    pure content.
    """

    def __init__(self, fixture: MuseumFixture, *, home_title: str = "The Museum"):
        self._fixture = fixture
        self._home_title = home_title

    @property
    def fixture(self) -> MuseumFixture:
        return self._fixture

    # -- join point: node pages ----------------------------------------------

    def render_node(self, node: Node) -> HtmlPage:
        """One node's page: heading, image (for paintings), attribute list."""
        attributes = node.attributes()
        title = str(
            attributes.get("title") or attributes.get("name") or node.node_id
        )
        html, body = page_skeleton(title)
        body.append(heading(1, title))
        if node.entity.cls.name == "Painting":
            body.append(image(f"../images/{node.node_id}.jpg", title))
        details = build("dl", {})
        for name, value in attributes.items():
            if name in ("title", "name") or value in (None, ""):
                continue
            details.subelement("dt", text=name)
            details.subelement("dd", text=str(value))
        if details.children:
            body.append(details)
        return HtmlPage(node.uri, html)

    # -- join point: the home page ------------------------------------------------

    def render_home(self) -> HtmlPage:
        """The site home: a welcome blurb.  Content only — no index."""
        html, body = page_skeleton(self._home_title)
        body.append(heading(1, self._home_title))
        body.append(paragraph("Welcome to the museum."))
        return HtmlPage("index.html", html)

    # -- site assembly ---------------------------------------------------------

    def node_inventory(self) -> list[Node]:
        """Every node the site renders, in a stable order."""
        fixture = self._fixture
        nodes: list[Node] = []
        for node_class in fixture.nav.node_classes.values():
            for entity in fixture.store.all(node_class.conceptual_class):
                nodes.append(node_class.instantiate(entity, fixture.store))
        return nodes

    def build_site(self) -> StaticSite:
        """Render the whole site (home + every node page)."""
        site = StaticSite()
        site.add(self.render_home())
        for node in self.node_inventory():
            site.add(self.render_node(node))
        return site
