"""Figures 7–9: the navigation spec as XML artifacts.

The paper's "first stage" separation puts data in ``picasso.xml`` /
``avignon.xml`` and links in ``links.xml``.  This module writes exactly
those artifacts from a fixture + :class:`~repro.core.navspec.NavigationSpec`
— and the linkbase encodes the access structures in pure XLink:

- an **index** is one arc with neither ``from`` nor ``to`` (the XLink
  "every participant" rule gives the full cross product);
- a **guided tour** is per-member labels ``m0..mN`` with ``next``/``prev``
  arcs between adjacent labels;
- an **indexed guided tour** is both, in the same extended link.

Changing the access structure therefore regenerates *only* ``links.xml``;
the data documents are byte-identical before and after — the quantity the
F7–F9 experiment checks.
"""

from __future__ import annotations

from repro.baselines.museum_data import MuseumFixture
from repro.hypermedia import Entity, NavigationalContext
from repro.xmlcore import XLINK_NAMESPACE, Document, Element, QName, build

from .navspec import NavigationSpec

#: Arc roles giving anchors their navigational meaning in the linkbase.
NAV_ENTRY_ARCROLE = "urn:repro:nav:entry"
NAV_NEXT_ARCROLE = "urn:repro:nav:next"
NAV_PREV_ARCROLE = "urn:repro:nav:prev"
NAV_LINK_ARCROLE = "urn:repro:nav:link"

_ARCROLE_TO_REL = {
    NAV_ENTRY_ARCROLE: "entry",
    NAV_NEXT_ARCROLE: "next",
    NAV_PREV_ARCROLE: "prev",
    NAV_LINK_ARCROLE: "link",
}


def rel_for_arcrole(arcrole: str | None) -> str:
    """Map a linkbase arc role to an anchor rel (default ``link``)."""
    return _ARCROLE_TO_REL.get(arcrole or "", "link")


def data_uri_for(entity: Entity) -> str:
    """The data document URI for an entity — the paper's ``picasso.xml``."""
    return f"{entity.entity_id}.xml"


# -- data documents (Figures 7 and 8) ---------------------------------------


def export_entity_document(entity: Entity) -> Document:
    """One entity as a link-free XML document."""
    root = Element(entity.cls.name.lower(), {"id": entity.entity_id})
    for attr_def in entity.cls.attributes:
        value = entity.get(attr_def.name)
        if value is not None:
            root.subelement(attr_def.name, text=str(value))
    document = Document()
    document.append(root)
    return document


def export_data_documents(fixture: MuseumFixture) -> dict[str, Document]:
    """Every painter and painting as its own document, keyed by URI."""
    documents: dict[str, Document] = {}
    for class_name in ("Painter", "Painting"):
        for entity in fixture.store.all(class_name):
            documents[data_uri_for(entity)] = export_entity_document(entity)
    return documents


# -- the linkbase (Figure 9) ----------------------------------------------------


def _xlink_el(name: str, xlink_attrs: dict[str, str]) -> Element:
    el = Element(name)
    for attr_name, value in xlink_attrs.items():
        el.set(QName(XLINK_NAMESPACE, attr_name), value)
    return el


def _entity_label(node) -> str:
    attrs = node.attributes()
    return str(attrs.get("title") or attrs.get("name") or node.node_id)


def _context_link(
    context: NavigationalContext, kind: str, *, embed_entries: bool = False
) -> Element:
    """One extended link encoding one context and its access structure."""
    link = _xlink_el(
        "context",
        {"type": "extended", "role": "urn:repro:nav:context", "title": context.name},
    )
    for position, member in enumerate(context.members):
        locator = _xlink_el(
            "member",
            {
                "type": "locator",
                "href": data_uri_for(member.entity),
                "label": f"m{position}",
                "title": _entity_label(member),
            },
        )
        link.append(locator)
    # show/actuate carry the traversal presentation the XLink spec defines:
    # user-requested replacement is the ordinary hyperlink behaviour; an
    # embedding index asks the browser to transclude the target.
    entry_show = "embed" if embed_entries else "replace"
    if kind in ("index", "indexed-guided-tour"):
        link.append(
            _xlink_el(
                "arc",
                {
                    "type": "arc",
                    "arcrole": NAV_ENTRY_ARCROLE,
                    "show": entry_show,
                    "actuate": "onLoad" if embed_entries else "onRequest",
                },
            )
        )
    if kind in ("guided-tour", "indexed-guided-tour"):
        for position in range(len(context.members) - 1):
            link.append(
                _xlink_el(
                    "arc",
                    {
                        "type": "arc",
                        "from": f"m{position}",
                        "to": f"m{position + 1}",
                        "arcrole": NAV_NEXT_ARCROLE,
                        "title": "Next",
                        "show": "replace",
                        "actuate": "onRequest",
                    },
                )
            )
            link.append(
                _xlink_el(
                    "arc",
                    {
                        "type": "arc",
                        "from": f"m{position + 1}",
                        "to": f"m{position}",
                        "arcrole": NAV_PREV_ARCROLE,
                        "title": "Previous",
                        "show": "replace",
                        "actuate": "onRequest",
                    },
                )
            )
    return link


def _link_class_link(fixture: MuseumFixture, link_class_name: str) -> Element:
    """One extended link carrying every instance of a schema link class."""
    link_class = fixture.nav.link_class(link_class_name)
    link = _xlink_el(
        "linkclass",
        {
            "type": "extended",
            "role": "urn:repro:nav:linkclass",
            "title": link_class_name,
        },
    )
    label_of: dict[str, str] = {}

    def locator_for(node) -> str:
        uri = data_uri_for(node.entity)
        if uri not in label_of:
            label_of[uri] = f"r{len(label_of)}"
            link.append(
                _xlink_el(
                    "participant",
                    {
                        "type": "locator",
                        "href": uri,
                        "label": label_of[uri],
                        "title": _entity_label(node),
                    },
                )
            )
        return label_of[uri]

    source_class = link_class.source
    for entity in fixture.store.all(source_class.conceptual_class):
        source_node = source_class.instantiate(entity, fixture.store)
        for nav_link in link_class.resolve(source_node):
            from_label = locator_for(nav_link.source)
            to_label = locator_for(nav_link.target)
            link.append(
                _xlink_el(
                    "arc",
                    {
                        "type": "arc",
                        "from": from_label,
                        "to": to_label,
                        "arcrole": NAV_LINK_ARCROLE,
                        "title": nav_link.title,
                    },
                )
            )
    return link


def _home_link(fixture: MuseumFixture, spec: NavigationSpec) -> Element | None:
    if not spec.home_indexes:
        return None
    link = _xlink_el(
        "homelink",
        {"type": "extended", "role": "urn:repro:nav:home", "title": "home"},
    )
    link.append(
        _xlink_el(
            "home",
            {"type": "locator", "href": "home.xml", "label": "home", "title": "Home"},
        )
    )
    position = 0
    for node_class_name in spec.home_indexes:
        node_class = fixture.nav.node_class(node_class_name)
        for entity in fixture.store.all(node_class.conceptual_class):
            node = node_class.instantiate(entity, fixture.store)
            label = f"e{position}"
            position += 1
            link.append(
                _xlink_el(
                    "dest",
                    {
                        "type": "locator",
                        "href": data_uri_for(entity),
                        "label": label,
                        "title": _entity_label(node),
                    },
                )
            )
            link.append(
                _xlink_el(
                    "arc",
                    {
                        "type": "arc",
                        "from": "home",
                        "to": label,
                        "arcrole": NAV_ENTRY_ARCROLE,
                    },
                )
            )
    return link


def export_linkbase(fixture: MuseumFixture, spec: NavigationSpec) -> Document:
    """The whole navigation spec as one linkbase document (``links.xml``)."""
    root = build("links", {}, namespaces={"xlink": XLINK_NAMESPACE})
    home = _home_link(fixture, spec)
    if home is not None:
        root.append(home)
    contexts = spec.build_contexts(fixture)
    for family_name, choice in spec.access.items():
        for context_name in sorted(contexts):
            if context_name.startswith(f"{family_name}:"):
                root.append(
                    _context_link(
                        contexts[context_name],
                        choice.kind,
                        embed_entries=choice.embed_entries,
                    )
                )
    for node_class_name in sorted(spec.expose_links):
        for link_class_name in spec.expose_links[node_class_name]:
            root.append(_link_class_link(fixture, link_class_name))
    document = Document()
    document.append(root)
    return document
