"""Weaving orchestration: base program + navigation aspect = the site.

The one-call composition of the paper's Figure 6::

    site = build_woven_site(fixture, default_museum_spec("index"))

Changing the access structure is a new spec, not new pages::

    site2 = build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))

The change-impact experiments diff these two builds against the tangled
equivalents.  Every builder here weaves through a scoped
:class:`~repro.aop.WeaverRuntime` and a transactional
:class:`~repro.aop.DeploymentSet`, so a build that raises mid-weave rolls
back completely — the renderer class is never left half-woven.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.aop import WeaverRuntime
from repro.baselines.museum_data import MuseumFixture
from repro.navigation import AudienceBundle
from repro.navigation.serving import LazyWovenProvider
from repro.web import StaticSite

from .aspect import NavigationAspect
from .navspec import NavigationSpec
from .renderer import PageRenderer


def build_plain_site(fixture: MuseumFixture) -> StaticSite:
    """The base program alone: a site with no navigation at all."""
    return PageRenderer(fixture).build_site()


def build_woven_site(
    fixture: MuseumFixture,
    spec: NavigationSpec,
    *,
    weaver: WeaverRuntime | None = None,
    lint: str | None = None,
) -> StaticSite:
    """Deploy the navigation aspect, build the site, undeploy.

    The weaver touches :class:`PageRenderer` only for the duration of the
    build, so concurrent plain builds (or differently-woven builds) never
    observe each other's navigation.  An exception anywhere in the block
    rolls the transaction back, introductions included.  ``lint`` opts
    the weave into the static analyzer (see
    :meth:`~repro.aop.DeploymentSet.add`): ``"error"`` refuses to build
    when the plan carries an error-severity finding.
    """
    return build_woven_site_stacked(fixture, [spec], weaver=weaver, lint=lint)


def build_woven_site_many(
    fixture: MuseumFixture,
    specs: Iterable[NavigationSpec],
    *,
    weaver: WeaverRuntime | None = None,
) -> list[StaticSite]:
    """Build one site per navigation spec, amortizing weaving costs.

    Each spec gets its own aspect deployment (deployed, built, undeployed
    in turn), but all of them plan against the runtime's shared shadow
    index, so the per-deployment member rescan of :class:`PageRenderer`
    is paid once for the whole batch rather than once per spec.
    """
    weaver = weaver or WeaverRuntime("woven-site-many")
    sites: list[StaticSite] = []
    for spec in specs:
        sites.append(build_woven_site(fixture, spec, weaver=weaver))
    return sites


def build_woven_site_stacked(
    fixture: MuseumFixture,
    specs: Iterable[NavigationSpec],
    *,
    weaver: WeaverRuntime | None = None,
    lint: str | None = None,
) -> StaticSite:
    """Build **one** site with several navigation concerns layered at once.

    Where :func:`build_woven_site_many` produces one site per spec, this
    stacks every spec's aspect over the same renderer — each page carries
    all of their navigation blocks, later specs wrapping (and therefore
    appending after) earlier ones.  The stack is one
    :class:`~repro.aop.DeploymentSet` transaction: the planner derives all
    the aspects' plans from a single shadow scan of :class:`PageRenderer`,
    a mid-stack failure rolls the whole set back, and the ``finally``
    undeploy restores the renderer exactly.
    """
    weaver = weaver or WeaverRuntime("woven-site")
    renderer = PageRenderer(fixture)
    with weaver.transaction([PageRenderer]) as tx:
        for spec in specs:
            tx._add(NavigationAspect(spec, fixture), lint=lint)
        try:
            return renderer.build_site()
        finally:
            tx.undeploy()


def build_audience_sites(
    fixture: MuseumFixture,
    bundles: Iterable[AudienceBundle],
    *,
    specs_by_access: Mapping[str, NavigationSpec] | None = None,
    weaver: WeaverRuntime | None = None,
    lint: str | None = None,
) -> dict[str, StaticSite]:
    """One stacked site per audience bundle — one runtime, one class scan.

    This is the ROADMAP's "per-audience navigation bundles" scenario: the
    same base program serves several audiences, each seeing a different
    *stack* of access structures (say, guided tour + index for visitors,
    index only for curators).  Every bundle weaves one
    :class:`PageRenderer` *instance* through instance-scoped deployments,
    so the whole batch lives in a single :class:`~repro.aop.WeaverRuntime`
    and a single transactional deployment set: one shadow scan of the
    renderer class covers every audience, all the stacks are deployed
    side by side (earlier revisions had to deploy → build → undeploy each
    audience sequentially), and the ``finally`` undeploy restores the
    class exactly.

    ``specs_by_access`` maps access-structure names to prebuilt specs;
    each unresolved name is built once via :func:`default_museum_spec` and
    shared across every bundle that stacks it.
    """
    from repro.navigation.config import ServingConfig
    from repro.navigation.serving import AudienceServer

    weaver = weaver or WeaverRuntime("audience-sites")
    with AudienceServer(
        fixture,
        bundles,
        specs_by_access=specs_by_access,
        runtime=weaver,
        config=ServingConfig(lint=lint),
    ) as server:
        return {
            audience: server.renderer(audience).build_site()
            for audience in server.audiences()
        }


class NavigationWeaver:
    """A persistent deployment for interactive use.

    Where :func:`build_woven_site` is transactional, this keeps the aspect
    deployed — rendering individual pages on demand (e.g. for the user
    agent) with navigation woven in — until :meth:`undeploy`.  Backed by
    its own scoped :class:`~repro.aop.WeaverRuntime`.
    """

    def __init__(self, fixture: MuseumFixture, spec: NavigationSpec):
        self._fixture = fixture
        self._spec = spec
        self._runtime = WeaverRuntime("navigation-weaver")
        self._renderer = PageRenderer(fixture)
        self._aspect: NavigationAspect | None = None
        self._deployment = None

    @property
    def aspect(self) -> NavigationAspect:
        if self._aspect is None:
            raise RuntimeError("weaver is not deployed")
        return self._aspect

    @property
    def renderer(self) -> PageRenderer:
        return self._renderer

    @property
    def runtime(self) -> WeaverRuntime:
        """The scoped runtime backing this weaver (introspection entry)."""
        return self._runtime

    def deploy(self) -> "NavigationWeaver":
        if self._deployment is not None:
            return self
        self._aspect = NavigationAspect(self._spec, self._fixture)
        self._deployment = self._runtime._deploy(self._aspect, [PageRenderer])
        return self

    def undeploy(self) -> None:
        if self._deployment is not None:
            self._runtime.undeploy(self._deployment)
            self._deployment = None
            self._aspect = None

    def reconfigure(self, spec: NavigationSpec) -> "NavigationWeaver":
        """Swap the navigation spec: undeploy, replace, redeploy.

        This is the paper's change request as a runtime operation — the
        base program is untouched throughout.
        """
        was_deployed = self._deployment is not None
        self.undeploy()
        self._spec = spec
        if was_deployed:
            self.deploy()
        return self

    def build_site(self) -> StaticSite:
        return self._renderer.build_site()

    def provider(self) -> LazyWovenProvider:
        """Serve pages *on demand*, rendering through the live deployment.

        Unlike :meth:`build_site` (which materializes everything), the
        lazy provider (:class:`~repro.navigation.serving.LazyWovenProvider`)
        renders a node page only when the user agent asks for it — and
        because rendering passes through the deployed aspect's join
        points, a :meth:`reconfigure` between two requests changes the
        navigation of pages rendered afterwards.
        """
        return LazyWovenProvider(self._renderer)

    def __enter__(self) -> "NavigationWeaver":
        return self.deploy()

    def __exit__(self, *exc_info) -> None:
        self.undeploy()
