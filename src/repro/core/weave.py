"""Weaving orchestration: base program + navigation aspect = the site.

The one-call composition of the paper's Figure 6::

    site = build_woven_site(fixture, default_museum_spec("index"))

Changing the access structure is a new spec, not new pages::

    site2 = build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))

The change-impact experiments diff these two builds against the tangled
equivalents.
"""

from __future__ import annotations

from typing import Iterable

from repro.aop import Weaver
from repro.baselines.museum_data import MuseumFixture
from repro.web import StaticSite

from .aspect import NavigationAspect
from .navspec import NavigationSpec
from .renderer import PageRenderer


def build_plain_site(fixture: MuseumFixture) -> StaticSite:
    """The base program alone: a site with no navigation at all."""
    return PageRenderer(fixture).build_site()


def build_woven_site(
    fixture: MuseumFixture,
    spec: NavigationSpec,
    *,
    weaver: Weaver | None = None,
) -> StaticSite:
    """Deploy the navigation aspect, build the site, undeploy.

    The weaver touches :class:`PageRenderer` only for the duration of the
    build, so concurrent plain builds (or differently-woven builds) never
    observe each other's navigation.
    """
    weaver = weaver or Weaver()
    renderer = PageRenderer(fixture)
    aspect = NavigationAspect(spec, fixture)
    (deployment,) = weaver.deploy_all([aspect], [PageRenderer])
    try:
        return renderer.build_site()
    finally:
        weaver.undeploy(deployment)


def build_woven_site_many(
    fixture: MuseumFixture,
    specs: Iterable[NavigationSpec],
    *,
    weaver: Weaver | None = None,
) -> list[StaticSite]:
    """Build one site per navigation spec, amortizing weaving costs.

    Each spec gets its own aspect deployment (deployed, built, undeployed
    in turn), but all of them plan against the weaver's shared shadow
    index, so the per-deployment member rescan of :class:`PageRenderer`
    is paid once for the whole batch rather than once per spec.
    """
    weaver = weaver or Weaver()
    sites: list[StaticSite] = []
    for spec in specs:
        sites.append(build_woven_site(fixture, spec, weaver=weaver))
    return sites


def build_woven_site_stacked(
    fixture: MuseumFixture,
    specs: Iterable[NavigationSpec],
    *,
    weaver: Weaver | None = None,
) -> StaticSite:
    """Build **one** site with several navigation concerns layered at once.

    Where :func:`build_woven_site_many` produces one site per spec, this
    stacks every spec's aspect over the same renderer — each page carries
    all of their navigation blocks, later specs wrapping (and therefore
    appending after) earlier ones.  The batch deploys through
    :meth:`Weaver.deploy_all`, whose planner derives all the aspects'
    plans from a single shadow scan of :class:`PageRenderer`, and unwinds
    LIFO so the renderer is restored exactly.
    """
    weaver = weaver or Weaver()
    renderer = PageRenderer(fixture)
    aspects = [NavigationAspect(spec, fixture) for spec in specs]
    deployments = weaver.deploy_all(aspects, [PageRenderer])
    try:
        return renderer.build_site()
    finally:
        for deployment in reversed(deployments):
            weaver.undeploy(deployment)


class NavigationWeaver:
    """A persistent deployment for interactive use.

    Where :func:`build_woven_site` is transactional, this keeps the aspect
    deployed — rendering individual pages on demand (e.g. for the user
    agent) with navigation woven in — until :meth:`undeploy`.
    """

    def __init__(self, fixture: MuseumFixture, spec: NavigationSpec):
        self._fixture = fixture
        self._spec = spec
        self._weaver = Weaver()
        self._renderer = PageRenderer(fixture)
        self._aspect: NavigationAspect | None = None
        self._deployment = None

    @property
    def aspect(self) -> NavigationAspect:
        if self._aspect is None:
            raise RuntimeError("weaver is not deployed")
        return self._aspect

    @property
    def renderer(self) -> PageRenderer:
        return self._renderer

    def deploy(self) -> "NavigationWeaver":
        if self._deployment is not None:
            return self
        self._aspect = NavigationAspect(self._spec, self._fixture)
        self._deployment = self._weaver.deploy(self._aspect, [PageRenderer])
        return self

    def undeploy(self) -> None:
        if self._deployment is not None:
            self._weaver.undeploy(self._deployment)
            self._deployment = None
            self._aspect = None

    def reconfigure(self, spec: NavigationSpec) -> "NavigationWeaver":
        """Swap the navigation spec: undeploy, replace, redeploy.

        This is the paper's change request as a runtime operation — the
        base program is untouched throughout.
        """
        was_deployed = self._deployment is not None
        self.undeploy()
        self._spec = spec
        if was_deployed:
            self.deploy()
        return self

    def build_site(self) -> StaticSite:
        return self._renderer.build_site()

    def provider(self) -> "LazyWovenProvider":
        """Serve pages *on demand*, rendering through the live deployment.

        Unlike :meth:`build_site` (which materializes everything), the
        lazy provider renders a node page only when the user agent asks
        for it — and because rendering passes through the deployed
        aspect's join points, a :meth:`reconfigure` between two requests
        changes the navigation of pages rendered afterwards.
        """
        return LazyWovenProvider(self)

    def __enter__(self) -> "NavigationWeaver":
        return self.deploy()

    def __exit__(self, *exc_info) -> None:
        self.undeploy()


class LazyWovenProvider:
    """On-demand page provider over a deployed :class:`NavigationWeaver`."""

    def __init__(self, weaver: NavigationWeaver):
        self._weaver = weaver
        # URI -> node, computed once from the renderer's inventory.
        self._nodes = {
            node.uri: node for node in weaver.renderer.node_inventory()
        }

    def page(self, uri: str):
        from repro.hypermedia.errors import NavigationError
        from repro.navigation import PageAnchor, PageView

        import posixpath

        normalized = posixpath.normpath(uri)
        renderer = self._weaver.renderer
        if normalized == "index.html":
            page = renderer.render_home()
        elif normalized in self._nodes:
            page = renderer.render_node(self._nodes[normalized])
        else:
            raise NavigationError(f"no page at {uri!r}")
        from repro.xlink import resolve_uri

        anchors = [
            PageAnchor(
                label=a.label,
                href=posixpath.normpath(resolve_uri(normalized, a.href)),
                rel=a.rel,
            )
            for a in page.anchors()
        ]
        return PageView(uri=normalized, title=page.title, anchors=anchors)
