"""The navigation aspect: the paper's Figure 6, executable.

Questions 3 and 4 of §5 — *where are the join points?* and *how do we
compose?* — answered concretely:

- **Join points**: the execution of the base renderer's ``render_node``
  and ``render_home`` methods (:class:`repro.core.renderer.PageRenderer`).
- **Composition**: ``around`` advice lets the base program produce its
  content-only page, then injects one ``<nav>`` block computed from the
  separately-specified :class:`~repro.core.navspec.NavigationSpec`.

The base program never changes; deploying a different aspect instance
(with a different spec) re-skins the whole site's navigation.
"""

from __future__ import annotations

from repro.aop import Aspect, around
from repro.baselines.museum_data import MuseumFixture
from repro.hypermedia import NavigationalContext
from repro.web import HtmlPage, nav_block

from .navspec import NavigationSpec


class NavigationAspect(Aspect):
    """Weaves navigation into content-only pages.

    One instance carries one :class:`NavigationSpec` plus the contexts it
    materializes; advice bodies consult only those — the page content is
    whatever the base renderer produced.
    """

    def __init__(self, spec: NavigationSpec, fixture: MuseumFixture):
        self.spec = spec
        self.fixture = fixture
        self.contexts: dict[str, NavigationalContext] = spec.build_contexts(fixture)
        #: Join point observations, useful for tests and the experiments.
        self.pages_advised: int = 0

    @around("execution(PageRenderer.render_node)")
    def weave_node_navigation(self, jp) -> HtmlPage:
        """Inject the spec's anchors into every rendered node page."""
        page: HtmlPage = jp.proceed()
        (node,) = jp.args
        anchors = self.spec.anchors_for(node, self.contexts, self.fixture.nav)
        return self._with_nav(page, anchors)

    @around("execution(PageRenderer.render_home)")
    def weave_home_navigation(self, jp) -> HtmlPage:
        """Inject the home page's entry indexes."""
        page: HtmlPage = jp.proceed()
        return self._with_nav(page, self.spec.home_anchors(self.fixture))

    def _with_nav(self, page: HtmlPage, anchors) -> HtmlPage:
        self.pages_advised += 1
        if not anchors:
            return page
        body = page.tree.find("body")
        if body is not None:
            body.append(nav_block(_relativize(anchors, page.path)))
        return page


def _relativize(anchors, page_path: str):
    """Rewrite absolute site paths into hrefs relative to *page_path*.

    Node URIs are site-absolute (``PaintingNode/guitar.html``); pages live
    in subdirectories, so anchors need ``../`` prefixes to resolve.
    """
    import posixpath

    from repro.hypermedia import Anchor

    directory = posixpath.dirname(page_path)
    out = []
    for anchor in anchors:
        href = anchor.href
        if not href.startswith(("http://", "https://", "#")):
            href = posixpath.relpath(href, directory or ".")
        out.append(Anchor(anchor.label, href, anchor.rel))
    return out
