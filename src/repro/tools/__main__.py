"""``python -m repro.tools`` entry point."""

import sys

from .cli import main

sys.exit(main())
