"""The ``repro.tools`` command-line interface.

Seven subcommands, all operating on the paper's museum (or a synthetic
one via ``--painters/--paintings``):

- ``build`` — build the site under one architecture and write it to disk.
- ``diff`` — apply the paper's change request and report the impact.
- ``spec`` — print the navigation spec artifact for an access structure.
- ``artifacts`` — write the Figures 7–9 artifacts (data XML + links.xml).
- ``aop inspect`` — weave the navigation stack in a scoped runtime and
  report every woven site, its dispatch tier, and the runtime's codegen
  statistics (``--source Class.member`` dumps a generated wrapper).
- ``aop lint`` — statically analyze the weave plan behind example
  scripts (or an explicit ``--stack``) and verify every generated
  wrapper template, without deploying anything; the CI lint gate.
- ``serve`` — serve every audience live over HTTP (threaded WSGI, one
  instance-scoped stack per audience, one scope tier per session).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.aop import WeaverRuntime
from repro.baselines import TangledMuseumSite, museum_fixture, synthetic_museum
from repro.core import (
    NavigationAspect,
    NavigationSpec,
    PageRenderer,
    build_woven_site,
    build_xlink_site,
    default_museum_spec,
    export_museum_space,
)
from repro.metrics import all_impacts, format_table
from repro.xmlcore import serialize

MECHANISMS = ("tangled", "aspect", "xlink")


def _fixture(args: argparse.Namespace):
    if args.painters or args.paintings:
        return synthetic_museum(args.painters or 4, args.paintings or 5)
    return museum_fixture()


def _spec(args: argparse.Namespace) -> NavigationSpec:
    if args.spec_file:
        return NavigationSpec.from_text(Path(args.spec_file).read_text())
    return default_museum_spec(args.access)


def _site_text(fixture, mechanism: str, spec: NavigationSpec) -> dict[str, str]:
    if mechanism == "tangled":
        access = next(iter(spec.access.values())).kind
        if access == "guided-tour":
            raise SystemExit("the tangled baseline supports index/indexed-guided-tour")
        pages = TangledMuseumSite(fixture, access).build()
        return {p.path: p.html for p in pages.values()}
    if mechanism == "aspect":
        return build_woven_site(fixture, spec).as_text()
    if mechanism == "xlink":
        return build_xlink_site(fixture, spec).as_text()
    raise SystemExit(f"unknown mechanism {mechanism!r}")


def _write_tree(out: Path, files: dict[str, str]) -> int:
    for path, text in files.items():
        target = out / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text if text.endswith("\n") else text + "\n")
    return len(files)


def cmd_build(args: argparse.Namespace) -> int:
    fixture = _fixture(args)
    spec = _spec(args)
    files = _site_text(fixture, args.mechanism, spec)
    count = _write_tree(Path(args.out), files)
    print(f"wrote {count} pages to {args.out} ({args.mechanism}, {args.access})")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    fixture = _fixture(args)
    impacts = all_impacts(fixture)
    if args.mechanism != "all":
        impacts = [i for i in impacts if i.approach == args.mechanism]
        if not impacts:
            raise SystemExit(f"unknown mechanism {args.mechanism!r}")
    print(
        format_table(
            [
                "approach",
                "authored files",
                "authored lines",
                "built files",
                "built lines",
            ],
            [impact.row() for impact in impacts],
            title="Change impact: index -> indexed-guided-tour",
        )
    )
    return 0


def _print_woven_sites(runtime: WeaverRuntime, title: str) -> None:
    print(
        format_table(
            ["site", "kind", "tier", "scope", "aspect", "deployment"],
            [
                [
                    site.signature,
                    site.kind,
                    site.tier,
                    f"{site.scope_instances} inst" if site.scoped else "class",
                    site.aspect,
                    str(site.deployment_index),
                ]
                for site in runtime.woven_sites()
            ],
            title=title,
        )
    )


def _print_runtime_stats(runtime: WeaverRuntime) -> None:
    stats = runtime.stats()
    cache = stats["codegen_cache"]
    scopes = stats["scopes"]
    print(
        f"runtime {stats['name']!r}: {stats['deployments']} deployments "
        f"({stats['instance_scoped']} instance-scoped over {scopes['count']} "
        f"scopes / {scopes['instances']} instances), "
        f"{stats['woven_sites']} woven sites, "
        f"{stats['pools']['count']} join point pools, "
        f"{stats['cflow_watchers']} cflow watchers"
    )
    print(
        f"codegen cache: {cache['sources_compiled']} sources compiled, "
        f"{cache['compile_hits']} shape hits, "
        f"{cache['wrappers_built']} wrappers built"
    )
    mon = stats["monitor"]
    if mon["supported"]:
        tool = mon["tool_id"] if mon["tool_id"] is not None else "-"
        print(
            f"monitor tier: {'on' if mon['enabled'] else 'off'}, "
            f"tool id {tool}, {mon['code_objects']} monitored code objects "
            f"({mon['stacked_entries']} stacked deployments)"
        )
    else:
        print("monitor tier: unsupported (needs sys.monitoring, CPython 3.12+)")


def _print_source(runtime: WeaverRuntime, signature: str) -> None:
    for deployment in runtime.deployments:
        per = runtime.deployment_stats(deployment)
        source = per.codegen_sources.get(signature)
        if source is not None:
            print(f"--- generated source for {signature} ---")
            print(source, end="")
            return
    raise SystemExit(
        f"aop inspect: no generated wrapper for {signature!r} "
        "(dynamic-residue shadows stay generic)"
    )


def cmd_aop_inspect(args: argparse.Namespace) -> int:
    """Weave the requested navigation stack and report what weaving did.

    Deploys one :class:`NavigationAspect` per stacked access structure
    into a scoped runtime (one transaction, one shadow scan of the
    renderer), prints every woven site with its dispatch tier and scope,
    then rolls the whole set back — the renderer class leaves this
    command exactly as it entered.  With ``--audiences``, an
    :class:`~repro.navigation.AudienceServer` is stood up instead and
    every audience's *instance-scoped* deployments are reported per
    scope (instance count, tiers, codegen stats).
    """
    fixture = _fixture(args)
    if args.audiences:
        return _aop_inspect_audiences(args, fixture)
    accesses = [a.strip() for a in args.stack.split(",") if a.strip()]
    if not accesses:
        raise SystemExit("aop inspect: --stack names no access structures")
    runtime = WeaverRuntime("aop-inspect")
    with runtime.transaction([PageRenderer]) as tx:
        for access in accesses:
            tx._add(NavigationAspect(default_museum_spec(access), fixture))
        title = " + ".join(accesses)
        if args.modules:
            import repro.xlink.resolver as resolver_module
            import repro.xmlcore.parser as parser_module

            tx._add(
                _module_tracing_aspect(), [parser_module, resolver_module]
            )
            title += " + module tracing"
        try:
            _print_woven_sites(runtime, f"Woven sites: {title}")
            _print_runtime_stats(runtime)
            if args.source:
                _print_source(runtime, args.source)
        finally:
            tx.undeploy()
    return 0


def _aop_inspect_audiences(args: argparse.Namespace, fixture) -> int:
    """Stand up a live audience server and report its per-scope rows."""
    from repro.navigation import DEFAULT_AUDIENCES, AudienceServer

    names = [a.strip() for a in args.audiences.split(",") if a.strip()]
    stock = {bundle.name: bundle for bundle in DEFAULT_AUDIENCES}
    unknown = [name for name in names if name not in stock]
    if unknown:
        raise SystemExit(
            f"aop inspect: unknown audience(s) {', '.join(unknown)} "
            f"(stock bundles: {', '.join(stock)})"
        )
    bundles = [stock[name] for name in names]
    with AudienceServer(fixture, bundles) as server:
        runtime = server.runtime
        rows = []
        for audience in server.audiences():
            bundle = server.bundle(audience)
            for deployment in server.deployments(audience):
                per = runtime.deployment_stats(deployment)
                rows.append(
                    [
                        audience,
                        "+".join(bundle.access_structures),
                        per.aspect,
                        f"{per.scope_instances} inst",
                        str(per.method_members),
                        str(len(per.codegen_sources)),
                        str(per.pools),
                    ]
                )
        print(
            format_table(
                [
                    "audience",
                    "stack",
                    "aspect",
                    "scope",
                    "methods",
                    "codegen",
                    "pools",
                ],
                rows,
                title=f"Instance scopes: {' + '.join(names)}",
            )
        )
        _print_woven_sites(runtime, "Woven sites (all audiences)")
        _print_runtime_stats(runtime)
        if args.source:
            _print_source(runtime, args.source)
    return 0


def _scan_access_names(paths: list[str]) -> tuple[list[str], int]:
    """AST-scan example scripts for the access structures they weave.

    Collects string literals from ``default_museum_spec("...")`` calls,
    :class:`~repro.navigation.AudienceBundle` access tuples, and
    ``.set_access(ctx, "kind")`` spec edits — the three ways the shipped
    examples name an access structure.  Returns the sorted unique names
    and how many files were scanned.
    """
    import ast

    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        else:
            raise SystemExit(
                f"aop lint: {raw} is neither a directory nor a .py file"
            )
    names: set[str] = set()
    for file in files:
        tree = ast.parse(file.read_text(), filename=str(file))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            else:
                continue
            literals: list[ast.expr] = []
            if callee == "default_museum_spec" and node.args:
                literals = [node.args[0]]
            elif callee == "AudienceBundle" and len(node.args) >= 2:
                arg = node.args[1]
                if isinstance(arg, (ast.Tuple, ast.List)):
                    literals = list(arg.elts)
            elif callee == "set_access" and len(node.args) >= 2:
                literals = [node.args[1]]
            for literal in literals:
                if isinstance(literal, ast.Constant) and isinstance(
                    literal.value, str
                ):
                    names.add(literal.value)
    return sorted(names), len(files)


def _module_tracing_aspect():
    """The lint stand-in for the example's module-weave workload."""
    from repro.aop import Aspect, execution, generator, proceed, return_

    class ModuleTracing(Aspect):
        @generator(execution("parser.parse") | execution("resolver.resolve_uri"))
        def trace(self, jp):
            result = yield proceed
            yield return_(result)

    return ModuleTracing()


def cmd_aop_lint(args: argparse.Namespace) -> int:
    """Statically analyze weave plans — nothing is deployed.

    Resolves the access structures the given example scripts weave (or an
    explicit ``--stack``), builds their navigation stack as a *plan*, and
    runs the full :mod:`repro.aop.analysis` battery over it: weave-plan
    lint, the advisory concurrency scan, and (unless ``--no-codegen``)
    source verification of every generated wrapper template shape.
    Findings print one per line with their stable ``APLxxx`` codes; the
    exit status is 1 when any error-severity finding exists (``--strict``
    fails on warnings and advisories too).
    """
    from repro.aop.analysis import (
        analyze_concurrency,
        analyze_deployment,
        enumerate_template_sources,
        verify_wrapper_source,
    )
    from repro.core.navspec import ACCESS_KINDS

    scanned = 0
    if args.stack:
        names = [a.strip() for a in args.stack.split(",") if a.strip()]
        if not names:
            raise SystemExit("aop lint: --stack names no access structures")
    elif args.paths:
        names, scanned = _scan_access_names(args.paths)
        if not names:
            raise SystemExit(
                "aop lint: the given paths weave no access structures"
            )
    else:
        names = list(ACCESS_KINDS)
    unknown = [name for name in names if name not in ACCESS_KINDS]
    if unknown:
        raise SystemExit(
            f"aop lint: unknown access structure(s) {', '.join(unknown)} "
            f"(known: {', '.join(ACCESS_KINDS)})"
        )
    fixture = _fixture(args)
    aspects = [
        NavigationAspect(default_museum_spec(name), fixture) for name in names
    ]
    diagnostics = analyze_deployment(aspects, [PageRenderer])
    diagnostics += analyze_concurrency(aspects)
    # The module-function plan: the same battery over module-level
    # weaving — the generator tracing aspect
    # examples/module_weave_tracing.py deploys over the XML substrate.
    import repro.xlink.resolver as resolver_module
    import repro.xmlcore.parser as parser_module

    module_targets = [parser_module, resolver_module]
    module_aspect = _module_tracing_aspect()
    diagnostics += analyze_deployment(module_aspect, module_targets)
    diagnostics += analyze_concurrency([module_aspect])
    shapes = 0
    if not args.no_codegen:
        for label, source in enumerate_template_sources():
            shapes += 1
            diagnostics += verify_wrapper_source(source, label=label)
    for diagnostic in diagnostics:
        print(diagnostic.format())
    summary = (
        f"{len(aspects)} aspect(s) over PageRenderer [{'+'.join(names)}], "
        f"1 generator aspect over {len(module_targets)} module(s), "
        f"{shapes} codegen template shapes verified"
    )
    if scanned:
        summary += f", {scanned} file(s) scanned"
    if diagnostics:
        errors = sum(1 for d in diagnostics if d.severity == "error")
        print(
            f"aop lint: {len(diagnostics)} finding(s), {errors} error(s) "
            f"({summary})"
        )
        return 1 if errors or args.strict else 0
    print(f"aop lint: no findings ({summary})")
    return 0


def _resolve_bundles(names_csv: str):
    from repro.navigation import DEFAULT_AUDIENCES

    names = [name.strip() for name in names_csv.split(",") if name.strip()]
    if not names:
        raise SystemExit("serve: --audiences names no bundles")
    stock = {bundle.name: bundle for bundle in DEFAULT_AUDIENCES}
    unknown = [name for name in names if name not in stock]
    if unknown:
        raise SystemExit(
            f"serve: unknown audience(s) {', '.join(unknown)} "
            f"(stock bundles: {', '.join(stock)})"
        )
    return [stock[name] for name in names]


def _snapshot_writer(args: argparse.Namespace):
    """The graceful-shutdown hook: snapshot live sessions to ``--snapshot``.

    Returns ``None`` when no snapshot path was given.  The written file
    is the ``{"sessions": [...]}`` document ``POST /-/sessions/restore``
    accepts, so a supervisor can feed a retired worker's sessions
    straight into its replacement.
    """
    if not args.snapshot:
        return None
    import json

    target = Path(args.snapshot)

    def on_drain(app) -> None:
        records = app.snapshot_sessions()
        target.write_text(
            json.dumps(
                {"sessions": [record.to_dict() for record in records]},
                indent=2,
            )
            + "\n"
        )
        print(
            f"serve: snapshotted {len(records)} session(s) to {target}",
            flush=True,
        )

    return on_drain


def _banner(args: argparse.Namespace, config, host: str, port: int, front: str):
    cache = "on" if config.cache_active() else "off"
    print(
        f"serving audiences [{args.audiences}] on http://{host}:{port}/ "
        f"({front}, session idle timeout: {args.session_ttl:g}s, "
        f"page cache: {cache})",
        flush=True,
    )


def _cmd_serve_asgi(args: argparse.Namespace, fixture, bundles, config) -> int:
    """One asyncio worker: the ASGI front with a true close-then-drain."""
    import asyncio
    import signal

    from repro.navigation import serve_async

    async def run() -> None:
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, shutdown.set)

        def ready(httpd) -> None:
            host, port = httpd.address
            _banner(args, config, host, port, "asgi")

        await serve_async(
            fixture,
            bundles,
            host=args.host,
            port=args.port,
            config=config,
            ready=ready,
            shutdown=shutdown,
            on_drain=_snapshot_writer(args),
        )

    asyncio.run(run())
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """The multi-process cluster: N workers behind the hashing front."""
    import asyncio
    import signal

    from repro.navigation.asgi import AsgiHttpServer
    from repro.navigation.cluster import ClusterFront, WorkerPool

    _resolve_bundles(args.audiences)  # fail fast before spawning anything
    pool = WorkerPool(
        args.workers,
        audiences=args.audiences,
        asgi_workers=args.asgi,
    )

    async def run() -> None:
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, shutdown.set)
        httpd = AsgiHttpServer(ClusterFront(pool), args.host, args.port)
        await httpd.start()
        host, port = httpd.address
        print(
            f"serving audiences [{args.audiences}] on http://{host}:{port}/ "
            f"(cluster front, {args.workers} worker(s): "
            f"{', '.join(pool.names())})",
            flush=True,
        )
        serving = asyncio.ensure_future(httpd.serve_forever())
        await shutdown.wait()
        serving.cancel()
        httpd.close()
        await httpd.drain(timeout=5.0)
        await httpd.aclose()

    pool.start()
    try:
        asyncio.run(run())
    finally:
        pool.stop()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the museum live: every audience's stack, every session's trail.

    Three fronts over the same :class:`~repro.navigation.NavigationApp`
    surface: the default threaded ``wsgiref`` server, ``--asgi`` for the
    single-process asyncio front, and ``--workers N`` for the
    multi-process cluster (a consistent-hashing reverse proxy over N
    serving children; sessions migrate between workers as portable
    records).  ``--port 0`` picks an ephemeral port; the bound address
    is printed (and flushed) before serving starts, so scripted callers
    — the CI smoke jobs — can parse it.  ``SIGTERM`` shuts down
    gracefully: stop accepting, drain, snapshot live sessions to
    ``--snapshot`` (if given), exit 0.
    """
    import signal
    import threading

    from repro.navigation import ServingConfig, serve

    if args.workers:
        return _cmd_serve_cluster(args)
    fixture = _fixture(args)
    bundles = _resolve_bundles(args.audiences)
    config = ServingConfig(
        session_idle_timeout=args.session_ttl,
        cache_enabled=not args.no_cache,
        cache_pages=args.cache_pages,
    )
    if args.asgi:
        return _cmd_serve_asgi(args, fixture, bundles, config)

    def ready(httpd) -> None:
        host, port = httpd.server_address[:2]
        _banner(args, config, host, port, "wsgi")

    def on_sigterm(signum, frame) -> None:
        # The WSGI loop's graceful exit path is its KeyboardInterrupt
        # handler (listener closes, sessions snapshot, stacks unwind,
        # exit 0); route SIGTERM through the same path.
        raise KeyboardInterrupt

    if threading.current_thread() is threading.main_thread():
        # signal.signal is main-thread-only; embedded runs (tests drive
        # ``main()`` from a worker thread) just forgo SIGTERM handling.
        signal.signal(signal.SIGTERM, on_sigterm)
    serve(
        fixture,
        bundles,
        host=args.host,
        port=args.port,
        config=config,
        ready=ready,
        on_drain=_snapshot_writer(args),
    )
    return 0


def cmd_spec(args: argparse.Namespace) -> int:
    print(default_museum_spec(args.access).to_text(), end="")
    return 0


def cmd_artifacts(args: argparse.Namespace) -> int:
    fixture = _fixture(args)
    spec = _spec(args)
    space = export_museum_space(fixture, spec)
    files = {
        uri: serialize(space.document(uri), indent="  ", xml_declaration=True)
        for uri in space.uris()
    }
    count = _write_tree(Path(args.out), files)
    print(f"wrote {count} artifacts to {args.out} (data XML + links.xml)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="Build, diff and inspect the museum site three ways.",
    )
    parser.add_argument("--painters", type=int, default=0, help="synthetic museum size")
    parser.add_argument(
        "--paintings", type=int, default=0, help="paintings per painter"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a site and write it to disk")
    build.add_argument("--mechanism", choices=MECHANISMS, default="aspect")
    build.add_argument("--access", default="index")
    build.add_argument("--spec-file", help="load the navigation spec from a file")
    build.add_argument("--out", required=True)
    build.set_defaults(fn=cmd_build)

    diff = sub.add_parser("diff", help="report the change request's impact")
    diff.add_argument("--mechanism", choices=(*MECHANISMS, "all"), default="all")
    diff.set_defaults(fn=cmd_diff)

    spec = sub.add_parser("spec", help="print the navigation spec artifact")
    spec.add_argument("--access", default="index")
    spec.set_defaults(fn=cmd_spec)

    artifacts = sub.add_parser(
        "artifacts", help="write the Figures 7-9 artifacts (data + linkbase)"
    )
    artifacts.add_argument("--access", default="index")
    artifacts.add_argument("--spec-file")
    artifacts.add_argument("--out", required=True)
    artifacts.set_defaults(fn=cmd_artifacts)

    serve = sub.add_parser(
        "serve", help="serve every audience live over HTTP (threaded WSGI)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--audiences",
        default="visitor,curator",
        help="comma-separated stock bundles to serve (e.g. visitor,curator)",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=600.0,
        help="seconds of idleness before a session's scope is evicted",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve every page by full render (disable the skeleton cache)",
    )
    serve.add_argument(
        "--cache-pages",
        type=int,
        default=256,
        help="per-audience page-cache capacity (LRU-evicted past this)",
    )
    serve.add_argument(
        "--asgi",
        action="store_true",
        help="serve under the single-process asyncio/ASGI front",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "run a multi-process cluster: N serving workers behind a "
            "consistent-hashing front (0 = single process)"
        ),
    )
    serve.add_argument(
        "--snapshot",
        help=(
            "on graceful shutdown, write live session records (JSON) here; "
            "feed the file to POST /-/sessions/restore to resume them"
        ),
    )
    serve.set_defaults(fn=cmd_serve)

    aop = sub.add_parser("aop", help="inspect the aspect-weaving runtime")
    aop_sub = aop.add_subparsers(dest="aop_command", required=True)
    inspect = aop_sub.add_parser(
        "inspect", help="weave a navigation stack and report the woven sites"
    )
    inspect.add_argument(
        "--stack",
        default="index",
        help="comma-separated access structures to stack (e.g. index,guided-tour)",
    )
    inspect.add_argument(
        "--source",
        help="dump the generated wrapper source for one site (Class.member)",
    )
    inspect.add_argument(
        "--audiences",
        help=(
            "serve these stock audience bundles live (comma-separated, e.g. "
            "visitor,curator) and report per-scope rows instead of --stack"
        ),
    )
    inspect.add_argument(
        "--modules",
        action="store_true",
        help=(
            "also weave the generator tracing aspect over the XML substrate's "
            "module-level functions and report those sites"
        ),
    )
    inspect.set_defaults(fn=cmd_aop_inspect)
    lint = aop_sub.add_parser(
        "lint", help="statically analyze weave plans without deploying"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="example scripts or directories to scan for woven access structures",
    )
    lint.add_argument(
        "--stack",
        help="comma-separated access structures to analyze instead of scanning",
    )
    lint.add_argument(
        "--no-codegen",
        action="store_true",
        help="skip the generated-template source verification",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on any finding, not just error-severity ones",
    )
    lint.set_defaults(fn=cmd_aop_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # `spec`/`diff` have no --spec-file/--access in every subparser; default them.
    for attr, default in (("spec_file", None), ("access", "index")):
        if not hasattr(args, attr):
            setattr(args, attr, default)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
