"""Command-line tools: build, diff and inspect museum sites.

The downstream-user face of the library::

    python -m repro.tools build --mechanism aspect --access index --out site/
    python -m repro.tools diff  --mechanism tangled
    python -m repro.tools spec  --access indexed-guided-tour
    python -m repro.tools artifacts --out artifacts/

See :func:`repro.tools.cli.main`.
"""

from .cli import main

__all__ = ["main"]
