"""End-to-end serving smoke: the CI gate for the HTTP front.

Boots the *real* CLI stack — ``python -m repro.tools serve`` in a child
process, on an ephemeral port — and drives it the way the acceptance bar
demands: concurrent requests against two audiences and two sessions
(plus a threaded storm of both), asserting

- every response is 2xx,
- no cross-audience bleed (the visitor's guided tour never shows up on a
  curator page and vice versa),
- no cross-session bleed (each session's breadcrumb trail names only its
  own pages),
- a live ``POST /-/reconfigure/{audience}`` changes only the targeted
  audience's next response,
- the skeleton cache serves warm repeats as hits, re-renders (never a
  stale page) after a reconfigure, and splices only the requesting
  session's breadcrumb fragment into a cached skeleton,
- the child process exits cleanly with no traceback on stderr.

Run under both wrapper tiers in CI (and once with the page cache off)::

    REPRO_AOP_CODEGEN=1 python -m repro.tools.serve_smoke
    REPRO_AOP_CODEGEN=0 python -m repro.tools.serve_smoke
    REPRO_PAGE_CACHE=0 python -m repro.tools.serve_smoke

Exit status 0 on success; any failure prints the offending evidence and
exits 1.  ``--requests`` trims the storm for quick local runs.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request

GUITAR = "PaintingNode/guitar.html"
_BREADCRUMBS = re.compile(r'<nav class="breadcrumbs">(.*?)</nav>', re.DOTALL)


class SmokeFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _get(base: str, path: str, sid: str | None = None) -> tuple[int, str]:
    status, _, body = _get_full(base, path, sid)
    return status, body


def _get_full(base: str, path: str, sid: str | None = None):
    """``(status, headers, body)`` — headers are case-insensitive."""
    request = urllib.request.Request(base + path)
    if sid is not None:
        request.add_header("X-Repro-Session", sid)
    with urllib.request.urlopen(request, timeout=10) as response:
        return (
            response.status,
            response.headers,
            response.read().decode("utf-8"),
        )


def _post(base: str, path: str, body: str) -> tuple[int, str]:
    request = urllib.request.Request(
        base + path, data=body.encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def breadcrumb_hrefs(html: str) -> list[str]:
    """The hrefs inside the page's (session-private) breadcrumb block."""
    block = _BREADCRUMBS.search(html)
    if block is None:
        return []
    return re.findall(r'href="([^"]+)"', block.group(1))


def _storm(base: str, requests_per_session: int) -> None:
    """Two audiences × two sessions each, hammered from four threads."""
    plans = [
        ("visitor", "smoke-v1", "PaintingNode/guernica.html"),
        ("visitor", "smoke-v2", "PaintingNode/violin.html"),
        ("curator", "smoke-c1", "PaintingNode/memory.html"),
        ("curator", "smoke-c2", "PaintingNode/elephants.html"),
    ]
    own_basename = {sid: page.rsplit("/", 1)[1] for _, sid, page in plans}
    errors: list[BaseException] = []
    start = threading.Barrier(len(plans))

    def run(audience: str, sid: str, own_page: str) -> None:
        try:
            start.wait(timeout=10)
            for _ in range(requests_per_session):
                status, _ = _get(base, f"/{audience}/index.html", sid)
                _check(status == 200, f"{sid}: home returned {status}")
                status, html = _get(base, f"/{audience}/{own_page}", sid)
                _check(status == 200, f"{sid}: {own_page} returned {status}")
                # Cross-audience bleed: the guided tour is visitor-only
                # (edge-of-tour pages carry only one of next/prev).
                has_tour = 'rel="next"' in html or 'rel="prev"' in html
                _check(
                    has_tour == (audience == "visitor"),
                    f"{sid}: audience bleed on {own_page} "
                    f"(tour={'present' if has_tour else 'absent'})",
                )
                # Cross-session bleed: my trail only ever names my pages.
                for href in breadcrumb_hrefs(html):
                    basename = href.rsplit("/", 1)[-1]
                    foreign = [
                        other
                        for other_sid, other in own_basename.items()
                        if other_sid != sid and other == basename
                    ]
                    _check(
                        not foreign,
                        f"{sid}: session bleed — trail names {href!r}",
                    )
        except BaseException as exc:  # noqa: BLE001 - reported by the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=plan, daemon=True) for plan in plans
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    hung = [thread for thread in threads if thread.is_alive()]
    if hung:
        raise SmokeFailure(
            f"storm failed: {len(hung)} worker thread(s) still running after "
            "the join timeout (wedged request?)"
        )
    if errors:
        raise SmokeFailure(f"storm failed: {errors[0]}") from errors[0]


def drive(base: str, requests_per_session: int) -> None:
    """The full scenario against a live server at *base*."""
    # Phase 0: the front door and both audiences' distinct stacks.
    status, front = _get(base, "/")
    _check(status == 200 and "visitor" in front, "front door broken")
    status, visitor = _get(base, f"/visitor/{GUITAR}", "smoke-v1")
    _check(status == 200, f"visitor page returned {status}")
    _check('rel="next"' in visitor, "visitor lost the guided tour")
    status, curator = _get(base, f"/curator/{GUITAR}", "smoke-c1")
    _check(status == 200, f"curator page returned {status}")
    _check('rel="next"' not in curator, "curator shows the visitor's tour")

    # Phase 1: concurrent sessions, no bleed anywhere.
    _storm(base, requests_per_session)

    # Phase 2: expected failures stay well-formed HTTP errors.
    for path, expected in (
        ("/stranger/index.html", 404),
        ("/visitor/ghost.html", 404),
        ("/-/nope", 404),
    ):
        try:
            status, _ = _get(base, path, "smoke-v1")
            raise SmokeFailure(f"{path} returned {status}, wanted {expected}")
        except urllib.error.HTTPError as exc:
            _check(exc.code == expected, f"{path}: {exc.code} != {expected}")

    # Phase 3: live reconfigure changes only the targeted audience.
    # Let the visitor's page settle (trail dedups on revisit) first.
    _get(base, f"/visitor/{GUITAR}", "smoke-v1")
    _, visitor_before = _get(base, f"/visitor/{GUITAR}", "smoke-v1")
    status, _ = _post(base, "/-/reconfigure/curator", "indexed-guided-tour")
    _check(status == 200, f"reconfigure returned {status}")
    status, curator_after = _get(base, f"/curator/{GUITAR}", "smoke-c1")
    _check(status == 200, f"curator page returned {status} after reconfigure")
    _check('rel="next"' in curator_after, "curator reconfigure had no effect")
    _, visitor_after = _get(base, f"/visitor/{GUITAR}", "smoke-v1")
    _check(
        visitor_before == visitor_after,
        "reconfiguring the curator changed the visitor's page",
    )

    # Phase 4: the management stats expose the scope hierarchy.
    status, raw = _get(base, "/-/stats")
    _check(status == 200, f"stats returned {status}")
    stats = json.loads(raw)
    # Four (session, audience) scopes: two sids per audience, reused
    # across every phase above.
    _check(
        stats["sessions"]["active"] == 4,
        f"expected 4 live sessions, saw {stats['sessions']['active']}",
    )
    runtime = stats["runtime"]
    _check(
        runtime["instance_scoped"] == runtime["deployments"],
        "expected every deployment to be instance-scoped",
    )
    _check(
        runtime["scopes"]["instances"] >= 7,
        f"scope membership too small: {runtime['scopes']}",
    )

    # Phase 5: the skeleton cache end to end — warm repeats hit, a
    # reconfigure re-renders (never a stale page), and a cached skeleton
    # carries only the requesting session's breadcrumb fragment.
    cache_stats = stats["audiences"]["visitor"]["cache"]
    if not cache_stats["enabled"]:
        # The REPRO_PAGE_CACHE=0 leg: every response is a full render
        # and says so.
        status, headers, _ = _get_full(base, f"/visitor/{GUITAR}", "smoke-v1")
        _check(
            headers.get("X-Repro-Cache") == "off",
            f"cache disabled but outcome is {headers.get('X-Repro-Cache')!r}",
        )
        return
    epoch_before = stats["audiences"]["visitor"]["weave_epoch"]
    _, h1, body1 = _get_full(base, f"/visitor/{GUITAR}", "smoke-v1")
    _, h2, body2 = _get_full(base, f"/visitor/{GUITAR}", "smoke-v1")
    _check(
        h2.get("X-Repro-Cache") == "hit",
        f"warm repeat not served from cache ({h2.get('X-Repro-Cache')!r})",
    )
    _check(body1 == body2, "a cache hit changed the page bytes")
    status, _ = _post(base, "/-/reconfigure/visitor", "index")
    _check(status == 200, f"visitor reconfigure returned {status}")
    _, h3, body3 = _get_full(base, f"/visitor/{GUITAR}", "smoke-v1")
    _check(
        h3.get("X-Repro-Cache") == "miss",
        "post-reconfigure request was not re-rendered "
        f"({h3.get('X-Repro-Cache')!r})",
    )
    _check(
        'rel="next"' not in body3,
        "reconfigured visitor still shows the tour — stale cached skeleton",
    )
    status, raw = _get(base, "/-/stats")
    after = json.loads(raw)["audiences"]["visitor"]
    _check(
        after["weave_epoch"] > epoch_before,
        f"reconfigure left the weave epoch at {after['weave_epoch']}",
    )
    _check(after["cache"]["hits"] >= 1, f"no cache hits counted: {after['cache']}")
    # smoke-v2 fetches the page smoke-v1 just cached: a hit whose trail
    # block must name only v2's own history (violin, never guernica).
    _, h4, body4 = _get_full(base, f"/visitor/{GUITAR}", "smoke-v2")
    _check(
        h4.get("X-Repro-Cache") == "hit",
        f"v2's fetch of a cached page missed ({h4.get('X-Repro-Cache')!r})",
    )
    hrefs = breadcrumb_hrefs(body4)
    _check(hrefs, "smoke-v2's trail missing from the cached page")
    _check(
        not any("guernica" in href for href in hrefs),
        f"session bleed on the cache-hit path: v1's page in v2's trail {hrefs}",
    )


def _read_banner(
    child: subprocess.Popen, *, timeout: float
) -> tuple[str, threading.Thread]:
    """The child's first stdout line (``""`` if it hangs past *timeout*).

    ``readline()`` on a wedged child (server deadlocks before printing its
    banner) would block this process forever — until the CI job timeout —
    so the read runs on a daemon thread and a silent child is reported as
    an ordinary no-banner failure instead.  The reader thread is returned
    so the caller can kill the child and join it before anything else
    touches ``child.stdout`` (two concurrent readers on one stream are
    unsafe).
    """
    holder: dict[str, str] = {}

    def read() -> None:
        holder["line"] = child.stdout.readline()

    reader = threading.Thread(target=read, daemon=True)
    reader.start()
    reader.join(timeout=timeout)
    return holder.get("line", ""), reader


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=15)
    parser.add_argument(
        "--audiences", default="visitor,curator", help="bundles for the child"
    )
    options = parser.parse_args(argv)

    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.tools",
            "serve",
            "--port",
            "0",
            "--audiences",
            options.audiences,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner, banner_reader = _read_banner(child, timeout=30.0)
        match = re.search(r"http://([\d.]+):(\d+)/", banner)
        if match is None:
            # Kill first: EOF unblocks the reader thread, which must be
            # done with child.stdout before communicate() reads it too.
            child.kill()
            banner_reader.join(timeout=10)
            _, stderr = child.communicate(timeout=10)
            print(f"no serving banner (got {banner!r})", file=sys.stderr)
            print(stderr, file=sys.stderr)
            return 1
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"serve-smoke: child {child.pid} serving at {base}")
        drive(base, options.requests)
    except SmokeFailure as failure:
        print(f"serve-smoke FAILED: {failure}", file=sys.stderr)
        child.kill()
        _, stderr = child.communicate(timeout=10)
        if stderr:
            print("--- child stderr ---", file=sys.stderr)
            print(stderr, file=sys.stderr)
        return 1
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGINT)
    try:
        _, stderr = child.communicate(timeout=15)
    except subprocess.TimeoutExpired:
        child.kill()
        _, stderr = child.communicate(timeout=10)
        print("serve-smoke FAILED: child ignored SIGINT", file=sys.stderr)
        print(stderr, file=sys.stderr)
        return 1
    if child.returncode != 0:
        print(
            f"serve-smoke FAILED: child exited {child.returncode}",
            file=sys.stderr,
        )
        print(stderr, file=sys.stderr)
        return 1
    if "Traceback" in stderr:
        print("serve-smoke FAILED: traceback on child stderr:", file=sys.stderr)
        print(stderr, file=sys.stderr)
        return 1
    print(
        "serve-smoke passed: two audiences, concurrent sessions, "
        "cache-coherent reconfigures, zero bleed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
