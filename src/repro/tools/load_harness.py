"""Cluster load harness: hundreds of sessions, live failover, zero bleed.

The CI gate for the serving cluster.  Where :mod:`~repro.tools.\
serve_smoke` proves the single-process HTTP front correct, this harness
proves the *cluster* story at load:

1. **Storm** — N workers (real ``repro.tools serve`` child processes)
   behind the consistent-hashing :class:`~repro.navigation.cluster.\
ClusterFront` on a real TCP port; hundreds of concurrent sessions
   (spread over both audiences and a bounded thread pool) each walk
   their own page plan.  Gates: error rate exactly 0, every session's
   breadcrumb trail names only its own pages (zero cross-session bleed),
   and tour markup appears only on visitor pages (zero cross-audience
   bleed).  Per-request wall latency is recorded and reported as
   p50/p99.
2. **Failover** — one worker is retired mid-run (``SIGTERM``; its
   sessions snapshot into portable records and restore into their new
   ring owners).  Every migrated session then fetches one more page:
   it must answer 200 from a *different* worker with the pre-migration
   trail intact.
3. **Graceful single-process leg** — a plain ``serve --snapshot`` child
   is driven, ``SIGTERM``-ed (must exit 0 with the session records on
   disk), and the snapshot is restored into a fresh child whose next
   response must carry the original trail — the restart-survival
   contract, end to end through the CLI.

Run under both wrapper tiers in CI::

    REPRO_AOP_CODEGEN=1 python -m repro.tools.load_harness --sessions 200
    REPRO_AOP_CODEGEN=0 python -m repro.tools.load_harness --sessions 200

Exit status 0 on success; failures print the offending evidence and
exit 1.  ``--json`` emits the measured summary for tooling.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import re
import signal
import subprocess
import sys
import threading
import time

PAINTINGS = [
    "PaintingNode/guitar.html",
    "PaintingNode/guernica.html",
    "PaintingNode/violin.html",
    "PaintingNode/memory.html",
    "PaintingNode/elephants.html",
    "PaintingNode/avignon.html",
]

_BREADCRUMBS = re.compile(r'<nav class="breadcrumbs">(.*?)</nav>', re.DOTALL)
_BANNER = re.compile(r"http://([\d.]+):(\d+)/")


class LoadFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise LoadFailure(message)


def breadcrumb_basenames(html: str) -> list[str]:
    block = _BREADCRUMBS.search(html)
    if block is None:
        return []
    return [
        href.rsplit("/", 1)[-1]
        for href in re.findall(r'href="([^"]+)"', block.group(1))
    ]


class SessionPlan:
    """One session's identity and walk: an audience, a home, one painting."""

    def __init__(self, index: int):
        self.sid = f"load-{index}"
        self.audience = "visitor" if index % 2 == 0 else "curator"
        self.painting = PAINTINGS[index % len(PAINTINGS)]
        self.own_basenames = {"index.html", self.painting.rsplit("/", 1)[-1]}

    def pages(self) -> list[str]:
        return [
            f"/{self.audience}/index.html",
            f"/{self.audience}/{self.painting}",
        ]


class Results:
    """Thread-safe tally of latencies, errors, and bleed evidence."""

    def __init__(self):
        self._lock = threading.Lock()
        self.latencies_us: list[float] = []
        self.errors: list[str] = []
        self.requests = 0

    def record(self, elapsed_us: float) -> None:
        with self._lock:
            self.requests += 1
            self.latencies_us.append(elapsed_us)

    def fail(self, message: str) -> None:
        with self._lock:
            self.errors.append(message)

    def summary(self) -> dict:
        from repro.navigation.http import quantile

        ordered = sorted(self.latencies_us)
        return {
            "requests": self.requests,
            "errors": len(self.errors),
            "p50_us": round(quantile(ordered, 0.50), 1),
            "p99_us": round(quantile(ordered, 0.99), 1),
        }


class Client:
    """A keep-alive HTTP client per worker thread."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def get(self, path: str, sid: str) -> tuple[int, dict, str]:
        for attempt in (1, 2):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
            try:
                self._connection.request(
                    "GET", path, headers={"X-Repro-Session": sid}
                )
                response = self._connection.getresponse()
                body = response.read().decode("utf-8")
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    body,
                )
            except (OSError, http.client.HTTPException):
                # A retired worker may have raced this keep-alive socket;
                # one reconnect is legitimate, a second failure is real.
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


def _drive_session(client: Client, plan: SessionPlan, results: Results) -> None:
    for path in plan.pages():
        started = time.perf_counter()
        status, _, body = client.get(path, plan.sid)
        results.record((time.perf_counter() - started) * 1e6)
        if status != 200:
            results.fail(f"{plan.sid}: {path} returned {status}")
            return
        # The guided tour marks painting pages (edge pages carry one of
        # next/prev); home pages are tour-free for every audience.
        if "PaintingNode" in path:
            has_tour = 'rel="next"' in body or 'rel="prev"' in body
            if has_tour != (plan.audience == "visitor"):
                results.fail(f"{plan.sid}: audience bleed on {path}")
        foreign = [
            crumb
            for crumb in breadcrumb_basenames(body)
            if crumb not in plan.own_basenames
        ]
        if foreign:
            results.fail(f"{plan.sid}: session bleed — trail names {foreign}")


def _storm(
    address: tuple[str, int],
    plans: list[SessionPlan],
    results: Results,
    threads: int,
) -> None:
    queue: list[SessionPlan] = list(plans)
    lock = threading.Lock()

    def worker() -> None:
        client = Client(*address)
        try:
            while True:
                with lock:
                    if not queue:
                        return
                    plan = queue.pop()
                _drive_session(client, plan, results)
        except BaseException as exc:  # noqa: BLE001 - tallied, not raised
            results.fail(f"storm worker crashed: {exc!r}")
        finally:
            client.close()

    pool = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=300)
    hung = [thread for thread in pool if thread.is_alive()]
    _check(not hung, f"{len(hung)} storm thread(s) hung")


class _FrontHost:
    """The cluster front on a background event-loop thread."""

    def __init__(self, front):
        from repro.navigation.asgi import AsgiHttpServer

        self._ready = threading.Event()
        self.loop = asyncio.new_event_loop()
        self.server = AsgiHttpServer(front)
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.address = self.server.address
        self._ready.set()
        try:
            self.loop.run_forever()
        finally:
            self.loop.close()

    def __enter__(self) -> "_FrontHost":
        self._thread.start()
        _check(self._ready.wait(10), "cluster front never came up")
        return self

    def __exit__(self, *exc) -> None:
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.server.aclose(), self.loop
            )
            future.result(timeout=10)
        except RuntimeError:
            pass
        try:
            self.loop.call_soon_threadsafe(self.loop.stop)
        except RuntimeError:
            pass
        self._thread.join(timeout=10)


def run_cluster_phases(options: argparse.Namespace) -> dict:
    """Phases 1–2: the storm and the mid-run failover."""
    from repro.navigation.cluster import ClusterFront, WorkerPool

    plans = [SessionPlan(n) for n in range(options.sessions)]
    results = Results()
    pool = WorkerPool(options.workers, asgi_workers=options.asgi_workers)
    with pool:
        front = ClusterFront(pool)
        with _FrontHost(front) as host:
            print(
                f"load-harness: {options.workers} workers "
                f"({', '.join(pool.names())}) behind "
                f"http://{host.address[0]}:{host.address[1]}/, "
                f"{len(plans)} sessions, {options.threads} client threads",
                flush=True,
            )
            _storm(host.address, plans, results, options.threads)
            _check(
                not results.errors,
                f"storm: {len(results.errors)} error(s); first: "
                f"{results.errors[0] if results.errors else ''}",
            )

            # The cluster must actually hold every session concurrently.
            client = Client(*host.address)
            status, _, text = client.get("/-/stats", "load-admin")
            _check(status == 200, f"/-/stats returned {status}")
            stats = json.loads(text)
            live = stats["cluster"]["sessions"]
            _check(
                live >= options.sessions,
                f"only {live} live sessions, wanted >= {options.sessions}",
            )
            per_worker = {
                name: w.get("sessions", {}).get("active", 0)
                for name, w in stats["workers"].items()
            }
            _check(
                sum(1 for count in per_worker.values() if count > 0) >= 2,
                f"sessions not sharded across workers: {per_worker}",
            )

            # -- failover: retire one worker under live sessions ------------
            victim = pool.names()[0]
            migrants = [
                plan
                for plan in plans
                if pool.owner_of(plan.sid).name == victim
            ]
            _check(migrants, f"no sessions hashed onto {victim}")
            migrated = pool.retire_worker(victim)
            _check(
                migrated >= len(migrants),
                f"retired {victim}: migrated {migrated} records for "
                f"{len(migrants)} sessions",
            )
            print(
                f"load-harness: retired {victim}, migrated {migrated} "
                f"session record(s) covering {len(migrants)} stormed "
                "sessions",
                flush=True,
            )
            failover = Results()
            for plan in migrants:
                started = time.perf_counter()
                status, headers, body = client.get(
                    plan.pages()[-1], plan.sid
                )
                failover.record((time.perf_counter() - started) * 1e6)
                if status != 200:
                    failover.fail(f"{plan.sid}: post-retire {status}")
                    continue
                if headers.get("x-repro-worker") == victim:
                    failover.fail(f"{plan.sid}: still routed to {victim}")
                crumbs = breadcrumb_basenames(body)
                if "index.html" not in crumbs:
                    failover.fail(
                        f"{plan.sid}: trail lost in migration ({crumbs})"
                    )
                foreign = [
                    crumb
                    for crumb in crumbs
                    if crumb not in plan.own_basenames
                ]
                if foreign:
                    failover.fail(
                        f"{plan.sid}: post-migration bleed {foreign}"
                    )
            client.close()
            _check(
                not failover.errors,
                f"failover: {len(failover.errors)} error(s); first: "
                f"{failover.errors[0] if failover.errors else ''}",
            )
            summary = results.summary()
            summary["failover"] = failover.summary()
            summary["sessions"] = options.sessions
            summary["migrated"] = migrated
            return summary


def _spawn_serve(extra: list[str]) -> tuple[subprocess.Popen, str]:
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.tools", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert child.stdout is not None
    holder: dict[str, str] = {}
    stdout = child.stdout

    def read() -> None:
        holder["line"] = stdout.readline()

    reader = threading.Thread(target=read, daemon=True)
    reader.start()
    reader.join(timeout=30)
    banner = holder.get("line", "")
    match = _BANNER.search(banner)
    if match is None:
        child.kill()
        _, stderr = child.communicate(timeout=10)
        raise LoadFailure(f"no serving banner (got {banner!r})\n{stderr}")
    return child, f"http://{match.group(1)}:{match.group(2)}"


def _url_get(base: str, path: str, sid: str) -> tuple[int, str]:
    import urllib.request

    request = urllib.request.Request(
        base + path, headers={"X-Repro-Session": sid}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def run_sigterm_leg(tmp_snapshot: str) -> None:
    """Phase 3: the single-process graceful-shutdown/restart contract."""
    child, base = _spawn_serve(["--snapshot", tmp_snapshot])
    try:
        for path in ("/visitor/index.html", f"/visitor/{PAINTINGS[0]}"):
            status, _ = _url_get(base, path, "phoenix")
            _check(status == 200, f"{path} returned {status}")
    finally:
        child.send_signal(signal.SIGTERM)
    try:
        _, stderr = child.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        child.kill()
        raise LoadFailure("child ignored SIGTERM") from None
    _check(
        child.returncode == 0,
        f"SIGTERM exit status {child.returncode}\n{stderr}",
    )
    _check("Traceback" not in stderr, f"traceback on shutdown:\n{stderr}")
    with open(tmp_snapshot, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    sids = [record["sid"] for record in snapshot["sessions"]]
    _check(
        sids == ["phoenix"],
        f"snapshot holds {sids}, wanted the one live session",
    )
    trail = [path for path, _ in snapshot["sessions"][0]["trail"]]
    _check(
        trail == ["index.html", PAINTINGS[0]],
        f"snapshot trail is {trail}",
    )

    # Restore into a fresh process: the next page must carry the trail.
    child, base = _spawn_serve([])
    try:
        import urllib.request

        request = urllib.request.Request(
            base + "/-/sessions/restore",
            data=json.dumps(snapshot).encode("utf-8"),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            restored = json.loads(response.read())
        _check(
            restored["restored"] == ["phoenix"] and not restored["errors"],
            f"restore answered {restored}",
        )
        status, body = _url_get(base, f"/visitor/{PAINTINGS[1]}", "phoenix")
        _check(status == 200, f"post-restore page returned {status}")
        crumbs = breadcrumb_basenames(body)
        _check(
            crumbs == ["index.html", "guitar.html"],
            f"restored trail renders {crumbs}",
        )
    finally:
        child.send_signal(signal.SIGTERM)
        child.communicate(timeout=20)
    _check(child.returncode == 0, f"restart child exited {child.returncode}")
    print("load-harness: SIGTERM leg passed (snapshot -> restart -> trail)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sessions", type=int, default=240, help="concurrent sessions"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="cluster worker processes"
    )
    parser.add_argument(
        "--threads", type=int, default=24, help="client thread pool size"
    )
    parser.add_argument(
        "--asgi-workers",
        action="store_true",
        help="spawn the workers under the asyncio front too",
    )
    parser.add_argument(
        "--skip-sigterm-leg",
        action="store_true",
        help="run only the cluster storm/failover phases",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    options = parser.parse_args(argv)
    if options.sessions < options.workers:
        raise SystemExit("load-harness: need at least one session per worker")
    try:
        summary = run_cluster_phases(options)
        if not options.skip_sigterm_leg:
            import tempfile

            with tempfile.NamedTemporaryFile(
                suffix=".json", delete=False
            ) as handle:
                snapshot_path = handle.name
            run_sigterm_leg(snapshot_path)
    except LoadFailure as failure:
        print(f"load-harness FAILED: {failure}", file=sys.stderr)
        return 1
    if options.json:
        print(json.dumps(summary, indent=2))
    print(
        f"load-harness passed: {summary['sessions']} sessions over "
        f"{options.workers} workers, {summary['requests']} requests, "
        f"0 errors, p50 {summary['p50_us']:.0f}us / "
        f"p99 {summary['p99_us']:.0f}us, {summary['migrated']} sessions "
        "migrated on failover with trails intact"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
