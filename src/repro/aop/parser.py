"""A textual pointcut language.

The paper's premise is that navigation should be *specified* separately —
which needs a declarative surface, not just Python combinators.  This
parser accepts an AspectJ-flavoured expression grammar::

    execution(Node.render) && !cflow(execution(Index.*))
    get(Node.current_*) || set(Node.current_*)
    within(repro.hypermedia.*) && execution(*.as_html)

Operators: ``&&``, ``||``, ``!``, parentheses.  Primitives: ``execution``,
``get``, ``set``, ``within``, ``cflow``, ``cflowbelow``, ``target``,
``args``.  ``target``/``args`` resolve type names against the *types*
namespace passed to :func:`parse_pointcut`.
"""

from __future__ import annotations

import re

from .errors import PointcutSyntaxError
from .pointcut import (
    Pointcut,
    args as args_pc,
    cflow,
    cflowbelow,
    execution,
    field_get,
    field_set,
    target,
    within,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<op>&&|\|\||!|\(|\))|(?P<name>[A-Za-z_][\w]*))"
)

_PATTERN_PRIMITIVES = {
    "execution": execution,
    "get": field_get,
    "set": field_set,
    "within": within,
}
_NESTED_PRIMITIVES = {"cflow": cflow, "cflowbelow": cflowbelow}
_TYPE_PRIMITIVES = ("target", "args")


class _Parser:
    def __init__(self, text: str, types: dict[str, type]):
        self._text = text
        self._pos = 0
        self._types = types

    # -- scanning ----------------------------------------------------------

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _peek(self, literal: str) -> bool:
        self._skip_ws()
        return self._text.startswith(literal, self._pos)

    def _eat(self, literal: str) -> bool:
        if self._peek(literal):
            self._pos += len(literal)
            return True
        return False

    def _expect(self, literal: str) -> None:
        if not self._eat(literal):
            raise PointcutSyntaxError(
                f"expected {literal!r} at ...{self._text[self._pos:self._pos + 20]!r}"
            )

    def _read_name(self) -> str:
        self._skip_ws()
        match = re.match(r"[A-Za-z_][\w]*", self._text[self._pos :])
        if not match:
            raise PointcutSyntaxError(
                "expected a pointcut name at "
                f"...{self._text[self._pos : self._pos + 20]!r}"
            )
        self._pos += match.end()
        return match.group()

    def _read_balanced(self) -> str:
        """Raw text up to the matching close paren (for pattern arguments)."""
        self._expect("(")
        depth = 1
        start = self._pos
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    raw = self._text[start : self._pos]
                    self._pos += 1
                    return raw.strip()
            self._pos += 1
        raise PointcutSyntaxError("unbalanced parentheses in pointcut")

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Pointcut:
        result = self._or()
        self._skip_ws()
        if self._pos != len(self._text):
            raise PointcutSyntaxError(
                f"trailing input in pointcut: {self._text[self._pos:]!r}"
            )
        return result

    def _or(self) -> Pointcut:
        left = self._and()
        while self._eat("||"):
            left = left | self._and()
        return left

    def _and(self) -> Pointcut:
        left = self._unary()
        while self._eat("&&"):
            left = left & self._unary()
        return left

    def _unary(self) -> Pointcut:
        if self._eat("!"):
            return ~self._unary()
        if self._eat("("):
            inner = self._or()
            self._expect(")")
            return inner
        return self._primitive()

    def _primitive(self) -> Pointcut:
        name = self._read_name()
        if name in _PATTERN_PRIMITIVES:
            pattern = self._read_balanced()
            # Patterns may be quoted for readability; strip one quote layer.
            if len(pattern) >= 2 and pattern[0] == pattern[-1] and pattern[0] in "'\"":
                pattern = pattern[1:-1]
            if not pattern:
                raise PointcutSyntaxError(f"{name}() needs a pattern")
            return _PATTERN_PRIMITIVES[name](pattern)
        if name in _NESTED_PRIMITIVES:
            self._expect("(")
            inner = self._or()
            self._expect(")")
            return _NESTED_PRIMITIVES[name](inner)
        if name == "target":
            type_name = self._read_balanced()
            return target(self._resolve_type(type_name))
        if name == "args":
            raw = self._read_balanced()
            names = [part.strip() for part in raw.split(",") if part.strip()]
            return args_pc(*(self._resolve_type(n) for n in names))
        raise PointcutSyntaxError(f"unknown pointcut primitive: {name!r}")

    def _resolve_type(self, name: str) -> type:
        if name in self._types:
            return self._types[name]
        import builtins

        if hasattr(builtins, name) and isinstance(getattr(builtins, name), type):
            return getattr(builtins, name)
        raise PointcutSyntaxError(
            f"unknown type {name!r} in pointcut (pass it via types=...)"
        )


def parse_pointcut(text: str, types: dict[str, type] | None = None) -> Pointcut:
    """Parse a pointcut expression; see the module docstring for the grammar."""
    if not text or text.isspace():
        raise PointcutSyntaxError("empty pointcut expression")
    return _Parser(text, types or {}).parse()
