"""Pointcuts: predicates over join points.

A pointcut has two faces, mirroring how real weavers work:

- :meth:`Pointcut.matches_shadow` — *static* matching against a potential
  join point shadow (class, member name, kind).  The weaver uses this to
  decide which methods to wrap at deployment time.
- :meth:`Pointcut.matches_dynamic` — the *runtime residue* evaluated when
  the shadow fires (``cflow``, ``target``, argument tests).  Pure static
  pointcuts return True here.

Pointcuts compose with ``&``, ``|`` and ``~`` and can also be written in a
textual DSL (see :mod:`repro.aop.parser`)::

    execution("Node.render") & ~cflow(execution("Index.*"))
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from functools import cached_property

from .joinpoint import JoinPoint, JoinPointKind, current_stack


class Pointcut:
    """Base class: a composable join point predicate."""

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        raise NotImplementedError

    def matches_dynamic(self, jp: JoinPoint) -> bool:
        return True

    @property
    def has_dynamic_test(self) -> bool:
        """Whether the pointcut carries a runtime residue.

        Must be stable over the pointcut's lifetime *and* truthful: the
        weaver samples it once at deployment time to decide between the
        static fast path and the dynamic (per-call residue) path, composite
        pointcuts cache it, and the residue index memoizes per-class masks
        for pointcuts that report no dynamic test (see
        :meth:`residue_parts`).  A custom pointcut whose ``matches_dynamic``
        inspects anything beyond the join point's class/name/kind **must**
        return True here.
        """
        return False

    def residue_free(self) -> bool:
        """True when ``matches_dynamic`` is guaranteed True at a woven shadow.

        This is *stronger* than ``not has_dynamic_test``: :class:`Not` and
        :class:`Or` report no dynamic test when their children have none,
        yet their ``matches_dynamic`` re-evaluates the shadow match against
        the join point's *runtime* class — which can differ from the
        deploy-time shadow class when a subclass instance reaches an
        inherited woven method.  Only pointcuts whose ``matches_dynamic``
        is the trivial base implementation (and conjunctions of those) may
        skip the per-call residue check entirely.
        """
        return type(self).matches_dynamic is Pointcut.matches_dynamic

    def residue_parts(self) -> tuple["Pointcut | None", "Pointcut | None"]:
        """Decompose the runtime residue into class-settled and per-call parts.

        Returns ``(class_settled, per_call)`` such that ``matches_dynamic(jp)``
        is equivalent to evaluating both non-None parts — where the
        *class-settled* part depends only on the join point's runtime
        ``(cls, name, kind)`` triple (constant per woven shadow except for
        the class), so the weaver may evaluate it **once per runtime class**
        and memoize the verdict in a residue mask index, and the *per-call*
        part genuinely inspects call state (``cflow``, ``target``, ``args``).

        ``(None, None)`` means the residue is trivially true (the advice is
        fully statically matched).  The default decomposition classifies the
        whole pointcut by :meth:`residue_free` / :attr:`has_dynamic_test`;
        :class:`And` splits recursively so a conjunction like
        ``~execution(Sub.*) && target(C)`` pays only the ``isinstance`` test
        per call once its negation half is settled for a class.
        """
        if self.residue_free():
            return (None, None)
        if not self.has_dynamic_test:
            return (self, None)
        return (None, self)

    def cflow_inner_pointcuts(self) -> list["Pointcut"]:
        """Inner pointcuts of any cflow()/cflowbelow() nested in this one.

        The weaver instruments shadows matching these with tracking-only
        wrappers so the join point stack is populated even where no advice
        runs — otherwise ``cflow`` could never observe unadvised callers.
        """
        return []

    def __and__(self, other: "Pointcut | str") -> "Pointcut":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return And(self, other)

    def __or__(self, other: "Pointcut | str") -> "Pointcut":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return Or(self, other)

    def __rand__(self, other: "Pointcut | str") -> "Pointcut":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return And(other, self)

    def __ror__(self, other: "Pointcut | str") -> "Pointcut":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return Or(other, self)

    def __invert__(self) -> "Pointcut":
        return Not(self)


def _coerce(value: "Pointcut | str") -> "Pointcut | None":
    """Let the fluent operators take textual operands.

    ``execution("Node.render") & "cflow(execution(Index.*))"`` reads like
    the DSL it abbreviates; strings are parsed with no type environment
    (use :func:`repro.aop.parser.parse_pointcut` directly when ``target()``
    or ``args()`` need names resolved).  Non-pointcut, non-string operands
    return None so the operators fall back to ``NotImplemented``.
    """
    if isinstance(value, Pointcut):
        return value
    if isinstance(value, str):
        from .parser import parse_pointcut  # deferred: parser imports us

        return parse_pointcut(value)
    return None


def _split_pattern(pattern: str) -> tuple[str, str]:
    """Split ``Class.member`` patterns; a bare name means any class."""
    if "." in pattern:
        cls_pattern, _, member_pattern = pattern.rpartition(".")
        return cls_pattern, member_pattern
    return "*", pattern


def _matches_class(cls: type, pattern: str) -> bool:
    """Match the class name, any base class name, or the qualified name.

    Module targets (module-level function weaving) match on the module's
    dotted ``__name__`` and on its last segment, so both
    ``execution("repro.xmlcore.parser.parse")`` and
    ``execution("parser.parse")`` select the module shadow.
    """
    if pattern == "*":
        return True
    if not isinstance(cls, type):  # a module target
        dotted = getattr(cls, "__name__", "")
        if fnmatch.fnmatchcase(dotted, pattern):
            return True
        return fnmatch.fnmatchcase(dotted.rpartition(".")[2], pattern)
    for klass in cls.__mro__:
        if klass is object:
            continue
        if fnmatch.fnmatchcase(klass.__name__, pattern):
            return True
        qualified = f"{klass.__module__}.{klass.__qualname__}"
        if fnmatch.fnmatchcase(qualified, pattern):
            return True
    return False


@dataclass(frozen=True)
class KindedPattern(Pointcut):
    """Shared shape of execution/get/set pointcuts."""

    pattern: str
    kind: JoinPointKind

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        if kind is not self.kind:
            return False
        cls_pattern, member_pattern = _split_pattern(self.pattern)
        return _matches_class(cls, cls_pattern) and fnmatch.fnmatchcase(
            name, member_pattern
        )

    def __repr__(self) -> str:
        return f"{self.kind.value}({self.pattern})"


def execution(pattern: str) -> Pointcut:
    """Method execution join points: ``execution("Node.render")``.

    Patterns support ``*`` wildcards in both class and member positions and
    match subclasses (``Node.render`` also picks up ``PaintingNode.render``).
    """
    return KindedPattern(pattern, JoinPointKind.METHOD_EXECUTION)


def field_get(pattern: str) -> Pointcut:
    """Field read join points (for fields registered with the weaver)."""
    return KindedPattern(pattern, JoinPointKind.FIELD_GET)


def field_set(pattern: str) -> Pointcut:
    """Field write join points (for fields registered with the weaver)."""
    return KindedPattern(pattern, JoinPointKind.FIELD_SET)


@dataclass(frozen=True)
class Within(Pointcut):
    """Restrict to classes whose name (or module path) matches."""

    pattern: str

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        return _matches_class(cls, self.pattern) or fnmatch.fnmatchcase(
            getattr(cls, "__module__", getattr(cls, "__name__", "")), self.pattern
        )

    def __repr__(self) -> str:
        return f"within({self.pattern})"


def within(pattern: str) -> Pointcut:
    """``within("repro.hypermedia.*")`` or ``within("Node*")``."""
    return Within(pattern)


@dataclass(frozen=True)
class TargetType(Pointcut):
    """Dynamic test: the join point target is an instance of *cls*."""

    cls: type

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        # Statically plausible when the classes are related either way.
        # Module shadows have no target instance, so target() never matches.
        if not isinstance(cls, type):
            return False
        return issubclass(cls, self.cls) or issubclass(self.cls, cls)

    def matches_dynamic(self, jp: JoinPoint) -> bool:
        return isinstance(jp.target, self.cls)

    @property
    def has_dynamic_test(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"target({self.cls.__name__})"


def target(cls: type) -> Pointcut:
    """``target(PaintingNode)`` — runtime instance check."""
    return TargetType(cls)


@dataclass(frozen=True)
class ArgsTest(Pointcut):
    """Dynamic test on positional argument types: ``args(str, int)``.

    Matches when the join point has at least as many positional arguments
    and each is an instance of the corresponding type.
    """

    types: tuple[type, ...]

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        return True

    def matches_dynamic(self, jp: JoinPoint) -> bool:
        if len(jp.args) < len(self.types):
            return False
        return all(isinstance(a, t) for a, t in zip(jp.args, self.types))

    @property
    def has_dynamic_test(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"args({', '.join(t.__name__ for t in self.types)})"


def args(*types: type) -> Pointcut:
    return ArgsTest(tuple(types))


@dataclass(frozen=True)
class Cflow(Pointcut):
    """Dynamic test: some *enclosing* join point matches the inner pointcut.

    ``below`` excludes the current join point itself (AspectJ's
    ``cflowbelow``).
    """

    inner: Pointcut
    below: bool = False

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        # cflow cannot be decided statically; every shadow is plausible.
        return True

    def matches_dynamic(self, jp: JoinPoint) -> bool:
        stack = current_stack()
        if self.below and stack and stack[-1] is jp:
            stack = stack[:-1]
        return any(
            self.inner.matches_shadow(frame.cls, frame.name, frame.kind)
            and self.inner.matches_dynamic(frame)
            for frame in stack
        )

    @property
    def has_dynamic_test(self) -> bool:
        return True

    def cflow_inner_pointcuts(self) -> list[Pointcut]:
        return [self.inner] + self.inner.cflow_inner_pointcuts()

    def __repr__(self) -> str:
        return f"{'cflowbelow' if self.below else 'cflow'}({self.inner!r})"


def cflow(inner: Pointcut) -> Pointcut:
    """Match when control flow passes through a join point matching *inner*."""
    return Cflow(inner)


def cflowbelow(inner: Pointcut) -> Pointcut:
    """Like :func:`cflow` but excluding the current join point."""
    return Cflow(inner, below=True)


def _conjoin(left: "Pointcut | None", right: "Pointcut | None") -> "Pointcut | None":
    """And-combine two optional residue parts (None = trivially true)."""
    if left is None:
        return right
    if right is None:
        return left
    return And(left, right)


@dataclass(frozen=True)
class And(Pointcut):
    left: Pointcut
    right: Pointcut

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        return self.left.matches_shadow(cls, name, kind) and self.right.matches_shadow(
            cls, name, kind
        )

    def matches_dynamic(self, jp: JoinPoint) -> bool:
        return self.left.matches_dynamic(jp) and self.right.matches_dynamic(jp)

    def residue_free(self) -> bool:
        # A conjunction of trivially-true residues is trivially true.
        return self.left.residue_free() and self.right.residue_free()

    def residue_parts(self) -> tuple[Pointcut | None, Pointcut | None]:
        # A conjunction splits part-wise: the class-settled halves conjoin
        # (memoized per class) and only the genuinely-dynamic halves stay
        # on the per-call path.
        left_cls, left_call = self.left.residue_parts()
        right_cls, right_call = self.right.residue_parts()
        return (_conjoin(left_cls, right_cls), _conjoin(left_call, right_call))

    @cached_property
    def has_dynamic_test(self) -> bool:
        return self.left.has_dynamic_test or self.right.has_dynamic_test

    def cflow_inner_pointcuts(self) -> list[Pointcut]:
        return self.left.cflow_inner_pointcuts() + self.right.cflow_inner_pointcuts()

    def __repr__(self) -> str:
        return f"({self.left!r} && {self.right!r})"


@dataclass(frozen=True)
class Or(Pointcut):
    left: Pointcut
    right: Pointcut

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        return self.left.matches_shadow(cls, name, kind) or self.right.matches_shadow(
            cls, name, kind
        )

    def matches_dynamic(self, jp: JoinPoint) -> bool:
        # Dynamic truth requires the full predicate on this join point.
        left_ok = self.left.matches_shadow(
            jp.cls, jp.name, jp.kind
        ) and self.left.matches_dynamic(jp)
        if left_ok:
            return True
        return self.right.matches_shadow(
            jp.cls, jp.name, jp.kind
        ) and self.right.matches_dynamic(jp)

    @cached_property
    def has_dynamic_test(self) -> bool:
        return self.left.has_dynamic_test or self.right.has_dynamic_test

    def cflow_inner_pointcuts(self) -> list[Pointcut]:
        return self.left.cflow_inner_pointcuts() + self.right.cflow_inner_pointcuts()

    def __repr__(self) -> str:
        return f"({self.left!r} || {self.right!r})"


@dataclass(frozen=True)
class Not(Pointcut):
    inner: Pointcut

    def matches_shadow(self, cls: type, name: str, kind: JoinPointKind) -> bool:
        # Static negation is unsound to decide at the shadow level when the
        # inner pointcut has a runtime residue; keep the shadow and let the
        # dynamic test decide.
        if self.inner.has_dynamic_test:
            return True
        return not self.inner.matches_shadow(cls, name, kind)

    def matches_dynamic(self, jp: JoinPoint) -> bool:
        inner_matches = self.inner.matches_shadow(
            jp.cls, jp.name, jp.kind
        ) and self.inner.matches_dynamic(jp)
        return not inner_matches

    @cached_property
    def has_dynamic_test(self) -> bool:
        return self.inner.has_dynamic_test

    def cflow_inner_pointcuts(self) -> list[Pointcut]:
        return self.inner.cflow_inner_pointcuts()

    def __repr__(self) -> str:
        return f"!{self.inner!r}"
