"""Aspect definition: a class grouping advice, pointcuts and introductions.

An aspect is written as an ordinary class whose methods are marked with the
advice decorators::

    class Tracing(Aspect):
        order = 10

        @before("execution(Node.render)")
        def note(self, jp):
            print("rendering", jp.signature)

        @around("execution(*.as_html)")
        def time_it(self, jp):
            start = perf_counter()
            try:
                return jp.proceed()
            finally:
                record(perf_counter() - start)

Pointcuts may be textual (parsed with :func:`repro.aop.parser.parse_pointcut`)
or :class:`~repro.aop.pointcut.Pointcut` objects.  Deployment is the
weaver's job (:mod:`repro.aop.weaver`).
"""

from __future__ import annotations

from typing import Callable

from .advice import Advice, AdviceKind
from .errors import AopError
from .parser import parse_pointcut
from .pointcut import Pointcut

_ADVICE_ATTR = "__repro_advice__"


def _as_pointcut(pointcut: Pointcut | str, types: dict[str, type] | None) -> Pointcut:
    if isinstance(pointcut, Pointcut):
        return pointcut
    return parse_pointcut(pointcut, types)


def _advice_decorator(kind: AdviceKind):
    def decorator_factory(
        pointcut: Pointcut | str,
        *,
        order: int = 0,
        types: dict[str, type] | None = None,
    ):
        resolved = _as_pointcut(pointcut, types)

        def decorator(function: Callable) -> Callable:
            declared = getattr(function, _ADVICE_ATTR, [])
            declared.append(
                Advice(kind=kind, pointcut=resolved, function=function, order=order)
            )
            setattr(function, _ADVICE_ATTR, declared)
            return function

        return decorator

    return decorator_factory


#: ``@before(pointcut)`` — runs before the join point.
before = _advice_decorator(AdviceKind.BEFORE)
#: ``@after_returning(pointcut)`` — runs after normal completion
#: (``jp.result`` holds the return value).
after_returning = _advice_decorator(AdviceKind.AFTER_RETURNING)
#: ``@after_throwing(pointcut)`` — runs when the join point raises
#: (``jp.result`` holds the exception).
after_throwing = _advice_decorator(AdviceKind.AFTER_THROWING)
#: ``@after(pointcut)`` — runs on any completion (finally semantics).
after = _advice_decorator(AdviceKind.AFTER)
#: ``@around(pointcut)`` — replaces the join point; call ``jp.proceed()``.
around = _advice_decorator(AdviceKind.AROUND)


class Aspect:
    """Base class for aspects.

    Subclasses declare advice with the decorators above and optional
    inter-type *introductions* via :meth:`introductions`.  The class-level
    ``order`` sets precedence for all its advice (lower = outermost).
    """

    order: int = 0

    @classmethod
    def declared_advice(cls) -> list[Advice]:
        """All advice declared on this aspect class, in declaration order."""
        advice: list[Advice] = []
        seen: set[int] = set()
        for klass in reversed(cls.__mro__):
            for member in vars(klass).values():
                for item in getattr(member, _ADVICE_ATTR, ()):
                    if id(item) not in seen:
                        seen.add(id(item))
                        advice.append(item)
        return advice

    def advice(self) -> list[Advice]:
        """Declared advice bound to this instance, with aspect order applied."""
        bound = []
        for item in self.declared_advice():
            copy = item.bind(self)
            if copy.order == 0:
                copy.order = self.order
            bound.append(copy)
        return bound

    def introductions(self) -> list["Introduction"]:
        """Inter-type declarations; override to add members to targets."""
        return []

    def declarations(self) -> list["DeclareError"]:
        """Static policy declarations (AspectJ's ``declare error``).

        Each :class:`DeclareError` makes deployment fail when its pointcut
        matches any shadow in the targets — the aspect *forbids* code
        shapes instead of advising them.
        """
        return []

    def validate(self) -> None:
        """Sanity-check the aspect before deployment."""
        if (
            not self.declared_advice()
            and not self.introductions()
            and not self.declarations()
        ):
            raise AopError(
                f"aspect {type(self).__name__} declares no advice, no "
                "introductions and no declarations"
            )


class DeclareError:
    """``declare error: pointcut : "message"`` — a forbidden code shape.

    The weaver refuses deployment (raising :class:`WeavingError` with
    *message*) when the pointcut statically matches any shadow in the
    deployment targets.
    """

    def __init__(
        self,
        pointcut: Pointcut | str,
        message: str,
        *,
        types: dict[str, type] | None = None,
    ):
        self.pointcut = _as_pointcut(pointcut, types)
        self.message = message

    def __repr__(self) -> str:
        return f"declare_error({self.pointcut!r}, {self.message!r})"


def declare_error(
    pointcut: Pointcut | str, message: str, *, types: dict[str, type] | None = None
) -> DeclareError:
    """Convenience constructor for :class:`DeclareError`."""
    return DeclareError(pointcut, message, types=types)


# Imported at the bottom to avoid a cycle: introduce needs nothing from us,
# but aspect authors get Introduction through this module's namespace.
from .introduce import Introduction  # noqa: E402  (re-export for aspect authors)

__all__ = [
    "Aspect",
    "DeclareError",
    "Introduction",
    "after",
    "after_returning",
    "after_throwing",
    "around",
    "before",
    "declare_error",
]
