"""Aspect definition: a class grouping advice, pointcuts and introductions.

An aspect is written as an ordinary class whose methods are marked with the
advice decorators::

    class Tracing(Aspect):
        order = 10

        @before("execution(Node.render)")
        def note(self, jp):
            print("rendering", jp.signature)

        @around("execution(*.as_html)")
        def time_it(self, jp):
            start = perf_counter()
            try:
                return jp.proceed()
            finally:
                record(perf_counter() - start)

Pointcuts may be textual (parsed with :func:`repro.aop.parser.parse_pointcut`)
or :class:`~repro.aop.pointcut.Pointcut` objects.  Deployment is the
weaver's job (:mod:`repro.aop.weaver`).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from .advice import Advice, AdviceKind
from .errors import AopError
from .parser import parse_pointcut
from .pointcut import Pointcut

_ADVICE_ATTR = "__repro_advice__"


def _as_pointcut(pointcut: Pointcut | str, types: dict[str, type] | None) -> Pointcut:
    if isinstance(pointcut, Pointcut):
        return pointcut
    return parse_pointcut(pointcut, types)


def _advice_decorator(kind: AdviceKind):
    def decorator_factory(
        pointcut: Pointcut | str,
        *,
        order: int = 0,
        types: dict[str, type] | None = None,
    ):
        resolved = _as_pointcut(pointcut, types)

        def decorator(function: Callable) -> Callable:
            declared = getattr(function, _ADVICE_ATTR, [])
            declared.append(
                Advice(kind=kind, pointcut=resolved, function=function, order=order)
            )
            setattr(function, _ADVICE_ATTR, declared)
            return function

        return decorator

    return decorator_factory


#: ``@before(pointcut)`` — runs before the join point.
before = _advice_decorator(AdviceKind.BEFORE)
#: ``@after_returning(pointcut)`` — runs after normal completion
#: (``jp.result`` holds the return value).
after_returning = _advice_decorator(AdviceKind.AFTER_RETURNING)
#: ``@after_throwing(pointcut)`` — runs when the join point raises
#: (``jp.result`` holds the exception).
after_throwing = _advice_decorator(AdviceKind.AFTER_THROWING)
#: ``@after(pointcut)`` — runs on any completion (finally semantics).
after = _advice_decorator(AdviceKind.AFTER)
#: ``@around(pointcut)`` — replaces the join point; call ``jp.proceed()``.
around = _advice_decorator(AdviceKind.AROUND)


def generator(
    pointcut: Pointcut | str,
    *,
    order: int = 0,
    types: dict[str, type] | None = None,
):
    """``@generator(pointcut)`` — one generator body as the whole advice.

    The decorated function must be a generator function; it yields
    ``proceed`` / ``proceed(args...)`` / ``return_`` / ``return_(value)``
    (see :mod:`repro.aop.advice`) and may catch the original's exceptions
    across the yield.  Compiles to AROUND-kind advice, so it composes
    with split-kind advice under the usual precedence rules.
    """
    resolved = _as_pointcut(pointcut, types)

    def decorator(function: Callable) -> Callable:
        if not inspect.isgeneratorfunction(function):
            raise AopError(
                f"@generator advice {getattr(function, '__name__', function)!r} "
                "must be a generator function (it yields proceed / return_)"
            )
        declared = getattr(function, _ADVICE_ATTR, [])
        declared.append(
            Advice(
                kind=AdviceKind.AROUND,
                pointcut=resolved,
                function=function,
                order=order,
                generator=True,
            )
        )
        setattr(function, _ADVICE_ATTR, declared)
        return function

    return decorator


class Aspect:
    """Base class for aspects.

    Subclasses declare advice with the decorators above and optional
    inter-type *introductions* via :meth:`introductions`.  The class-level
    ``order`` sets precedence for all its advice (lower = outermost).

    Aspects can also be assembled without subclassing at all —
    :meth:`builder` returns a fluent :class:`AspectBuilder`::

        tracing = (
            Aspect.builder("Tracing", order=10)
            .before("execution(Node.render)", lambda jp: log(jp.signature))
            .around(execution("*.as_html"), time_it)
            .build()
        )
    """

    order: int = 0

    @classmethod
    def builder(
        cls,
        name: str = "FluentAspect",
        *,
        order: int = 0,
        types: dict[str, type] | None = None,
    ) -> "AspectBuilder":
        """A fluent, decorator-free way to assemble an aspect.

        *name* becomes the built aspect's class name (it shows up in
        weaver errors and introspection); *types* is the type environment
        for textual pointcuts, and *order* the default precedence for all
        the builder's advice.
        """
        return AspectBuilder(name, order=order, types=types)

    @classmethod
    def declared_advice(cls) -> list[Advice]:
        """All advice declared on this aspect class, in declaration order."""
        advice: list[Advice] = []
        seen: set[int] = set()
        for klass in reversed(cls.__mro__):
            for member in vars(klass).values():
                for item in getattr(member, _ADVICE_ATTR, ()):
                    if id(item) not in seen:
                        seen.add(id(item))
                        advice.append(item)
        return advice

    def advice(self) -> list[Advice]:
        """Declared advice bound to this instance, with aspect order applied."""
        bound = []
        for item in self.declared_advice():
            copy = item.bind(self)
            if copy.order == 0:
                copy.order = self.order
            bound.append(copy)
        return bound

    def introductions(self) -> list["Introduction"]:
        """Inter-type declarations; override to add members to targets."""
        return []

    def declarations(self) -> list["DeclareError"]:
        """Static policy declarations (AspectJ's ``declare error``).

        Each :class:`DeclareError` makes deployment fail when its pointcut
        matches any shadow in the targets — the aspect *forbids* code
        shapes instead of advising them.
        """
        return []

    def validate(self) -> None:
        """Sanity-check the aspect before deployment."""
        if (
            not self.declared_advice()
            and not self.introductions()
            and not self.declarations()
        ):
            raise AopError(
                f"aspect {type(self).__name__} declares no advice, no "
                "introductions and no declarations"
            )


class DeclareError:
    """``declare error: pointcut : "message"`` — a forbidden code shape.

    The weaver refuses deployment (raising :class:`WeavingError` with
    *message*) when the pointcut statically matches any shadow in the
    deployment targets.
    """

    def __init__(
        self,
        pointcut: Pointcut | str,
        message: str,
        *,
        types: dict[str, type] | None = None,
    ):
        self.pointcut = _as_pointcut(pointcut, types)
        self.message = message

    def __repr__(self) -> str:
        return f"declare_error({self.pointcut!r}, {self.message!r})"


def declare_error(
    pointcut: Pointcut | str, message: str, *, types: dict[str, type] | None = None
) -> DeclareError:
    """Convenience constructor for :class:`DeclareError`."""
    return DeclareError(pointcut, message, types=types)


class FluentAspect(Aspect):
    """An aspect assembled by :class:`AspectBuilder` (no subclass, no decorators).

    Advice functions registered through the builder take the join point
    alone (``lambda jp: ...``) — there is no aspect ``self`` to bind.
    :meth:`AspectBuilder.build` instantiates a dynamically-named subclass
    so weaver diagnostics read ``aspect Tracing matched nothing`` rather
    than ``aspect FluentAspect ...``.
    """

    def __init__(
        self,
        advice: list[Advice],
        introductions: list["Introduction"],
        declarations: list[DeclareError],
        order: int = 0,
    ):
        self.order = order
        self._advice = list(advice)
        self._introductions = list(introductions)
        self._declarations = list(declarations)

    def advice(self) -> list[Advice]:
        # The builder already resolved every advice's order (its own, or
        # the aspect default) at registration time — an explicit order=0
        # must stay 0, so no order remapping happens here.
        return [
            Advice(
                kind=item.kind,
                pointcut=item.pointcut,
                function=item.function,
                order=item.order,
                name=item.name,
                generator=item.generator,
            )
            for item in self._advice
        ]

    def introductions(self) -> list["Introduction"]:
        return list(self._introductions)

    def declarations(self) -> list[DeclareError]:
        return list(self._declarations)

    def validate(self) -> None:
        if not self._advice and not self._introductions and not self._declarations:
            raise AopError(
                f"aspect {type(self).__name__} declares no advice, no "
                "introductions and no declarations"
            )


class AspectBuilder:
    """Fluent construction of an aspect: advice, introductions, declarations.

    Every registration method returns the builder, so a whole aspect reads
    as one expression; :meth:`build` produces a ready-to-deploy
    :class:`Aspect` instance.  Pointcuts may be textual (parsed with the
    builder's type environment) or :class:`Pointcut` objects — including
    compositions via ``&``/``|``/``~``.
    """

    def __init__(
        self,
        name: str = "FluentAspect",
        *,
        order: int = 0,
        types: dict[str, type] | None = None,
    ):
        self._name = name
        self._order = order
        self._types = types
        self._advice: list[Advice] = []
        self._introductions: list[Introduction] = []
        self._declarations: list[DeclareError] = []

    def _add(
        self,
        kind: AdviceKind,
        pointcut: Pointcut | str,
        function: Callable,
        order: int | None,
    ) -> "AspectBuilder":
        self._advice.append(
            Advice(
                kind=kind,
                pointcut=_as_pointcut(pointcut, self._types),
                function=function,
                order=self._order if order is None else order,
            )
        )
        return self

    def before(
        self, pointcut: Pointcut | str, function: Callable, *, order: int | None = None
    ) -> "AspectBuilder":
        """Run *function(jp)* before matching join points."""
        return self._add(AdviceKind.BEFORE, pointcut, function, order)

    def after_returning(
        self, pointcut: Pointcut | str, function: Callable, *, order: int | None = None
    ) -> "AspectBuilder":
        """Run *function(jp)* after normal completion (``jp.result`` set)."""
        return self._add(AdviceKind.AFTER_RETURNING, pointcut, function, order)

    def after_throwing(
        self, pointcut: Pointcut | str, function: Callable, *, order: int | None = None
    ) -> "AspectBuilder":
        """Run *function(jp)* when the join point raises."""
        return self._add(AdviceKind.AFTER_THROWING, pointcut, function, order)

    def after(
        self, pointcut: Pointcut | str, function: Callable, *, order: int | None = None
    ) -> "AspectBuilder":
        """Run *function(jp)* on any completion (finally semantics)."""
        return self._add(AdviceKind.AFTER, pointcut, function, order)

    def around(
        self, pointcut: Pointcut | str, function: Callable, *, order: int | None = None
    ) -> "AspectBuilder":
        """Replace matching join points; *function* must call ``jp.proceed()``."""
        return self._add(AdviceKind.AROUND, pointcut, function, order)

    def generator(
        self, pointcut: Pointcut | str, function: Callable, *, order: int | None = None
    ) -> "AspectBuilder":
        """Register one generator body as the whole advice (see ``@generator``)."""
        if not inspect.isgeneratorfunction(function):
            raise AopError(
                f"generator advice {getattr(function, '__name__', function)!r} "
                "must be a generator function (it yields proceed / return_)"
            )
        self._advice.append(
            Advice(
                kind=AdviceKind.AROUND,
                pointcut=_as_pointcut(pointcut, self._types),
                function=function,
                order=self._order if order is None else order,
                generator=True,
            )
        )
        return self

    def introduce(
        self, class_pattern: str, name: str, member: Any, *, replace: bool = False
    ) -> "AspectBuilder":
        """Add an inter-type introduction (see :class:`Introduction`)."""
        self._introductions.append(Introduction(class_pattern, name, member, replace))
        return self

    def declare_error(self, pointcut: Pointcut | str, message: str) -> "AspectBuilder":
        """Forbid a code shape (see :class:`DeclareError`)."""
        self._declarations.append(DeclareError(pointcut, message, types=self._types))
        return self

    def build(self) -> Aspect:
        """The finished aspect, as an instance of a *name*-d subclass."""
        aspect_cls = type(self._name, (FluentAspect,), {})
        return aspect_cls(
            self._advice, self._introductions, self._declarations, self._order
        )


# Imported at the bottom to avoid a cycle: introduce needs nothing from us,
# but aspect authors get Introduction through this module's namespace.
from .introduce import Introduction  # noqa: E402  (re-export for aspect authors)

__all__ = [
    "Aspect",
    "AspectBuilder",
    "DeclareError",
    "FluentAspect",
    "Introduction",
    "after",
    "after_returning",
    "after_throwing",
    "around",
    "before",
    "declare_error",
    "generator",
]
