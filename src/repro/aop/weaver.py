"""Weaving mechanism: shadows, compiled chains, woven members.

This module is the *mechanism* layer of the weaver — everything a
deployment needs to rewrite classes reversibly:

- shadow scanning and the memoized :class:`ShadowIndex` (scans are
  validated against a process-wide token board, so one runtime's weave
  invalidates every other runtime's cached scan of the same class);
- compiled advice chains (:class:`CompiledChain`) and the per-shadow
  residue selector (:class:`_ChainSelector`);
- the woven-member bookkeeping (:class:`Deployment`, :class:`_WovenMember`)
  and the wrapper/descriptor factories that pick a dispatch tier.

The *policy* layer — scoped :class:`~repro.aop.runtime.WeaverRuntime`
instances, transactional :class:`~repro.aop.runtime.DeploymentSet` batches
and introspection — lives in :mod:`repro.aop.runtime`; the deprecated
process-global API (``Weaver``, ``deploy``/``deploy_all``/``undeploy``,
``deployed``) lives in :mod:`repro.aop.legacy`.

The hot path is *code-generated at deployment time*: each woven method
shadow gets a specialized closure (see :mod:`repro.aop.codegen`) that
inlines its exact advice sequence over a pooled, lazily-constructed
:class:`~repro.aop.joinpoint.JoinPoint`; shadows whose advice is fully
static — no ``cflow``, ``target`` or ``args`` residue, and no cflow entry
tracking needed — skip the join point stack, per-call pointcut
re-evaluation *and* join point allocation entirely.  Setting
``REPRO_AOP_CODEGEN=0`` falls back to the generic :class:`CompiledChain`
wrappers (advice partitioned by kind once, around-nesting precomputed).
"""

from __future__ import annotations

import functools
import itertools
import weakref
from dataclasses import dataclass, field
from types import FunctionType, ModuleType
from typing import Any, Callable, Iterable

from . import codegen
from .advice import Advice, AdviceKind
from .aspect import Aspect
from .errors import WeavingError
from .introduce import AppliedIntroduction
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    JoinPointPool,
    ProceedingJoinPoint,
    pop_frame,
    push_frame,
)

_MISSING = object()


# -- compiled advice chains ---------------------------------------------------


class CompiledChain:
    """An advice chain partitioned by kind once, executed many times.

    The legacy :func:`run_advice_chain` re-partitioned the advice list into
    before/around/after buckets on *every* invocation; a compiled chain does
    that once (at deployment time) and stores each bucket pre-ordered, so
    calling it only pays for the around-closure nesting and the advice
    bodies themselves.

    Semantics are identical to the per-call path: before advice runs
    outermost-first, after advice innermost-first (reversed), around advice
    nests outermost wrapping the rest, and the exception path runs
    after-throwing then after (finally) before re-raising.
    """

    __slots__ = (
        "advice",
        "_befores",
        "_arounds_rev",
        "_returnings_rev",
        "_throwings_rev",
        "_finallys_rev",
    )

    def __init__(self, advice: Iterable[Advice]):
        self.advice: tuple[Advice, ...] = tuple(advice)
        self._befores = tuple(a for a in self.advice if a.kind is AdviceKind.BEFORE)
        # Arounds are applied innermost-first when building the nesting, and
        # the three after-flavours run innermost-first: store them reversed.
        self._arounds_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AROUND])
        )
        self._returnings_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AFTER_RETURNING])
        )
        self._throwings_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AFTER_THROWING])
        )
        self._finallys_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AFTER])
        )

    def __call__(self, jp: JoinPoint, proceed: Callable[..., Any]) -> Any:
        chain = proceed
        for around_advice in self._arounds_rev:
            chain = _wrap_around(around_advice, jp, chain)

        for item in self._befores:
            item.invoke(jp)
        try:
            result = chain(*jp.args, **jp.kwargs)
        except Exception as exc:
            jp.result = exc
            for item in self._throwings_rev:
                item.invoke(jp)
            for item in self._finallys_rev:
                item.invoke(jp)
            raise
        jp.result = result
        for item in self._returnings_rev:
            item.invoke(jp)
        for item in self._finallys_rev:
            item.invoke(jp)
        return result


def run_advice_chain(
    advice: list[Advice], jp: JoinPoint, proceed: Callable[..., Any]
) -> Any:
    """Execute *advice* around *proceed* with AspectJ ordering semantics.

    Advice is assumed pre-sorted by precedence (lower ``order`` first =
    outermost).  This is the legacy one-shot entry point; it compiles a
    throwaway :class:`CompiledChain` per call.  Woven shadows use a chain
    compiled once at deployment time instead.
    """
    return CompiledChain(advice)(jp, proceed)


def _wrap_around(advice: Advice, jp: JoinPoint, inner: Callable[..., Any]):
    def runner(*args: Any, **kwargs: Any) -> Any:
        # The caller (the chain entry or an outer proceed()) has already
        # resolved the intended arguments — possibly an intentionally empty
        # tuple/dict — so they are taken verbatim.  The old ``args or
        # jp.args`` fallback silently replayed the original arguments
        # whenever an outer advice proceeded with falsy ones.
        pjp = ProceedingJoinPoint.for_chain(jp, inner, args, kwargs)
        return advice.invoke(pjp)

    return runner


class _ChainSelector:
    """Per-call residue filtering over pointcut-level memoized mask indices.

    Each advice's residue decomposes (:meth:`Pointcut.residue_parts`) into
    a *class-settled* part — depending only on the join point's runtime
    class, so its verdict is computed **once per (pointcut, class)** and
    cached as a bitmask — and a genuinely *per-call* part (``cflow``,
    ``target``, ``args`` tests).  A call pays only for the per-call tests
    of advice its class mask still admits.  The surviving subset is
    usually one of a handful of combinations, so the compiled chain for
    each subset (keyed by the advice bitmask) is built once and reused.

    The class-mask cache is weak-keyed (like :class:`ShadowIndex`): a
    long-lived deployment advising a base class must not pin every
    ephemeral subclass whose instances pass through the shadow.
    """

    __slots__ = (
        "advice",
        "has_dynamic",
        "full_chain",
        "_chains",
        "_full_mask",
        "_class_tests",
        "_call_tests",
        "_class_masks",
    )

    def __init__(self, advice: Iterable[Advice]):
        self.advice: tuple[Advice, ...] = tuple(advice)
        self.full_chain = CompiledChain(self.advice)
        self._full_mask = (1 << len(self.advice)) - 1
        self._chains: dict[int, CompiledChain] = {self._full_mask: self.full_chain}
        self._class_tests: list[tuple[int, Any]] = []
        self._call_tests: list[tuple[int, Any]] = []
        for index, item in enumerate(self.advice):
            class_part, call_part = item.residue_parts()
            if class_part is not None:
                self._class_tests.append((1 << index, class_part))
            if call_part is not None:
                self._call_tests.append((1 << index, call_part))
        self.has_dynamic = bool(self._class_tests or self._call_tests)
        self._class_masks: "weakref.WeakKeyDictionary[type, int]" = (
            weakref.WeakKeyDictionary()
        )

    def class_mask(self, jp: JoinPoint) -> int:
        """Admissible-advice bits for *jp*'s runtime class (memoized)."""
        mask = self._class_masks.get(jp.cls)
        if mask is None:
            mask = self._full_mask
            for bit, pointcut in self._class_tests:
                if not pointcut.matches_dynamic(jp):
                    mask &= ~bit
            self._class_masks[jp.cls] = mask
        return mask

    def select(self, jp: JoinPoint) -> CompiledChain | None:
        """The compiled chain for the advice matching *jp*, or None."""
        if not self.has_dynamic:
            # Static advice on a frame-tracked shadow: everything applies.
            return self.full_chain if self.advice else None
        mask = self.class_mask(jp) if self._class_tests else self._full_mask
        for bit, pointcut in self._call_tests:
            if mask & bit and not pointcut.matches_dynamic(jp):
                mask &= ~bit
        if not mask:
            return None
        chain = self._chains.get(mask)
        if chain is None:
            chain = self._chains[mask] = CompiledChain(
                item for index, item in enumerate(self.advice) if mask >> index & 1
            )
        return chain


# -- shadows -----------------------------------------------------------------


@dataclass(frozen=True)
class MethodShadow:
    """A method the weaver may wrap: where it is reachable and its code."""

    cls: type
    name: str
    original: Callable
    #: True when the method is inherited (the wrapper becomes an override).
    inherited: bool


def _scan_method_shadows(cls: type) -> tuple[MethodShadow, ...]:
    """One vectorized pass over the MRO's ``__dict__``s.

    The seed scan ran ``dir()`` + ``inspect.getattr_static`` once *per
    member name*, re-walking the MRO for every name.  A single pass over
    each class dict in MRO order (most-derived first, first definition
    wins) visits every member exactly once and needs no per-name MRO
    search; names are sorted afterwards to preserve the ``dir()``-order
    contract of the old scan.  Members reachable only through the
    metaclass are not scanned (they never were join point shadows in
    practice — accessing them through an instance fails anyway).
    """
    found: dict[str, Any] = {}
    for klass in cls.__mro__:
        for name, member in klass.__dict__.items():
            if name.startswith("__") or name in found:
                continue
            found[name] = member
    own = cls.__dict__
    return tuple(
        MethodShadow(cls=cls, name=name, original=member, inherited=name not in own)
        for name, member in sorted(found.items())
        if isinstance(member, FunctionType)
    )


@dataclass(frozen=True)
class ModuleShadow:
    """A module-level function the weaver may wrap.

    The structural twin of :class:`MethodShadow` for module globals:
    ``module`` owns the ``name`` binding, ``original`` is the function the
    weave replaces (and undeploy restores).  ``cls`` aliases the module
    object so every container-agnostic consumer — :class:`_WovenMember`,
    deployment planning, ``woven_sites()`` — reads one field name for
    "the thing holding the member"; a module's ``__name__`` is its dotted
    path, which makes the derived signatures read
    ``package.module.function``.  Module bindings are never inherited.
    """

    module: ModuleType
    name: str
    original: Callable

    #: Module globals have no MRO to inherit through.
    inherited: bool = False

    @property
    def cls(self) -> ModuleType:
        return self.module


def _scan_module_shadows(module: ModuleType) -> tuple[ModuleShadow, ...]:
    """Weavable function shadows of one module, sorted by name.

    Only plain functions *defined by* the module are shadows: imported
    functions (``from os.path import join``) belong to their defining
    module and would be woven there, and underscore-prefixed names are
    private by convention, matching the method scan's dunder skip.  The
    ``__module__`` test stays true across re-weaves — wrapper factories
    copy the original's metadata via ``functools.update_wrapper``.
    """
    return tuple(
        ModuleShadow(module=module, name=name, original=member)
        for name, member in sorted(module.__dict__.items())
        if isinstance(member, FunctionType)
        and not name.startswith("_")
        and getattr(member, "__module__", None) == module.__name__
    )


class _TokenBoard:
    """Process-wide per-class invalidation stamps shared by every runtime.

    Scan *caches* are per-:class:`ShadowIndex` (each
    :class:`~repro.aop.runtime.WeaverRuntime` owns one), but class
    *mutation* is process-global: when runtime A rewrites a member of a
    class, runtime B's cached scan of it is stale.  The board is the
    cross-runtime signal — every invalidation stamps the class (and its
    live subclasses) with a fresh monotonic token, and every index
    validates its cached entries against the board at lookup time.  The
    counter is never reset: a re-used stamp could make an outstanding
    deployment's pre-weave snapshot look restorable when it is not.
    """

    __slots__ = ("_tokens", "_counter")

    def __init__(self) -> None:
        self._tokens: "weakref.WeakKeyDictionary[type, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._counter = 0

    @property
    def counter(self) -> int:
        """The monotonic stamp counter (the board-wide invalidation clock).

        Every :meth:`bump` advances it, so reading it cheaply answers "has
        *any* class been invalidated since I last looked?" — the signal
        the serving layer's weave epochs derive from: a cached artifact
        recorded under an older counter value may describe classes a
        weaver has since rewritten.
        """
        return self._counter

    def token(self, cls: type) -> int:
        """The stamp of the last invalidation that hit *cls* (0 = never)."""
        return self._tokens.get(cls, 0)

    def bump(self, cls: type) -> int:
        """Stamp *cls* and every (live) subclass with a fresh token.

        Walks ``__subclasses__`` transitively rather than any cache's keys:
        a subclass nobody has scanned yet must still get a fresh token, or
        a deployment's pre-weave snapshot of it could later be "restored"
        over a base-class weave it never saw.  Returns *cls*'s new token.
        """
        self._counter += 1
        stamp = self._counter
        seen: set[type] = set()
        stack = [cls]
        while stack:
            klass = stack.pop()
            if klass in seen:
                continue
            seen.add(klass)
            self._tokens[klass] = stamp
            # Module targets share the board but have no subclass fan-out.
            if isinstance(klass, type):
                stack.extend(klass.__subclasses__())
        return stamp

    def restore(self, cls: type, token: int) -> None:
        """Reinstate an earlier stamp after an exact byte-for-byte revert."""
        self._tokens[cls] = token

    def clear(self) -> None:
        """Forget every stamp (the counter keeps running; see class docs).

        Outstanding deployments' snapshots become ineligible for restore —
        their woven token (>= 1) can no longer match the board — so
        undeploys after a clear degrade to honest rescans, which is the
        point of clearing after external class mutation.
        """
        self._tokens.clear()


#: The process-wide invalidation board every :class:`ShadowIndex` validates
#: its cached scans against (class mutation by one runtime must invalidate
#: scans another runtime would otherwise reuse).
_token_board = _TokenBoard()


class ShadowIndex:
    """Memoized shadow scans, invalidated when a weaver rewrites members.

    Scanning is the dominant cost of deployment planning, and a single
    deploy used to rescan each target up to three times (declare-error
    check, advice matching, cflow entry instrumentation).  The index
    computes each class's shadows once and records the class's
    :class:`_TokenBoard` stamp alongside; a cached entry is served only
    while its stamp still matches the board, so a weave by *any* runtime —
    this one or another — forces an honest rescan here.

    Classes mutated *outside* any weaver between two deployments are the
    caller's responsibility: pass them through :meth:`invalidate` (or
    :meth:`clear`) before redeploying.
    """

    def __init__(self) -> None:
        self._cache: (
            "weakref.WeakKeyDictionary[type, tuple[int, tuple[MethodShadow, ...]]]"
        ) = weakref.WeakKeyDictionary()

    def shadows(self, cls: "type | ModuleType") -> tuple[Any, ...]:
        """Cached shadows of a class *or module* target.

        Modules ride the same machinery — they are hashable and weakly
        referenceable, so the cache and token board need no special
        casing; only the scan itself dispatches on the target kind.
        """
        token = _token_board.token(cls)
        entry = self._cache.get(cls)
        if entry is not None and entry[0] == token:
            return entry[1]
        if isinstance(cls, type):
            scan: tuple[Any, ...] = _scan_method_shadows(cls)
        else:
            scan = _scan_module_shadows(cls)
        self._cache[cls] = (token, scan)
        return scan

    def token(self, cls: type) -> int:
        """Opaque stamp of the last invalidation that hit *cls* (0 = never)."""
        return _token_board.token(cls)

    def invalidate(self, cls: type) -> int:
        """Stamp *cls* and every (live) subclass stale, process-wide.

        Every runtime's cached scans of the stamped classes self-invalidate
        at their next lookup.  Returns the new invalidation token for
        *cls*.
        """
        self._cache.pop(cls, None)
        return _token_board.bump(cls)

    def prime(self, cls: type, shadows: tuple[MethodShadow, ...]) -> None:
        """Install a scan known to equal what a fresh rescan would produce.

        The batch planner derives each class's post-weave scan from the
        pre-weave one plus the members it just installed (a pure in-memory
        update), so the scan walk can be skipped.  The caller vouches for
        exactness; the entry is recorded under the class's current board
        stamp (as left by the preceding :meth:`invalidate`).
        """
        self._cache[cls] = (_token_board.token(cls), shadows)

    def restore_after_revert(
        self,
        cls: type,
        shadows: tuple[MethodShadow, ...],
        *,
        woven_token: int,
        pre_token: int,
    ) -> None:
        """Reinstate a pre-weave snapshot after an exact undeploy.

        Undeploy restores the class byte-for-byte, so the scan captured
        before the deployment is valid again — *unless* someone else
        (another deployment, any runtime) invalidated the class in between
        (the board stamp would differ from the one this deployment stamped
        at weave time), in which case this degrades to a plain
        invalidation and the next deploy rescans.  Restoring the
        *pre-weave* stamp also revalidates other runtimes' scans taken
        before this deployment wove — the class bytes they describe are
        back.
        """
        eligible = _token_board.token(cls) == woven_token
        _token_board.bump(cls)  # subclass entries are stale everywhere
        if eligible:
            _token_board.restore(cls, pre_token)
            self._cache[cls] = (pre_token, shadows)
        else:
            self._cache.pop(cls, None)

    def clear(self) -> None:
        """Drop this index's scans *and* every board stamp.

        Clearing stamps makes every outstanding deployment's snapshot
        ineligible for restore (its woven token can no longer match), so
        undeploys after a clear degrade to honest rescans — which is the
        point of clearing after external class mutation.
        """
        self._cache.clear()
        _token_board.clear()


#: The default runtime's shadow index.  Every legacy ``Weaver()`` plans
#: through this one (the seed had a single process-wide index); scoped
#: :class:`~repro.aop.runtime.WeaverRuntime` instances own their own.
shadow_index = ShadowIndex()


class _BatchScans:
    """One real shadow scan per class for a whole batch deployment.

    Sequential deploys invalidate every class they touch, so aspect *i + 1*
    used to rescan the classes aspect *i* wove even though the only change
    is the wrappers the weaver itself just installed.  This view scans each
    class once (through the owning runtime's :class:`ShadowIndex`) and
    thereafter *derives* the post-weave scan in memory: a woven member
    replaces its entry (the wrapper becomes the shadow, no longer
    inherited), a field descriptor drops any function entry of that name,
    and everything else is untouched.  Derived scans are primed back into
    the index, so nested installs across the batch — and the first scan
    after it — stay rescan-free, making batch deployment
    O(classes × members) in scan work regardless of the number of aspects.

    Introductions fall back to honest rescans (they add members the
    derivation does not model), as do subclasses of a touched class (their
    inherited entries change underneath them).
    """

    __slots__ = ("_index", "_scans")

    def __init__(self, index: ShadowIndex) -> None:
        self._index = index
        self._scans: dict[type, tuple[MethodShadow, ...]] = {}

    def shadows(self, cls: type) -> tuple[MethodShadow, ...]:
        scan = self._scans.get(cls)
        if scan is None:
            scan = self._scans[cls] = self._index.shadows(cls)
        return scan

    def _drop(self, cls: type, *, and_self: bool) -> None:
        # Module targets have no subclasses: only the exact entry can drop.
        if not isinstance(cls, type):
            if and_self:
                self._scans.pop(cls, None)
            return
        for cached in [
            k
            for k in self._scans
            if (and_self or k is not cls)
            and isinstance(k, type)
            and issubclass(k, cls)
        ]:
            del self._scans[cached]

    def note_introduction(self, cls: type) -> None:
        """An introduction mutated *cls*: rescan it (and subclasses)."""
        self._drop(cls, and_self=True)

    def apply_installs(self, cls: type, installed: dict[str, Any]) -> None:
        """Derive *cls*'s post-weave scan and prime the shared index.

        Called after the weaver invalidated *cls* for this deployment, so
        the primed entry carries the fresh woven token.
        """
        self._drop(cls, and_self=False)
        old = self._scans.get(cls)
        if old is None:
            return  # never scanned this batch (or introduction-reset)
        is_module = not isinstance(cls, type)
        derived: list[Any] = []
        for entry in old:
            wrapper = installed.get(entry.name, _MISSING)
            if wrapper is _MISSING:
                derived.append(entry)
            elif isinstance(wrapper, FunctionType):
                if is_module:
                    derived.append(
                        ModuleShadow(module=cls, name=entry.name, original=wrapper)
                    )
                else:
                    derived.append(
                        MethodShadow(
                            cls=cls, name=entry.name, original=wrapper, inherited=False
                        )
                    )
            # else: a data descriptor displaced the function — rescans
            # would not report it, so neither does the derived scan.
        scan = tuple(derived)
        self._scans[cls] = scan
        self._index.prime(cls, scan)


def method_shadows(cls: type) -> list[MethodShadow]:
    """All weavable method shadows of *cls* (plain functions, no dunders).

    Memoized through the default runtime's :data:`shadow_index`; weavers
    invalidate entries whenever they install or revert members.
    """
    return list(shadow_index.shadows(cls))


def module_shadows(module: ModuleType) -> list[ModuleShadow]:
    """All weavable function shadows of *module* (see the scan's rules).

    Memoized through the default runtime's :data:`shadow_index`, exactly
    like :func:`method_shadows`.
    """
    return list(shadow_index.shadows(module))


class _WatcherCount:
    """Mutable live count of cflow-watching deployments.

    A one-slot object rather than a module global so that code-generated
    wrappers (whose globals are their own exec namespace, not this
    module's) can bind it as a free variable and still observe updates —
    rebinding a module-level int would leave them reading a stale value.

    Cflow deployments raise/lower the count through :meth:`watch` /
    :meth:`unwatch`, which also flip every registered scope-marker class
    default between ``None`` and :data:`codegen.WATCHED` on 0↔1
    transitions — that flip is what lets marker-dispatched scoped
    wrappers route unscoped receivers with a single attribute load while
    staying frame-correct under cflow observation.
    """

    __slots__ = ("count", "_listeners")

    def __init__(self) -> None:
        self.count = 0
        #: Callbacks fired on 0↔1 transitions — the monitor tier re-arms
        #: its per-code PY_RETURN events here (see MonitorBridge._arm).
        self._listeners: list = []

    def subscribe(self, callback) -> None:
        self._listeners.append(callback)

    def unsubscribe(self, callback) -> None:
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def _notify(self) -> None:
        _marker_defaults.refresh(self)
        for callback in list(self._listeners):
            callback()

    def watch(self) -> None:
        """A cflow-carrying deployment went live."""
        self.count += 1
        if self.count == 1:
            self._notify()

    def unwatch(self) -> None:
        """A cflow-carrying deployment unwound."""
        self.count -= 1
        if self.count == 0:
            self._notify()


class _MarkerDefaults:
    """Process-wide registry of scope-marker class defaults.

    A marker-dispatched scoped wrapper reads ``self.<marker>`` once per
    call; the *class-level* default it falls back to for unscoped
    receivers is owned here, not by any deployment: ``None`` while no
    registered watcher count is live (fast passthrough) and
    :data:`codegen.WATCHED` while one is (frames must be pushed, so the
    wrapper takes its slow path).  Sites are refcounted per
    ``(class, attr)`` — several deployments (even across runtimes) may
    dispatch through one scope's marker — and the default is recomputed
    over *every* watcher object registered on the site, so a runtime
    sharing a scope with a cflow-watching runtime degrades to the slow
    (correct) path rather than skipping frames.  Classes are held weakly.
    """

    def __init__(self) -> None:
        self._by_class: (
            "weakref.WeakKeyDictionary[type, dict[str, list]]"
        ) = weakref.WeakKeyDictionary()

    def _value(self, watcher_set: set) -> Any:
        return codegen.WATCHED if any(w.count for w in watcher_set) else None

    def register(self, cls: type, attr: str, watchers: _WatcherCount) -> None:
        """One more deployment dispatches through ``cls.<attr>``."""
        sites = self._by_class.setdefault(cls, {})
        entry = sites.get(attr)
        if entry is None:
            entry = sites[attr] = [0, set()]
        entry[0] += 1
        entry[1].add(watchers)
        setattr(cls, attr, self._value(entry[1]))

    def unregister(self, cls: type, attr: str) -> None:
        """A dispatching deployment unwound; drop the default at zero."""
        sites = self._by_class.get(cls)
        if sites is None:
            return
        entry = sites.get(attr)
        if entry is None:
            return
        entry[0] -= 1
        if entry[0] <= 0:
            del sites[attr]
            try:
                delattr(cls, attr)
            except AttributeError:
                pass

    def refresh(self, watchers: _WatcherCount) -> None:
        """A watcher transition: recompute the sites *watchers* is on."""
        for cls, sites in list(self._by_class.items()):
            for attr, (_, watcher_set) in list(sites.items()):
                if watchers in watcher_set:
                    setattr(cls, attr, self._value(watcher_set))


#: The marker-default board (see :class:`_MarkerDefaults`).
_marker_defaults = _MarkerDefaults()


#: The default runtime's cflow-watcher count: active deployments — across
#: every legacy ``Weaver`` — whose advice carries a ``cflow()`` /
#: ``cflowbelow()`` residue.  The seed weaver pushed a join point frame on
#: *every* woven shadow, which is what made cflow residues from one
#: deployment observe shadows woven by another.  Static fast-path wrappers
#: preserve that: they check this counter per call (one attribute read) and
#: push frames whenever any cflow watcher is live anywhere in their
#: runtime, and skip the stack bookkeeping only when no residue could
#: possibly observe it.  Scoped runtimes own their own count — that is the
#: isolation the runtime API promises.
_cflow_watchers = _WatcherCount()


# -- instance scopes ----------------------------------------------------------


class InstanceScope:
    """A weakref-keyed set of instances one deployment's advice covers.

    Weaving rewrites *classes*; an instance scope narrows a deployment so
    its advice fires only for calls whose receiver is a member of the
    scope — every other instance falls straight through to the member the
    class had before this deployment wove (a near-plain fast path).  The
    scope never pins its members: each is held by a weakref whose callback
    drops the entry, so an instance that dies simply leaves the scope.

    Dispatch membership is tested one of two ways:

    - **marker dispatch** (the codegen tier, when every member has a
      ``__dict__``): the scope owns a unique marker attribute name; the
      deployment registers a class default for it (on the
      :class:`_MarkerDefaults` board, which flips it with cflow-watcher
      state) and stamps each member instance with an instance-dict
      entry, so the generated wrapper's test is a single attribute load.
      Markers exist only while marker-dispatched deployments are live
      (acquire/release below) and die with the deployment — or with the
      instance.  The stamp *is* the dispatch: copying a member instance
      copies its ``__dict__`` stamp, so the copy is advised until
      :meth:`discard` strips it (or :meth:`add` adopts it).
    - **id dispatch** (the generic tier, ``__slots__`` members,
      unrenderable signatures): ``id(obj)`` membership in a live set the
      weakref callbacks keep honest.

    Scopes are mutable (``add``/``discard``) and shared freely across
    deployments — a :class:`~repro.aop.runtime.DeploymentSet` partial
    undeploy re-weaves survivors with their original scope objects, so
    membership survives the re-weave untouched.
    """

    _counter = itertools.count(1)

    __slots__ = ("attr", "markable", "_ids", "_refs", "_pinned", "_marker_users")

    def __init__(self, instances: Iterable[Any] = ()) -> None:
        #: The marker attribute name (unique per scope, never reused).
        self.attr = f"_aop_scope_{next(InstanceScope._counter)}"
        #: Whether every member can carry the instance marker.
        self.markable = True
        self._ids: set[int] = set()
        self._refs: dict[int, weakref.ref] = {}
        #: Members that cannot be weakly referenced (``__slots__`` without
        #: ``__weakref__``): pinned strongly until discarded.
        self._pinned: dict[int, Any] = {}
        self._marker_users = 0
        for obj in instances:
            self.add(obj)

    @classmethod
    def resolve(
        cls, instances: "Iterable[Any] | InstanceScope | None"
    ) -> "InstanceScope | None":
        """Coerce a deploy-time ``instances=`` argument to a scope (or None)."""
        if instances is None:
            return None
        if isinstance(instances, InstanceScope):
            return instances
        return cls(instances)

    def __repr__(self) -> str:
        return f"<InstanceScope {self.attr} ({len(self._ids)} instances)>"

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, obj: Any) -> bool:
        return id(obj) in self._ids

    @property
    def ids(self) -> set[int]:
        """The live member-id set (the object id-dispatch wrappers gate on)."""
        return self._ids

    def instances(self) -> list[Any]:
        """The scope's live members (weakrefs dereferenced)."""
        return self._live_members()

    def add(self, obj: Any) -> None:
        """Admit *obj* to the scope (idempotent, effective immediately)."""
        oid = id(obj)
        if oid in self._ids:
            return
        if not hasattr(obj, "__dict__"):
            if self._marker_users:
                raise WeavingError(
                    f"cannot add a {type(obj).__name__!r} instance (no "
                    "__dict__) to a marker-dispatched scope; undeploy and "
                    "redeploy to switch the scope to id dispatch"
                )
            self.markable = False
        ids, refs = self._ids, self._refs

        def _drop(_ref: weakref.ref, oid: int = oid) -> None:
            ids.discard(oid)
            refs.pop(oid, None)

        try:
            refs[oid] = weakref.ref(obj, _drop)
        except TypeError:
            # No __weakref__ slot: pin strongly (id reuse after an
            # untracked death would otherwise scope a stranger).
            self._pinned[oid] = obj
        ids.add(oid)
        if self._marker_users and self.markable:
            setattr(obj, self.attr, self)

    def discard(self, obj: Any) -> None:
        """Remove *obj* from the scope (idempotent, effective immediately).

        Also strips a stray marker stamp from a non-member: copying a
        member instance copies its ``__dict__`` — stamp included — so the
        copy is advised by marker dispatch until it is discarded here (or
        adopted with :meth:`add`).
        """
        oid = id(obj)
        self._ids.discard(oid)
        self._refs.pop(oid, None)
        self._pinned.pop(oid, None)
        if self.markable:
            try:
                delattr(obj, self.attr)
            except AttributeError:
                pass

    # -- marker lifecycle (driven by deploy/undeploy) --------------------------

    def _live_members(self) -> list[Any]:
        """Every current member object: dereferenced weakrefs plus pinned."""
        alive = []
        for ref in list(self._refs.values()):
            obj = ref()
            if obj is not None:
                alive.append(obj)
        alive.extend(list(self._pinned.values()))
        return alive

    def _acquire_markers(self) -> None:
        """A marker-dispatched deployment went live: stamp every member."""
        self._marker_users += 1
        if self._marker_users == 1:
            for obj in self._live_members():
                setattr(obj, self.attr, self)

    def _release_markers(self) -> None:
        """A marker-dispatched deployment unwound; unstamp at zero users."""
        self._marker_users -= 1
        if self._marker_users == 0:
            for obj in self._live_members():
                try:
                    delattr(obj, self.attr)
                except AttributeError:
                    pass


class _WovenField:
    """A data descriptor turning attribute access into field join points.

    Get/set advice chains are compiled once at construction.  When every
    advice is static and no cflow watcher is live in the owning runtime
    (checked per access), access skips the join point stack and residue
    filtering entirely, and runs the chain over a pooled join point (the
    dynamic path keeps plain allocation: its frames may outlive the access
    inside captured stack tuples).  Fully-static fields normally deploy as
    a code-generated subclass (see :func:`codegen.generate_field_descriptor`)
    whose accessors inline the chain; this class is the
    ``REPRO_AOP_CODEGEN=0`` escape hatch and the dynamic-path fallback.
    """

    def __init__(
        self,
        name: str,
        get_advice: list[Advice],
        set_advice: list[Advice],
        class_default: Any = _MISSING,
        watchers: _WatcherCount | None = None,
        scope: InstanceScope | None = None,
    ):
        self._name = name
        self._get_advice = get_advice
        self._set_advice = set_advice
        self._class_default = class_default
        self._watchers = watchers if watchers is not None else _cflow_watchers
        self._scope = scope
        self._get_selector = _ChainSelector(get_advice)
        self._set_selector = _ChainSelector(set_advice)
        self._get_static = not self._get_selector.has_dynamic
        self._set_static = not self._set_selector.has_dynamic
        self._make_pools()

    def _make_pools(self) -> None:
        self._get_pool = JoinPointPool(JoinPointKind.FIELD_GET, self._name)
        self._set_pool = JoinPointPool(JoinPointKind.FIELD_SET, self._name)

    def __set_name__(self, owner: type, name: str) -> None:
        self._name = name
        self._make_pools()

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self

        def read(*_args: Any, **_kwargs: Any) -> Any:
            if self._name in obj.__dict__:
                return obj.__dict__[self._name]
            if self._class_default is not _MISSING:
                return self._class_default
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute {self._name!r}"
            )

        if self._scope is not None and id(obj) not in self._scope.ids:
            if not self._watchers.count:
                return read()
            jp = JoinPoint(JoinPointKind.FIELD_GET, obj, type(obj), self._name)
            token = push_frame(jp)
            try:
                return read()
            finally:
                pop_frame(token)

        if self._get_static and not self._watchers.count:
            if not self._get_advice:
                return read()
            jp = self._get_pool.acquire(obj, (), {})
            try:
                return self._get_selector.full_chain(jp, read)
            finally:
                self._get_pool.release(jp)

        jp = JoinPoint(JoinPointKind.FIELD_GET, obj, type(obj), self._name)
        token = push_frame(jp)
        try:
            chain = self._get_selector.select(jp)
            if chain is None:
                return read()
            return chain(jp, read)
        finally:
            pop_frame(token)

    def __set__(self, obj: Any, value: Any) -> None:
        def write(new_value: Any = value) -> None:
            obj.__dict__[self._name] = new_value

        if self._scope is not None and id(obj) not in self._scope.ids:
            if not self._watchers.count:
                write()
                return
            jp = JoinPoint(
                JoinPointKind.FIELD_SET,
                obj,
                type(obj),
                self._name,
                args=(value,),
                value=value,
            )
            token = push_frame(jp)
            try:
                write()
                return
            finally:
                pop_frame(token)

        if self._set_static and not self._watchers.count:
            if not self._set_advice:
                write()
                return
            jp = self._set_pool.acquire(obj, (value,), {})
            jp.value = value
            try:
                self._set_selector.full_chain(jp, write)
            finally:
                self._set_pool.release(jp)
            return

        jp = JoinPoint(
            JoinPointKind.FIELD_SET,
            obj,
            type(obj),
            self._name,
            args=(value,),
            value=value,
        )
        token = push_frame(jp)
        try:
            chain = self._set_selector.select(jp)
            if chain is None:
                write()
                return
            chain(jp, write)
        finally:
            pop_frame(token)


# -- deployments --------------------------------------------------------------


@dataclass
class _WovenMember:
    cls: type
    name: str
    installed: Any
    previous: Any  # _MISSING when the name was inherited (no own entry)

    def revert(self) -> None:
        current = self.cls.__dict__.get(self.name, _MISSING)
        if current is not self.installed:
            raise WeavingError(
                f"cannot undeploy: {self.cls.__name__}.{self.name} was re-woven "
                "or replaced after this deployment (undeploy in LIFO order)"
            )
        if self.previous is _MISSING:
            delattr(self.cls, self.name)
        else:
            setattr(self.cls, self.name, self.previous)


@dataclass(eq=False)
class Deployment:
    """A reversible record of one aspect woven into a set of classes.

    Identity semantics (``eq=False``): a deployment is a mutable record of
    what one weave did, usable as a set/dict key by handle.
    """

    aspect: Aspect
    members: list[_WovenMember] = field(default_factory=list)
    introductions: list[AppliedIntroduction] = field(default_factory=list)
    #: Monitor-tier registrations (:class:`~repro.aop.monitor.
    #: MonitorRegistration`): shadows this deployment advises through
    #: ``sys.monitoring`` events instead of an installed wrapper member.
    monitor_sites: list = field(default_factory=list)
    active: bool = True
    #: The instance scope this deployment is narrowed to (None = class-wide).
    scope: InstanceScope | None = None
    #: cls -> (pre-weave shadow snapshot, pre-weave token, post-weave token);
    #: lets undeploy reinstate the shadow cache instead of forcing a rescan.
    _cache_state: dict = field(default_factory=dict, repr=False)
    #: True when this deployment raised its runtime's cflow-watcher count.
    _tracks_cflow: bool = field(default=False, repr=False)
    #: True while this deployment holds its scope's instance markers.
    _holds_markers: bool = field(default=False, repr=False)
    #: ``(cls, attr)`` marker class defaults this deployment registered.
    _marker_sites: list = field(default_factory=list, repr=False)
    #: The shadow index and watcher count of the runtime that wove this
    #: deployment — undeploy must restore exactly the state it disturbed,
    #: whichever runtime object performs it.
    _index: ShadowIndex | None = field(default=None, repr=False)
    _watchers: _WatcherCount | None = field(default=None, repr=False)

    def woven_signatures(self) -> list[str]:
        """Human-readable list of what this deployment touched."""
        return sorted(
            [f"{m.cls.__name__}.{m.name}" for m in self.members]
            + [r.signature for r in self.monitor_sites]
        )


def _release_marker_state(deployment: Deployment) -> None:
    """Drop a deployment's scope-marker residue (stamps + class defaults).

    Shared by strict undeploy and the forgiving rollback unwind, so the
    marker lifecycle cannot drift between the two paths: the scope's
    instance stamps are released (last user removes them) and every
    marker class default this deployment registered is unregistered from
    the board (refcounted — shared sites survive).
    """
    if deployment._holds_markers and deployment.scope is not None:
        deployment.scope._release_markers()
        deployment._holds_markers = False
    for cls, attr in deployment._marker_sites:
        _marker_defaults.unregister(cls, attr)
    deployment._marker_sites.clear()


def _rollback_partial_weave(deployment: Deployment, index: ShadowIndex) -> None:
    """Best-effort unwind of a deploy that raised mid-weave.

    Reverts whatever the failing deployment already applied (members LIFO,
    then introductions) and invalidates the touched classes, so a raising
    deploy never leaves class mutations the caller has no deployment
    handle to undo.  Revert errors are swallowed — the original exception
    is the one worth propagating, and the invalidation forces honest
    rescans for anything left inconsistent.
    """
    touched: set[type] = set()
    for member in reversed(deployment.members):
        touched.add(member.cls)
        try:
            member.revert()
        except Exception:
            pass
    for applied in reversed(deployment.introductions):
        touched.add(applied.cls)
        try:
            applied.revert()
        except Exception:
            pass
    for registration in reversed(deployment.monitor_sites):
        try:
            registration.release()
        except Exception:
            pass
    deployment.monitor_sites.clear()
    deployment.members.clear()
    deployment.introductions.clear()
    deployment._cache_state.clear()
    _release_marker_state(deployment)
    for cls in touched:
        index.invalidate(cls)


# -- wrapper and descriptor factories -----------------------------------------


def make_method_wrapper(
    shadow: MethodShadow,
    advice: list[Advice],
    *,
    watchers: _WatcherCount,
    codegen_cache: "codegen.CodegenCache | None" = None,
    scope: InstanceScope | None = None,
):
    """The wrapper for one method shadow, in the fastest eligible tier.

    With an instance *scope*, the wrapper is a per-shadow dispatch: a
    membership test routes scoped receivers into the advice chain and
    every other instance straight into ``shadow.original`` (the member the
    class had before this deployment — possibly an earlier deployment's
    wrapper, which is how class-wide and instance-scoped deployments
    compose).  The codegen tier fuses the test into the generated wrapper
    (marker attribute when the scope allows it, exact signature when
    renderable); the generic tier gates its usual closures on scope-id
    membership.
    """
    selector = _ChainSelector(advice)
    # Codegen specializes fully-static chains only; dynamic-residue
    # and tracking-only shadows are generic dispatch by construction
    # and share the generic closures in both tiers.
    if advice and not selector.has_dynamic and codegen.codegen_enabled():
        wrapper = codegen.generate_method_wrapper(
            shadow.original,
            shadow.name,
            tuple(advice),
            selector,
            watchers,
            cache=codegen_cache,
            scope=scope,
        )
    else:
        wrapper = _make_generic_method_wrapper(shadow, advice, selector, watchers)
        if scope is not None:
            wrapper = _scope_gate_wrapper(wrapper, shadow, scope.ids, watchers)
        # functools.wraps may have copied codegen/scope introspection
        # attrs from a nested generated original; they describe that one,
        # not this wrapper.
        wrapper.__dict__.pop("__codegen_source__", None)
        wrapper.__dict__.pop("__joinpoint_pool__", None)
        wrapper.__dict__.pop("__scope_marker__", None)
    wrapper.__dict__.pop("__woven_scope__", None)
    wrapper.__woven__ = True  # type: ignore[attr-defined]
    wrapper.__woven_original__ = shadow.original  # type: ignore[attr-defined]
    wrapper.__woven_advice_count__ = len(advice)  # type: ignore[attr-defined]
    if scope is not None:
        wrapper.__woven_scope__ = scope  # type: ignore[attr-defined]
    return wrapper


def make_module_wrapper(
    shadow: ModuleShadow,
    advice: list[Advice],
    *,
    watchers: _WatcherCount,
    codegen_cache: "codegen.CodegenCache | None" = None,
):
    """The wrapper for one module-function shadow, fastest eligible tier.

    The module counterpart of :func:`make_method_wrapper`, minus instance
    scoping (module functions have no receiver, so there is nothing to
    scope to — the runtime rejects ``instances=`` with module targets
    before planning).  Fully-static chains get a generated wrapper; the
    ``REPRO_AOP_CODEGEN=0`` escape hatch and dynamic residues fall back
    to the generic closures below.
    """
    selector = _ChainSelector(advice)
    if advice and not selector.has_dynamic and codegen.codegen_enabled():
        wrapper = codegen.generate_module_wrapper(
            shadow.original,
            shadow.module,
            shadow.name,
            tuple(advice),
            selector,
            watchers,
            cache=codegen_cache,
        )
    else:
        wrapper = _make_generic_module_wrapper(shadow, advice, selector, watchers)
        wrapper.__dict__.pop("__codegen_source__", None)
        wrapper.__dict__.pop("__joinpoint_pool__", None)
        wrapper.__dict__.pop("__scope_marker__", None)
    wrapper.__dict__.pop("__woven_scope__", None)
    wrapper.__woven__ = True  # type: ignore[attr-defined]
    wrapper.__woven_original__ = shadow.original  # type: ignore[attr-defined]
    wrapper.__woven_advice_count__ = len(advice)  # type: ignore[attr-defined]
    return wrapper


def _make_generic_module_wrapper(
    shadow: ModuleShadow,
    advice: list[Advice],
    selector: _ChainSelector,
    watchers: _WatcherCount,
):
    """Generic closures for a module-function shadow (no receiver).

    The same three dispatch tiers as :func:`_make_generic_method_wrapper`
    — tracking-only, static, dynamic — with ``jp.target = None`` and
    ``jp.cls`` bound to the owning module object, so residue selectors
    and cflow frames observe module executions exactly like method ones.
    """
    original = shadow.original
    module = shadow.module
    name = shadow.name

    if not advice:

        @functools.wraps(original)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION, None, module, name, args, kwargs
            )
            token = push_frame(jp)
            try:
                return original(*args, **kwargs)
            finally:
                pop_frame(token)

    elif not selector.has_dynamic:
        chain = selector.full_chain

        @functools.wraps(original)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION, None, module, name, args, kwargs
            )

            def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                return original(*call_args, **call_kwargs)

            if watchers.count:
                token = push_frame(jp)
                try:
                    return chain(jp, proceed)
                finally:
                    pop_frame(token)
            return chain(jp, proceed)

    else:

        @functools.wraps(original)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION, None, module, name, args, kwargs
            )
            token = push_frame(jp)
            try:
                chain = selector.select(jp)
                if chain is None:
                    return original(*args, **kwargs)

                def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                    return original(*call_args, **call_kwargs)

                return chain(jp, proceed)
            finally:
                pop_frame(token)

    return wrapper


def _scope_gate_wrapper(
    inner: Callable, shadow: MethodShadow, ids: set[int], watchers: _WatcherCount
):
    """Gate a generic wrapper on scope membership (id dispatch).

    The generic tier keeps its existing closures (tracking, static,
    dynamic) untouched; scoping just prepends the membership test, so the
    semantics matrices pinned against the generic tier stay valid verbatim
    for the scoped branch.  While a cflow watcher is live, unscoped calls
    still push an observable frame — the shadow executes either way, and
    a class-wide woven shadow would expose it to ``cflow()`` residues.
    """
    original = shadow.original
    name = shadow.name

    @functools.wraps(original)
    def dispatch(self: Any, *args: Any, **kwargs: Any) -> Any:
        if id(self) not in ids:
            if not watchers.count:
                return original(self, *args, **kwargs)
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION, self, type(self), name, args, kwargs
            )
            token = push_frame(jp)
            try:
                return original(self, *args, **kwargs)
            finally:
                pop_frame(token)
        return inner(self, *args, **kwargs)

    return dispatch


def make_field_descriptor(
    name: str,
    get_advice: list[Advice],
    set_advice: list[Advice],
    class_default: Any,
    *,
    watchers: _WatcherCount,
    codegen_cache: "codegen.CodegenCache | None" = None,
    scope: InstanceScope | None = None,
) -> _WovenField:
    """The data descriptor for one woven field, in the fastest eligible tier.

    Fully-static get/set chains deploy as a code-generated
    :class:`_WovenField` subclass whose accessors inline the advice
    sequence over pooled join points (same ``REPRO_AOP_CODEGEN=0`` escape
    hatch as method wrappers); anything carrying a runtime residue keeps
    the generic descriptor.  Instance-scoped fields always deploy the
    generic descriptor with an id-dispatch gate: unscoped instances get a
    plain ``__dict__`` read/write, scoped instances run the chains.
    """
    if scope is not None:
        return _WovenField(
            name, get_advice, set_advice, class_default, watchers, scope=scope
        )
    static = not _ChainSelector(get_advice).has_dynamic and not _ChainSelector(
        set_advice
    ).has_dynamic
    if static and (get_advice or set_advice) and codegen.codegen_enabled():
        return codegen.generate_field_descriptor(
            name,
            list(get_advice),
            list(set_advice),
            class_default,
            watchers,
            base=_WovenField,
            missing=_MISSING,
            cache=codegen_cache,
        )
    return _WovenField(name, get_advice, set_advice, class_default, watchers)


def _make_generic_method_wrapper(
    shadow: MethodShadow,
    advice: list[Advice],
    selector: _ChainSelector,
    watchers: _WatcherCount,
):
    """The non-codegen wrappers: generic closures over a compiled chain.

    This is the ``REPRO_AOP_CODEGEN=0`` escape hatch (and the reference
    the generated wrappers are pinned against): same chain, same frame
    semantics, but one generic closure shape per dispatch tier instead of
    a specialized one per shadow, and a fresh join point per call.
    """
    original = shadow.original
    name = shadow.name

    if not advice:
        # Tracking-only wrapper: a cflow entry shadow with no advice of
        # its own.  It exists purely to push a join point frame.
        @functools.wraps(original)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                name,
                args,
                kwargs,
            )
            token = push_frame(jp)
            try:
                return original(self, *args, **kwargs)
            finally:
                pop_frame(token)

    elif not selector.has_dynamic:
        # Static path: every pointcut matched fully at the shadow, so
        # the precompiled chain runs with no residue filtering.  Frames
        # are pushed only while some deployment in this runtime carries
        # a cflow residue (exactly when the stack is observable) — the
        # seed pushed them unconditionally.
        chain = selector.full_chain

        @functools.wraps(original)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                name,
                args,
                kwargs,
            )

            def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                return original(self, *call_args, **call_kwargs)

            if watchers.count:
                token = push_frame(jp)
                try:
                    return chain(jp, proceed)
                finally:
                    pop_frame(token)
            return chain(jp, proceed)

    else:
        # Dynamic path: push a frame (cflow may observe this very join
        # point), filter residues, and run the memoized sub-chain.
        @functools.wraps(original)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                name,
                args,
                kwargs,
            )
            token = push_frame(jp)
            try:
                chain = selector.select(jp)
                if chain is None:
                    return original(self, *args, **kwargs)

                def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                    return original(self, *call_args, **call_kwargs)

                return chain(jp, proceed)
            finally:
                pop_frame(token)

    return wrapper
