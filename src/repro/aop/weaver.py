"""The weaver: composes aspects with base classes at deployment time.

This is Figure 1 of the paper made concrete: the *aspect weaver* takes the
basic-functionality program (ordinary classes) and separately-specified
aspects, and produces the combined behaviour — here by installing wrappers
on matched method shadows and data descriptors on matched fields, all
reversibly (:meth:`Weaver.undeploy` restores the original program).

Weaving outline::

    weaver = Weaver()
    deployment = weaver.deploy(TracingAspect(), [Node, Index], fields={"position"})
    ...                     # advice now runs at matched join points
    weaver.undeploy(deployment)

The hot path is *code-generated at deployment time*: each woven method
shadow gets a specialized closure (see :mod:`repro.aop.codegen`) that
inlines its exact advice sequence over a pooled, lazily-constructed
:class:`~repro.aop.joinpoint.JoinPoint`; shadows whose advice is fully
static — no ``cflow``, ``target`` or ``args`` residue, and no cflow entry
tracking needed — skip the join point stack, per-call pointcut
re-evaluation *and* join point allocation entirely.  Setting
``REPRO_AOP_CODEGEN=0`` falls back to the generic :class:`CompiledChain`
wrappers (advice partitioned by kind once, around-nesting precomputed).
"""

from __future__ import annotations

import functools
import inspect
import weakref
from dataclasses import dataclass, field
from types import FunctionType
from typing import Any, Callable, Iterable

from . import codegen
from .advice import Advice, AdviceKind
from .aspect import Aspect
from .errors import WeavingError
from .introduce import AppliedIntroduction
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    JoinPointPool,
    ProceedingJoinPoint,
    pop_frame,
    push_frame,
)

_MISSING = object()


# -- compiled advice chains ---------------------------------------------------


class CompiledChain:
    """An advice chain partitioned by kind once, executed many times.

    The legacy :func:`run_advice_chain` re-partitioned the advice list into
    before/around/after buckets on *every* invocation; a compiled chain does
    that once (at deployment time) and stores each bucket pre-ordered, so
    calling it only pays for the around-closure nesting and the advice
    bodies themselves.

    Semantics are identical to the per-call path: before advice runs
    outermost-first, after advice innermost-first (reversed), around advice
    nests outermost wrapping the rest, and the exception path runs
    after-throwing then after (finally) before re-raising.
    """

    __slots__ = (
        "advice",
        "_befores",
        "_arounds_rev",
        "_returnings_rev",
        "_throwings_rev",
        "_finallys_rev",
    )

    def __init__(self, advice: Iterable[Advice]):
        self.advice: tuple[Advice, ...] = tuple(advice)
        self._befores = tuple(a for a in self.advice if a.kind is AdviceKind.BEFORE)
        # Arounds are applied innermost-first when building the nesting, and
        # the three after-flavours run innermost-first: store them reversed.
        self._arounds_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AROUND])
        )
        self._returnings_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AFTER_RETURNING])
        )
        self._throwings_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AFTER_THROWING])
        )
        self._finallys_rev = tuple(
            reversed([a for a in self.advice if a.kind is AdviceKind.AFTER])
        )

    def __call__(self, jp: JoinPoint, proceed: Callable[..., Any]) -> Any:
        chain = proceed
        for around_advice in self._arounds_rev:
            chain = _wrap_around(around_advice, jp, chain)

        for item in self._befores:
            item.invoke(jp)
        try:
            result = chain(*jp.args, **jp.kwargs)
        except Exception as exc:
            jp.result = exc
            for item in self._throwings_rev:
                item.invoke(jp)
            for item in self._finallys_rev:
                item.invoke(jp)
            raise
        jp.result = result
        for item in self._returnings_rev:
            item.invoke(jp)
        for item in self._finallys_rev:
            item.invoke(jp)
        return result


def run_advice_chain(
    advice: list[Advice], jp: JoinPoint, proceed: Callable[..., Any]
) -> Any:
    """Execute *advice* around *proceed* with AspectJ ordering semantics.

    Advice is assumed pre-sorted by precedence (lower ``order`` first =
    outermost).  This is the legacy one-shot entry point; it compiles a
    throwaway :class:`CompiledChain` per call.  Woven shadows use a chain
    compiled once at deployment time instead.
    """
    return CompiledChain(advice)(jp, proceed)


def _wrap_around(advice: Advice, jp: JoinPoint, inner: Callable[..., Any]):
    def runner(*args: Any, **kwargs: Any) -> Any:
        # The caller (the chain entry or an outer proceed()) has already
        # resolved the intended arguments — possibly an intentionally empty
        # tuple/dict — so they are taken verbatim.  The old ``args or
        # jp.args`` fallback silently replayed the original arguments
        # whenever an outer advice proceeded with falsy ones.
        pjp = ProceedingJoinPoint.for_chain(jp, inner, args, kwargs)
        return advice.invoke(pjp)

    return runner


class _ChainSelector:
    """Per-call residue filtering over pointcut-level memoized mask indices.

    Each advice's residue decomposes (:meth:`Pointcut.residue_parts`) into
    a *class-settled* part — depending only on the join point's runtime
    class, so its verdict is computed **once per (pointcut, class)** and
    cached as a bitmask — and a genuinely *per-call* part (``cflow``,
    ``target``, ``args`` tests).  A call pays only for the per-call tests
    of advice its class mask still admits.  The surviving subset is
    usually one of a handful of combinations, so the compiled chain for
    each subset (keyed by the advice bitmask) is built once and reused.

    The class-mask cache is weak-keyed (like :class:`ShadowIndex`): a
    long-lived deployment advising a base class must not pin every
    ephemeral subclass whose instances pass through the shadow.
    """

    __slots__ = (
        "advice",
        "has_dynamic",
        "full_chain",
        "_chains",
        "_full_mask",
        "_class_tests",
        "_call_tests",
        "_class_masks",
    )

    def __init__(self, advice: Iterable[Advice]):
        self.advice: tuple[Advice, ...] = tuple(advice)
        self.full_chain = CompiledChain(self.advice)
        self._full_mask = (1 << len(self.advice)) - 1
        self._chains: dict[int, CompiledChain] = {self._full_mask: self.full_chain}
        self._class_tests: list[tuple[int, Any]] = []
        self._call_tests: list[tuple[int, Any]] = []
        for index, item in enumerate(self.advice):
            class_part, call_part = item.residue_parts()
            if class_part is not None:
                self._class_tests.append((1 << index, class_part))
            if call_part is not None:
                self._call_tests.append((1 << index, call_part))
        self.has_dynamic = bool(self._class_tests or self._call_tests)
        self._class_masks: "weakref.WeakKeyDictionary[type, int]" = (
            weakref.WeakKeyDictionary()
        )

    def class_mask(self, jp: JoinPoint) -> int:
        """Admissible-advice bits for *jp*'s runtime class (memoized)."""
        mask = self._class_masks.get(jp.cls)
        if mask is None:
            mask = self._full_mask
            for bit, pointcut in self._class_tests:
                if not pointcut.matches_dynamic(jp):
                    mask &= ~bit
            self._class_masks[jp.cls] = mask
        return mask

    def select(self, jp: JoinPoint) -> CompiledChain | None:
        """The compiled chain for the advice matching *jp*, or None."""
        if not self.has_dynamic:
            # Static advice on a frame-tracked shadow: everything applies.
            return self.full_chain if self.advice else None
        mask = self.class_mask(jp) if self._class_tests else self._full_mask
        for bit, pointcut in self._call_tests:
            if mask & bit and not pointcut.matches_dynamic(jp):
                mask &= ~bit
        if not mask:
            return None
        chain = self._chains.get(mask)
        if chain is None:
            chain = self._chains[mask] = CompiledChain(
                item for index, item in enumerate(self.advice) if mask >> index & 1
            )
        return chain


# -- shadows -----------------------------------------------------------------


@dataclass(frozen=True)
class MethodShadow:
    """A method the weaver may wrap: where it is reachable and its code."""

    cls: type
    name: str
    original: Callable
    #: True when the method is inherited (the wrapper becomes an override).
    inherited: bool


def _scan_method_shadows(cls: type) -> tuple[MethodShadow, ...]:
    shadows: list[MethodShadow] = []
    for name in dir(cls):
        if name.startswith("__"):
            continue
        static = inspect.getattr_static(cls, name)
        if isinstance(static, FunctionType):
            shadows.append(
                MethodShadow(
                    cls=cls,
                    name=name,
                    original=static,
                    inherited=name not in cls.__dict__,
                )
            )
    return tuple(shadows)


class ShadowIndex:
    """Memoized shadow scans, invalidated when the weaver rewrites members.

    ``dir()`` + ``getattr_static`` per member is the dominant cost of
    deployment planning, and a single :meth:`Weaver.deploy` used to rescan
    each target up to three times (declare-error check, advice matching,
    cflow entry instrumentation).  The index computes each class's shadows
    once and drops the entry — together with every cached subclass entry,
    since inherited shadows capture base members — whenever the weaver
    installs or reverts a member on that class.

    Classes mutated *outside* the weaver between two deployments are the
    caller's responsibility: pass them through :meth:`invalidate` (or
    :meth:`clear`) before redeploying.
    """

    def __init__(self) -> None:
        self._cache: "weakref.WeakKeyDictionary[type, tuple[MethodShadow, ...]]" = (
            weakref.WeakKeyDictionary()
        )
        # cls -> id of the last invalidation that hit it.  Lets a
        # deployment prove at undeploy time that nobody else rewove the
        # class in between, making its pre-weave snapshot restorable.
        self._tokens: "weakref.WeakKeyDictionary[type, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._counter = 0

    def shadows(self, cls: type) -> tuple[MethodShadow, ...]:
        cached = self._cache.get(cls)
        if cached is None:
            cached = _scan_method_shadows(cls)
            self._cache[cls] = cached
        return cached

    def token(self, cls: type) -> int:
        """Opaque stamp of the last invalidation that hit *cls* (0 = never)."""
        return self._tokens.get(cls, 0)

    def invalidate(self, cls: type) -> int:
        """Drop cached scans of *cls* and of every (live) subclass.

        Walks ``__subclasses__`` transitively rather than the cache keys:
        a subclass that is not currently cached must still get a fresh
        token, or a deployment's pre-weave snapshot of it could later be
        "restored" over a base-class weave it never saw.

        Returns the new invalidation token for *cls*.
        """
        self._counter += 1
        stamp = self._counter
        seen: set[type] = set()
        stack = [cls]
        while stack:
            klass = stack.pop()
            if klass in seen:
                continue
            seen.add(klass)
            self._cache.pop(klass, None)
            self._tokens[klass] = stamp
            stack.extend(klass.__subclasses__())
        return stamp

    def prime(self, cls: type, shadows: tuple[MethodShadow, ...]) -> None:
        """Install a scan known to equal what a fresh rescan would produce.

        The batch planner derives each class's post-weave scan from the
        pre-weave one plus the members it just installed (a pure in-memory
        update), so the ``dir()`` + ``getattr_static`` walk can be skipped.
        The caller vouches for exactness; tokens are left as stamped by the
        preceding :meth:`invalidate`.
        """
        self._cache[cls] = shadows

    def restore_after_revert(
        self,
        cls: type,
        shadows: tuple[MethodShadow, ...],
        *,
        woven_token: int,
        pre_token: int,
    ) -> None:
        """Reinstate a pre-weave snapshot after an exact undeploy.

        Undeploy restores the class byte-for-byte, so the scan captured
        before the deployment is valid again — *unless* some other
        deployment invalidated the class in between (its token would
        differ from the one this deployment stamped at weave time), in
        which case this degrades to a plain invalidation and the next
        deploy rescans.
        """
        eligible = self._tokens.get(cls, 0) == woven_token
        self.invalidate(cls)  # always drop (possibly stale) subclass entries
        if eligible:
            self._cache[cls] = shadows
            self._tokens[cls] = pre_token

    def clear(self) -> None:
        """Drop everything — scans *and* tokens.

        Clearing tokens makes every outstanding deployment's snapshot
        ineligible for restore (its woven token can no longer match), so
        undeploys after a clear degrade to honest rescans — which is the
        point of clearing after external class mutation.
        """
        self._cache.clear()
        self._tokens.clear()


#: Process-wide shadow index shared by every weaver (class mutation by one
#: weaver must invalidate scans another weaver would otherwise reuse).
shadow_index = ShadowIndex()


class _BatchScans:
    """One real shadow scan per class for a whole ``deploy_all`` batch.

    Sequential deploys invalidate every class they touch, so aspect *i + 1*
    used to rescan the classes aspect *i* wove even though the only change
    is the wrappers the weaver itself just installed.  This view scans each
    class once (through the shared :data:`shadow_index`) and thereafter
    *derives* the post-weave scan in memory: a woven member replaces its
    entry (the wrapper becomes the shadow, no longer inherited), a field
    descriptor drops any function entry of that name, and everything else
    is untouched.  Derived scans are primed back into the index, so nested
    installs across the batch — and the first scan after it — stay
    rescan-free, making batch deployment O(classes × members) in scan work
    regardless of the number of aspects.

    Introductions fall back to honest rescans (they add members the
    derivation does not model), as do subclasses of a touched class (their
    inherited entries change underneath them).
    """

    __slots__ = ("_scans",)

    def __init__(self) -> None:
        self._scans: dict[type, tuple[MethodShadow, ...]] = {}

    def shadows(self, cls: type) -> tuple[MethodShadow, ...]:
        scan = self._scans.get(cls)
        if scan is None:
            scan = self._scans[cls] = shadow_index.shadows(cls)
        return scan

    def _drop(self, cls: type, *, and_self: bool) -> None:
        for cached in [
            k
            for k in self._scans
            if (and_self or k is not cls) and issubclass(k, cls)
        ]:
            del self._scans[cached]

    def note_introduction(self, cls: type) -> None:
        """An introduction mutated *cls*: rescan it (and subclasses)."""
        self._drop(cls, and_self=True)

    def apply_installs(self, cls: type, installed: dict[str, Any]) -> None:
        """Derive *cls*'s post-weave scan and prime the shared index.

        Called after the weaver invalidated *cls* for this deployment, so
        the primed entry carries the fresh woven token.
        """
        self._drop(cls, and_self=False)
        old = self._scans.get(cls)
        if old is None:
            return  # never scanned this batch (or introduction-reset)
        derived: list[MethodShadow] = []
        for entry in old:
            wrapper = installed.get(entry.name, _MISSING)
            if wrapper is _MISSING:
                derived.append(entry)
            elif isinstance(wrapper, FunctionType):
                derived.append(
                    MethodShadow(
                        cls=cls, name=entry.name, original=wrapper, inherited=False
                    )
                )
            # else: a data descriptor displaced the function — rescans
            # would not report it, so neither does the derived scan.
        scan = tuple(derived)
        self._scans[cls] = scan
        shadow_index.prime(cls, scan)


def method_shadows(cls: type) -> list[MethodShadow]:
    """All weavable method shadows of *cls* (plain functions, no dunders).

    Memoized through the module-wide :data:`shadow_index`; the weaver
    invalidates entries whenever it installs or reverts members.
    """
    return list(shadow_index.shadows(cls))


class _WatcherCount:
    """Mutable live count of cflow-watching deployments.

    A one-slot object rather than a module global so that code-generated
    wrappers (whose globals are their own exec namespace, not this
    module's) can bind it as a free variable and still observe updates —
    rebinding a module-level int would leave them reading a stale value.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


#: Count of active deployments — across every weaver — whose advice carries
#: a ``cflow()``/``cflowbelow()`` residue.  The seed weaver pushed a join
#: point frame on *every* woven shadow, which is what made cflow residues
#: from one deployment observe shadows woven by another.  Static fast-path
#: wrappers preserve that: they check this counter per call (one attribute
#: read) and push frames whenever any cflow watcher is live anywhere, and
#: skip the stack bookkeeping only when no residue could possibly observe it.
_cflow_watchers = _WatcherCount()


class _WovenField:
    """A data descriptor turning attribute access into field join points.

    Get/set advice chains are compiled once at construction.  When every
    advice is static and no cflow watcher is live anywhere (checked per
    access via :data:`_cflow_watchers`), access skips the join point stack
    and residue filtering entirely, and runs the chain over a pooled join
    point (the dynamic path keeps plain allocation: its frames may outlive
    the access inside captured stack tuples).
    """

    def __init__(
        self,
        name: str,
        get_advice: list[Advice],
        set_advice: list[Advice],
        class_default: Any = _MISSING,
    ):
        self._name = name
        self._get_advice = get_advice
        self._set_advice = set_advice
        self._class_default = class_default
        self._get_selector = _ChainSelector(get_advice)
        self._set_selector = _ChainSelector(set_advice)
        self._get_static = not self._get_selector.has_dynamic
        self._set_static = not self._set_selector.has_dynamic
        self._make_pools()

    def _make_pools(self) -> None:
        self._get_pool = JoinPointPool(JoinPointKind.FIELD_GET, self._name)
        self._set_pool = JoinPointPool(JoinPointKind.FIELD_SET, self._name)

    def __set_name__(self, owner: type, name: str) -> None:
        self._name = name
        self._make_pools()

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self

        def read(*_args: Any, **_kwargs: Any) -> Any:
            if self._name in obj.__dict__:
                return obj.__dict__[self._name]
            if self._class_default is not _MISSING:
                return self._class_default
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute {self._name!r}"
            )

        if self._get_static and not _cflow_watchers.count:
            if not self._get_advice:
                return read()
            jp = self._get_pool.acquire(obj, (), {})
            try:
                return self._get_selector.full_chain(jp, read)
            finally:
                self._get_pool.release(jp)

        jp = JoinPoint(JoinPointKind.FIELD_GET, obj, type(obj), self._name)
        token = push_frame(jp)
        try:
            chain = self._get_selector.select(jp)
            if chain is None:
                return read()
            return chain(jp, read)
        finally:
            pop_frame(token)

    def __set__(self, obj: Any, value: Any) -> None:
        def write(new_value: Any = value) -> None:
            obj.__dict__[self._name] = new_value

        if self._set_static and not _cflow_watchers.count:
            if not self._set_advice:
                write()
                return
            jp = self._set_pool.acquire(obj, (value,), {})
            jp.value = value
            try:
                self._set_selector.full_chain(jp, write)
            finally:
                self._set_pool.release(jp)
            return

        jp = JoinPoint(
            JoinPointKind.FIELD_SET,
            obj,
            type(obj),
            self._name,
            args=(value,),
            value=value,
        )
        token = push_frame(jp)
        try:
            chain = self._set_selector.select(jp)
            if chain is None:
                write()
                return
            chain(jp, write)
        finally:
            pop_frame(token)


# -- deployments --------------------------------------------------------------


@dataclass
class _WovenMember:
    cls: type
    name: str
    installed: Any
    previous: Any  # _MISSING when the name was inherited (no own entry)

    def revert(self) -> None:
        current = self.cls.__dict__.get(self.name, _MISSING)
        if current is not self.installed:
            raise WeavingError(
                f"cannot undeploy: {self.cls.__name__}.{self.name} was re-woven "
                "or replaced after this deployment (undeploy in LIFO order)"
            )
        if self.previous is _MISSING:
            delattr(self.cls, self.name)
        else:
            setattr(self.cls, self.name, self.previous)


@dataclass
class Deployment:
    """A reversible record of one aspect woven into a set of classes."""

    aspect: Aspect
    members: list[_WovenMember] = field(default_factory=list)
    introductions: list[AppliedIntroduction] = field(default_factory=list)
    active: bool = True
    #: cls -> (pre-weave shadow snapshot, pre-weave token, post-weave token);
    #: lets undeploy reinstate the shadow cache instead of forcing a rescan.
    _cache_state: dict = field(default_factory=dict, repr=False)
    #: True when this deployment raised the module cflow-watcher count.
    _tracks_cflow: bool = field(default=False, repr=False)

    def woven_signatures(self) -> list[str]:
        """Human-readable list of what this deployment touched."""
        return sorted(f"{m.cls.__name__}.{m.name}" for m in self.members)


def _rollback_partial_weave(deployment: Deployment) -> None:
    """Best-effort unwind of a deploy that raised mid-weave.

    Reverts whatever the failing deployment already applied (members LIFO,
    then introductions) and invalidates the touched classes, so a raising
    :meth:`Weaver.deploy` never leaves class mutations the caller has no
    deployment handle to undo.  Revert errors are swallowed — the original
    exception is the one worth propagating, and the invalidation forces
    honest rescans for anything left inconsistent.
    """
    touched: set[type] = set()
    for member in reversed(deployment.members):
        touched.add(member.cls)
        try:
            member.revert()
        except Exception:
            pass
    for applied in reversed(deployment.introductions):
        touched.add(applied.cls)
        try:
            applied.revert()
        except Exception:
            pass
    deployment.members.clear()
    deployment.introductions.clear()
    deployment._cache_state.clear()
    for cls in touched:
        shadow_index.invalidate(cls)


class Weaver:
    """Deploys aspects into classes and keeps enough state to undo it."""

    def __init__(self) -> None:
        self._deployments: list[Deployment] = []

    @property
    def deployments(self) -> list[Deployment]:
        return [d for d in self._deployments if d.active]

    def deploy(
        self,
        aspect: Aspect,
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        require_match: bool = True,
        _scans: "_BatchScans | None" = None,
    ) -> Deployment:
        """Weave *aspect* into *targets*.

        ``fields`` names instance attributes to expose as field join points
        (Python cannot discover instance attributes statically, so field
        interception is opt-in).  With *require_match*, deploying an aspect
        that matches nothing raises — almost always a pointcut typo.

        ``_scans`` is the :meth:`deploy_all` batch planner's shared scan
        view; single deployments read the module :data:`shadow_index`
        directly.
        """
        aspect.validate()
        advice = sorted(aspect.advice(), key=lambda a: a.order)
        targets = list(targets)
        deployment = Deployment(aspect=aspect)
        scans = _scans if _scans is not None else shadow_index

        # Snapshot every target's pre-weave scan (also pre-warming the
        # cache for the phases below).  Undeploy restores classes exactly,
        # so these snapshots make deploy/undeploy cycles rescan-free.
        pre_state = {
            cls: (scans.shadows(cls), shadow_index.token(cls)) for cls in targets
        }

        # declare error: refuse deployment when a forbidden shape exists.
        for declaration in aspect.declarations():
            for cls in targets:
                for shadow in scans.shadows(cls):
                    if declaration.pointcut.matches_shadow(
                        cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                    ):
                        raise WeavingError(
                            f"{declaration.message} "
                            f"(declare error matched {cls.__name__}.{shadow.name})"
                        )

        try:
            intro_touched: set[type] = set()
            for introduction in aspect.introductions():
                for cls in targets:
                    applied = introduction.apply(cls)
                    if applied is not None:
                        deployment.introductions.append(applied)
                        intro_touched.add(cls)
                        # Introduced functions are weavable shadows themselves.
                        shadow_index.invalidate(cls)
                        if _scans is not None:
                            _scans.note_introduction(cls)

            # cflow() residues need the join point stack populated at their
            # inner pointcuts' shadows even when no advice runs there; shadows
            # the residues match get tracking-only wrappers (AspectJ
            # instruments cflow entry shadows the same way).  While this
            # deployment is active it also raises :data:`_cflow_watchers`, so
            # every woven shadow anywhere resumes frame bookkeeping.
            inner_pointcuts = [
                inner
                for a in advice
                for inner in a.pointcut.cflow_inner_pointcuts()
            ]

            def tracked(cls: type, name: str, kind: JoinPointKind) -> bool:
                return any(p.matches_shadow(cls, name, kind) for p in inner_pointcuts)

            # Capture every shadow before installing anything, so that weaving
            # a base class never changes what a subclass shadow captures.  One
            # (memoized) scan per class covers advice matching and cflow entry
            # instrumentation.
            method_plan: list[tuple[MethodShadow, list[Advice]]] = []
            field_plan: list[tuple[type, str, list[Advice], list[Advice]]] = []
            tracking_only: set[tuple[type, str]] = set()
            for cls in targets:
                for shadow in scans.shadows(cls):
                    matching = [
                        a
                        for a in advice
                        if a.pointcut.matches_shadow(
                            cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                        )
                    ]
                    if matching:
                        method_plan.append((shadow, matching))
                    elif inner_pointcuts:
                        key = (shadow.cls, shadow.name)
                        if key not in tracking_only and tracked(
                            cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                        ):
                            tracking_only.add(key)
                            method_plan.append((shadow, []))
                for field_name in fields:
                    getters = [
                        a
                        for a in advice
                        if a.pointcut.matches_shadow(
                            cls, field_name, JoinPointKind.FIELD_GET
                        )
                    ]
                    setters = [
                        a
                        for a in advice
                        if a.pointcut.matches_shadow(
                            cls, field_name, JoinPointKind.FIELD_SET
                        )
                    ]
                    if getters or setters:
                        field_plan.append((cls, field_name, getters, setters))

            touched: set[type] = set()
            for shadow, matching in method_plan:
                wrapper = self._make_method_wrapper(shadow, matching)
                previous = shadow.cls.__dict__.get(shadow.name, _MISSING)
                setattr(shadow.cls, shadow.name, wrapper)
                touched.add(shadow.cls)
                deployment.members.append(
                    _WovenMember(shadow.cls, shadow.name, wrapper, previous)
                )

            for cls, field_name, getters, setters in field_plan:
                previous = cls.__dict__.get(field_name, _MISSING)
                default = previous if previous is not _MISSING else _MISSING
                # A re-weave keeps the original class default.
                if isinstance(default, _WovenField):
                    default = default._class_default
                descriptor = _WovenField(field_name, getters, setters, default)
                setattr(cls, field_name, descriptor)
                touched.add(cls)
                deployment.members.append(
                    _WovenMember(cls, field_name, descriptor, previous)
                )

            for cls in touched | intro_touched:
                woven_token = shadow_index.invalidate(cls)
                shadows_snapshot, pre_token = pre_state[cls]
                deployment._cache_state[cls] = (
                    shadows_snapshot,
                    pre_token,
                    woven_token,
                )
            if _scans is not None:
                installed_by_cls: dict[type, dict[str, Any]] = {}
                for member in deployment.members:
                    installed_by_cls.setdefault(member.cls, {})[member.name] = (
                        member.installed
                    )
                # Bases before subclasses: a touched base drops its subclasses'
                # derived scans (their inherited entries changed underneath
                # them), which must happen before — never after — a touched
                # subclass would prime one.
                for cls in sorted(touched, key=lambda klass: len(klass.__mro__)):
                    _scans.apply_installs(cls, installed_by_cls.get(cls, {}))

            if (
                require_match
                and not deployment.members
                and not deployment.introductions
            ):
                raise WeavingError(
                    f"aspect {type(aspect).__name__} matched nothing in "
                    f"[{', '.join(t.__name__ for t in targets)}]"
                )
        except BaseException:
            # Mid-weave failure (introduction conflict, raising pointcut,
            # ...): revert what this deployment already applied so the
            # caller is never left with class mutations it has no handle
            # to undo.
            _rollback_partial_weave(deployment)
            raise
        if inner_pointcuts:
            _cflow_watchers.count += 1
            deployment._tracks_cflow = True
        self._deployments.append(deployment)
        return deployment

    def deploy_all(
        self,
        aspects: Iterable[Aspect],
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        require_match: bool = True,
    ) -> list[Deployment]:
        """Deploy several aspects over the same targets, in order.

        Semantically identical to sequential :meth:`deploy` calls — later
        aspects wrap earlier ones, and the batch unwinds LIFO like any
        other deployments — but the whole batch plans from **one**
        :class:`ShadowIndex` scan per class (:class:`_BatchScans`): when an
        aspect weaves a class, the next aspect's plan is *derived* from the
        installed wrappers instead of rescanning, so nesting installs cost
        O(classes × members) scan work total regardless of how many aspects
        stack (the classic O(aspects × classes × members) rescan is gone).

        All-or-nothing: if a later aspect's deploy raises (declare error,
        pointcut typo with *require_match*, ...), the aspects already
        installed are undeployed LIFO before the exception propagates —
        the caller gets no deployment handles back, so partial weaves
        would be unrecoverable leaks.
        """
        targets = list(targets)
        batch = _BatchScans()
        made: list[Deployment] = []
        try:
            for aspect in aspects:
                made.append(
                    self.deploy(
                        aspect,
                        targets,
                        fields=fields,
                        require_match=require_match,
                        _scans=batch,
                    )
                )
        except BaseException:
            for deployment in reversed(made):
                self.undeploy(deployment)
            raise
        return made

    @staticmethod
    def _make_method_wrapper(shadow: MethodShadow, advice: list[Advice]):
        selector = _ChainSelector(advice)
        # Codegen specializes fully-static chains only; dynamic-residue
        # and tracking-only shadows are generic dispatch by construction
        # and share the generic closures in both tiers.
        if advice and not selector.has_dynamic and codegen.codegen_enabled():
            wrapper = codegen.generate_method_wrapper(
                shadow.original, shadow.name, tuple(advice), selector, _cflow_watchers
            )
        else:
            wrapper = _make_generic_method_wrapper(shadow, advice, selector)
            # functools.wraps may have copied codegen introspection attrs
            # from a nested generated original; they describe that one,
            # not this wrapper.
            wrapper.__dict__.pop("__codegen_source__", None)
            wrapper.__dict__.pop("__joinpoint_pool__", None)
        wrapper.__woven__ = True  # type: ignore[attr-defined]
        wrapper.__woven_original__ = shadow.original  # type: ignore[attr-defined]
        return wrapper

    def undeploy(self, deployment: Deployment) -> None:
        """Reverse one deployment (most-recent-first when they overlap)."""
        if not deployment.active:
            return
        touched: set[type] = set()
        try:
            for member in reversed(deployment.members):
                member.revert()
                touched.add(member.cls)
            for applied in reversed(deployment.introductions):
                applied.revert()
                touched.add(applied.cls)
        except Exception:
            # Partial revert (e.g. out-of-LIFO undeploy): the classes we
            # did touch are in an unknown state — force rescans.
            for cls in touched:
                shadow_index.invalidate(cls)
            raise
        for cls in touched:
            state = deployment._cache_state.get(cls)
            if state is None:
                shadow_index.invalidate(cls)
            else:
                snapshot, pre_token, woven_token = state
                shadow_index.restore_after_revert(
                    cls, snapshot, woven_token=woven_token, pre_token=pre_token
                )
        if deployment._tracks_cflow:
            _cflow_watchers.count -= 1
            deployment._tracks_cflow = False
        deployment.active = False

    def undeploy_all(self) -> None:
        """Reverse every active deployment, most recent first."""
        for deployment in reversed(self.deployments):
            self.undeploy(deployment)


def _make_generic_method_wrapper(
    shadow: MethodShadow, advice: list[Advice], selector: _ChainSelector
):
    """The non-codegen wrappers: generic closures over a compiled chain.

    This is the ``REPRO_AOP_CODEGEN=0`` escape hatch (and the reference
    the generated wrappers are pinned against): same chain, same frame
    semantics, but one generic closure shape per dispatch tier instead of
    a specialized one per shadow, and a fresh join point per call.
    """
    original = shadow.original
    name = shadow.name

    if not advice:
        # Tracking-only wrapper: a cflow entry shadow with no advice of
        # its own.  It exists purely to push a join point frame.
        @functools.wraps(original)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                name,
                args,
                kwargs,
            )
            token = push_frame(jp)
            try:
                return original(self, *args, **kwargs)
            finally:
                pop_frame(token)

    elif not selector.has_dynamic:
        # Static path: every pointcut matched fully at the shadow, so
        # the precompiled chain runs with no residue filtering.  Frames
        # are pushed only while some deployment anywhere carries a
        # cflow residue (exactly when the stack is observable) — the
        # seed pushed them unconditionally.
        chain = selector.full_chain

        @functools.wraps(original)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                name,
                args,
                kwargs,
            )

            def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                return original(self, *call_args, **call_kwargs)

            if _cflow_watchers.count:
                token = push_frame(jp)
                try:
                    return chain(jp, proceed)
                finally:
                    pop_frame(token)
            return chain(jp, proceed)

    else:
        # Dynamic path: push a frame (cflow may observe this very join
        # point), filter residues, and run the memoized sub-chain.
        @functools.wraps(original)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                name,
                args,
                kwargs,
            )
            token = push_frame(jp)
            try:
                chain = selector.select(jp)
                if chain is None:
                    return original(self, *args, **kwargs)

                def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                    return original(self, *call_args, **call_kwargs)

                return chain(jp, proceed)
            finally:
                pop_frame(token)

    return wrapper


#: The default process-wide weaver used by :func:`deploy` / :func:`undeploy`.
default_weaver = Weaver()


def deploy(
    aspect: Aspect,
    targets: Iterable[type],
    *,
    fields: Iterable[str] = (),
    require_match: bool = True,
) -> Deployment:
    """Deploy on the default weaver; see :meth:`Weaver.deploy`."""
    return default_weaver.deploy(
        aspect, targets, fields=fields, require_match=require_match
    )


def deploy_all(
    aspects: Iterable[Aspect],
    targets: Iterable[type],
    *,
    fields: Iterable[str] = (),
    require_match: bool = True,
) -> list[Deployment]:
    """Batch-deploy on the default weaver; see :meth:`Weaver.deploy_all`."""
    return default_weaver.deploy_all(
        aspects, targets, fields=fields, require_match=require_match
    )


def undeploy(deployment: Deployment) -> None:
    """Undeploy from the default weaver."""
    default_weaver.undeploy(deployment)


class deployed:
    """Context manager: aspect woven inside the block, restored after.

    ::

        with deployed(Tracing(), [Node]):
            site.render()          # advice active
        site.render()              # original behaviour
    """

    def __init__(
        self,
        aspect: Aspect,
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        weaver: Weaver | None = None,
    ):
        self._aspect = aspect
        self._targets = list(targets)
        self._fields = fields
        self._weaver = weaver or default_weaver
        self._deployment: Deployment | None = None

    def __enter__(self) -> Deployment:
        self._deployment = self._weaver.deploy(
            self._aspect, self._targets, fields=self._fields
        )
        return self._deployment

    def __exit__(self, *exc_info) -> None:
        if self._deployment is not None:
            self._weaver.undeploy(self._deployment)
