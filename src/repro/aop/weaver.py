"""The weaver: composes aspects with base classes at deployment time.

This is Figure 1 of the paper made concrete: the *aspect weaver* takes the
basic-functionality program (ordinary classes) and separately-specified
aspects, and produces the combined behaviour — here by installing wrappers
on matched method shadows and data descriptors on matched fields, all
reversibly (:meth:`Weaver.undeploy` restores the original program).

Weaving outline::

    weaver = Weaver()
    deployment = weaver.deploy(TracingAspect(), [Node, Index], fields={"position"})
    ...                     # advice now runs at matched join points
    weaver.undeploy(deployment)
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field
from types import FunctionType
from typing import Any, Callable, Iterable

from .advice import Advice, AdviceKind
from .aspect import Aspect
from .errors import WeavingError
from .introduce import AppliedIntroduction
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    ProceedingJoinPoint,
    joinpoint_frame,
)

_MISSING = object()


def run_advice_chain(
    advice: list[Advice], jp: JoinPoint, proceed: Callable[..., Any]
) -> Any:
    """Execute *advice* around *proceed* with AspectJ ordering semantics.

    Advice is assumed pre-sorted by precedence (lower ``order`` first =
    outermost).  Before advice runs outermost-first; after advice runs
    innermost-first (reverse); around advice nests, outermost wrapping the
    rest.
    """
    befores = [a for a in advice if a.kind is AdviceKind.BEFORE]
    arounds = [a for a in advice if a.kind is AdviceKind.AROUND]
    returnings = [a for a in advice if a.kind is AdviceKind.AFTER_RETURNING]
    throwings = [a for a in advice if a.kind is AdviceKind.AFTER_THROWING]
    finallys = [a for a in advice if a.kind is AdviceKind.AFTER]

    chain = proceed
    for around_advice in reversed(arounds):
        chain = _wrap_around(around_advice, jp, chain)

    for item in befores:
        item.invoke(jp)
    try:
        result = chain(*jp.args, **jp.kwargs)
    except Exception as exc:
        jp.result = exc
        for item in reversed(throwings):
            item.invoke(jp)
        for item in reversed(finallys):
            item.invoke(jp)
        raise
    jp.result = result
    for item in reversed(returnings):
        item.invoke(jp)
    for item in reversed(finallys):
        item.invoke(jp)
    return result


def _wrap_around(advice: Advice, jp: JoinPoint, inner: Callable[..., Any]):
    def runner(*args: Any, **kwargs: Any) -> Any:
        pjp = ProceedingJoinPoint(jp, inner)
        pjp.args = args or jp.args
        pjp.kwargs = kwargs or jp.kwargs
        return advice.invoke(pjp)

    return runner


# -- shadows -----------------------------------------------------------------


@dataclass(frozen=True)
class MethodShadow:
    """A method the weaver may wrap: where it is reachable and its code."""

    cls: type
    name: str
    original: Callable
    #: True when the method is inherited (the wrapper becomes an override).
    inherited: bool


def method_shadows(cls: type) -> list[MethodShadow]:
    """All weavable method shadows of *cls* (plain functions, no dunders)."""
    shadows: list[MethodShadow] = []
    for name in dir(cls):
        if name.startswith("__"):
            continue
        static = inspect.getattr_static(cls, name)
        if isinstance(static, FunctionType):
            shadows.append(
                MethodShadow(
                    cls=cls,
                    name=name,
                    original=static,
                    inherited=name not in cls.__dict__,
                )
            )
    return shadows


class _WovenField:
    """A data descriptor turning attribute access into field join points."""

    def __init__(
        self,
        name: str,
        get_advice: list[Advice],
        set_advice: list[Advice],
        class_default: Any = _MISSING,
    ):
        self._name = name
        self._get_advice = get_advice
        self._set_advice = set_advice
        self._class_default = class_default

    def __set_name__(self, owner: type, name: str) -> None:
        self._name = name

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        jp = JoinPoint(JoinPointKind.FIELD_GET, obj, type(obj), self._name)

        def read(*_args: Any, **_kwargs: Any) -> Any:
            if self._name in obj.__dict__:
                return obj.__dict__[self._name]
            if self._class_default is not _MISSING:
                return self._class_default
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute {self._name!r}"
            )

        with joinpoint_frame(jp):
            applicable = [
                a for a in self._get_advice if a.pointcut.matches_dynamic(jp)
            ]
            if not applicable:
                return read()
            return run_advice_chain(applicable, jp, read)

    def __set__(self, obj: Any, value: Any) -> None:
        jp = JoinPoint(
            JoinPointKind.FIELD_SET,
            obj,
            type(obj),
            self._name,
            args=(value,),
            value=value,
        )

        def write(new_value: Any = value) -> None:
            obj.__dict__[self._name] = new_value

        with joinpoint_frame(jp):
            applicable = [
                a for a in self._set_advice if a.pointcut.matches_dynamic(jp)
            ]
            if not applicable:
                write()
                return
            run_advice_chain(applicable, jp, write)


# -- deployments --------------------------------------------------------------


@dataclass
class _WovenMember:
    cls: type
    name: str
    installed: Any
    previous: Any  # _MISSING when the name was inherited (no own entry)

    def revert(self) -> None:
        current = self.cls.__dict__.get(self.name, _MISSING)
        if current is not self.installed:
            raise WeavingError(
                f"cannot undeploy: {self.cls.__name__}.{self.name} was re-woven "
                "or replaced after this deployment (undeploy in LIFO order)"
            )
        if self.previous is _MISSING:
            delattr(self.cls, self.name)
        else:
            setattr(self.cls, self.name, self.previous)


@dataclass
class Deployment:
    """A reversible record of one aspect woven into a set of classes."""

    aspect: Aspect
    members: list[_WovenMember] = field(default_factory=list)
    introductions: list[AppliedIntroduction] = field(default_factory=list)
    active: bool = True

    def woven_signatures(self) -> list[str]:
        """Human-readable list of what this deployment touched."""
        return sorted(f"{m.cls.__name__}.{m.name}" for m in self.members)


class Weaver:
    """Deploys aspects into classes and keeps enough state to undo it."""

    def __init__(self) -> None:
        self._deployments: list[Deployment] = []

    @property
    def deployments(self) -> list[Deployment]:
        return [d for d in self._deployments if d.active]

    def deploy(
        self,
        aspect: Aspect,
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        require_match: bool = True,
    ) -> Deployment:
        """Weave *aspect* into *targets*.

        ``fields`` names instance attributes to expose as field join points
        (Python cannot discover instance attributes statically, so field
        interception is opt-in).  With *require_match*, deploying an aspect
        that matches nothing raises — almost always a pointcut typo.
        """
        aspect.validate()
        advice = sorted(aspect.advice(), key=lambda a: a.order)
        targets = list(targets)
        deployment = Deployment(aspect=aspect)

        # declare error: refuse deployment when a forbidden shape exists.
        for declaration in aspect.declarations():
            for cls in targets:
                for shadow in method_shadows(cls):
                    if declaration.pointcut.matches_shadow(
                        cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                    ):
                        raise WeavingError(
                            f"{declaration.message} "
                            f"(declare error matched {cls.__name__}.{shadow.name})"
                        )

        for introduction in aspect.introductions():
            for cls in targets:
                applied = introduction.apply(cls)
                if applied is not None:
                    deployment.introductions.append(applied)

        # Capture every shadow before installing anything, so that weaving
        # a base class never changes what a subclass shadow captures.
        method_plan: list[tuple[MethodShadow, list[Advice]]] = []
        field_plan: list[tuple[type, str, list[Advice], list[Advice]]] = []
        for cls in targets:
            for shadow in method_shadows(cls):
                matching = [
                    a
                    for a in advice
                    if a.pointcut.matches_shadow(
                        cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                    )
                ]
                if matching:
                    method_plan.append((shadow, matching))
            for field_name in fields:
                getters = [
                    a
                    for a in advice
                    if a.pointcut.matches_shadow(cls, field_name, JoinPointKind.FIELD_GET)
                ]
                setters = [
                    a
                    for a in advice
                    if a.pointcut.matches_shadow(cls, field_name, JoinPointKind.FIELD_SET)
                ]
                if getters or setters:
                    field_plan.append((cls, field_name, getters, setters))

        # cflow() residues need the join point stack populated at their
        # inner pointcuts' shadows even when no advice runs there; weave
        # tracking-only wrappers for those (AspectJ instruments cflow entry
        # shadows the same way).
        inner_pointcuts = [
            inner
            for a in advice
            for inner in a.pointcut.cflow_inner_pointcuts()
        ]
        if inner_pointcuts:
            advised = {(shadow.cls, shadow.name) for shadow, _ in method_plan}
            for cls in targets:
                for shadow in method_shadows(cls):
                    if (shadow.cls, shadow.name) in advised:
                        continue
                    if any(
                        inner.matches_shadow(
                            cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                        )
                        for inner in inner_pointcuts
                    ):
                        advised.add((shadow.cls, shadow.name))
                        method_plan.append((shadow, []))

        for shadow, matching in method_plan:
            wrapper = self._make_method_wrapper(shadow, matching)
            previous = shadow.cls.__dict__.get(shadow.name, _MISSING)
            setattr(shadow.cls, shadow.name, wrapper)
            deployment.members.append(
                _WovenMember(shadow.cls, shadow.name, wrapper, previous)
            )

        for cls, field_name, getters, setters in field_plan:
            previous = cls.__dict__.get(field_name, _MISSING)
            default = previous if previous is not _MISSING else _MISSING
            if isinstance(default, _WovenField):  # re-weave keeps the original default
                default = default._class_default
            descriptor = _WovenField(field_name, getters, setters, default)
            setattr(cls, field_name, descriptor)
            deployment.members.append(
                _WovenMember(cls, field_name, descriptor, previous)
            )

        if require_match and not deployment.members and not deployment.introductions:
            raise WeavingError(
                f"aspect {type(aspect).__name__} matched nothing in "
                f"[{', '.join(t.__name__ for t in targets)}]"
            )
        self._deployments.append(deployment)
        return deployment

    @staticmethod
    def _make_method_wrapper(shadow: MethodShadow, advice: list[Advice]):
        original = shadow.original

        @functools.wraps(original)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                shadow.name,
                args,
                kwargs,
            )
            with joinpoint_frame(jp):
                applicable = [a for a in advice if a.pointcut.matches_dynamic(jp)]
                if not applicable:
                    return original(self, *args, **kwargs)

                def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                    return original(self, *call_args, **call_kwargs)

                return run_advice_chain(applicable, jp, proceed)

        wrapper.__woven__ = True  # type: ignore[attr-defined]
        wrapper.__woven_original__ = original  # type: ignore[attr-defined]
        return wrapper

    def undeploy(self, deployment: Deployment) -> None:
        """Reverse one deployment (most-recent-first when they overlap)."""
        if not deployment.active:
            return
        for member in reversed(deployment.members):
            member.revert()
        for applied in reversed(deployment.introductions):
            applied.revert()
        deployment.active = False

    def undeploy_all(self) -> None:
        """Reverse every active deployment, most recent first."""
        for deployment in reversed(self.deployments):
            self.undeploy(deployment)


#: The default process-wide weaver used by :func:`deploy` / :func:`undeploy`.
default_weaver = Weaver()


def deploy(
    aspect: Aspect,
    targets: Iterable[type],
    *,
    fields: Iterable[str] = (),
    require_match: bool = True,
) -> Deployment:
    """Deploy on the default weaver; see :meth:`Weaver.deploy`."""
    return default_weaver.deploy(
        aspect, targets, fields=fields, require_match=require_match
    )


def undeploy(deployment: Deployment) -> None:
    """Undeploy from the default weaver."""
    default_weaver.undeploy(deployment)


class deployed:
    """Context manager: aspect woven inside the block, restored after.

    ::

        with deployed(Tracing(), [Node]):
            site.render()          # advice active
        site.render()              # original behaviour
    """

    def __init__(
        self,
        aspect: Aspect,
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        weaver: Weaver | None = None,
    ):
        self._aspect = aspect
        self._targets = list(targets)
        self._fields = fields
        self._weaver = weaver or default_weaver
        self._deployment: Deployment | None = None

    def __enter__(self) -> Deployment:
        self._deployment = self._weaver.deploy(
            self._aspect, self._targets, fields=self._fields
        )
        return self._deployment

    def __exit__(self, *exc_info) -> None:
        if self._deployment is not None:
            self._weaver.undeploy(self._deployment)
