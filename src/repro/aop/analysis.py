"""Static weave-plan analysis: find silent mis-weaving before deploying.

The paper's central risk is an aspect whose pointcut quietly matches
nothing (or the wrong shadows): navigation semantics change for an
audience with no error anywhere.  AspectJ answers this with compile-time
``Xlint`` diagnostics (``adviceDidNotMatch``, precedence warnings); this
module is the equivalent for our weaver — an analyzer that computes the
*would-be* weave plan from the same :class:`~repro.aop.weaver.ShadowIndex`
scans :meth:`~repro.aop.runtime.WeaverRuntime.deploy` plans from, without
mutating a single class.

Three analysis families, each yielding typed :class:`Diagnostic` records
with stable codes:

**Weave-plan lint** (``APL0xx``) — :func:`analyze_deployment` /
:func:`analyze_runtime`:

- ``APL001 pointcut-matches-nothing`` — an advice whose pointcut matches
  no shadow in any target (the classic typo'd name; ``require_match``
  only catches an aspect *entirely* unmatched, not one advice of many);
- ``APL002 advice-shadowed`` — an outer around advice that never calls
  ``proceed()`` while other advice (inner arounds, earlier deployments)
  sits beneath it on the same shadow and can therefore never run;
- ``APL003 ambiguous-precedence`` — advice from two *different* aspect
  classes at the same ``order`` on one shadow: their nesting is decided
  by deployment order alone (stacking several instances of one aspect
  class — the navigation-stack idiom — is deliberate and not flagged);
- ``APL004 residue-on-hot-shadow`` — advice with a genuinely per-call
  residue (``cflow``/``target``/``args``) landing on a shadow the bench
  marks hot (:data:`DEFAULT_HOT_SHADOWS`), where the generic dispatch
  tier's per-call tests are paid on the serving path;
- ``APL005 scope-unweakrefable`` — instance-scoping members without a
  ``__weakref__`` slot, which the weaver must pin strongly for the life
  of the deployment;
- ``APL006 introduction-conflict`` — an introduction (without
  ``replace=True``) whose member name already exists on a matching
  target, or collides with an earlier introduction in the same plan;
- ``APL007 monitor-tier-pinned`` (advisory) — observation-only,
  residue-free advice that *could* dispatch from the zero-wrapper
  ``sys.monitoring`` tier but is pinned to a wrapper tier by the plan
  itself: an instance scope, a generator/inherited member, or stacking
  above an earlier wrapper-tier deployment on the same shadow.
  Environment gating (interpreter < 3.12, ``REPRO_AOP_MONITOR=0``) is
  deliberately *not* flagged — it is not a property of the plan, and
  diagnostics stay identical across the CI interpreter matrix;
- ``APL008 generator-never-proceeds`` — generator advice
  (``@generator``, the aspectlib protocol) whose body can never yield
  ``proceed``: every advised call returns the generator's ``return_``
  value and the original never runs — legitimate for a deliberate stub,
  but usually a forgotten ``yield proceed``.

**Codegen source verification** (``APL1xx``) —
:func:`verify_codegen_templates` renders every generated-wrapper template
shape (method and field, scoped and unscoped, marker and id dispatch,
rendered and packed signatures), compiles each and walks its AST/symbol
table:

- ``APL101 codegen-syntax-error`` — the source does not compile;
- ``APL102 codegen-free-name`` — a name lookup that is neither a factory
  parameter, a local, nor an allow-listed builtin (an injected free name
  would ``NameError`` only when the wrapper finally runs — or worse,
  silently resolve against a polluted namespace);
- ``APL103 codegen-closure-capture`` — a closure capturing factory-level
  state beyond the factory parameters and its nested functions (shared
  mutable state smuggled across calls);
- ``APL104 codegen-signature-drift`` — a passthrough ``return
  _original(...)`` / ``return _run(...)`` that does not forward the
  wrapper's own parameters exactly, in order.

**Concurrency lint** (``APL2xx``) — :func:`analyze_concurrency`:

- ``APL201 unsynchronized-shared-write`` (advisory) — an advice body
  writing shared (non-``self``, non-local) state outside any obvious
  lock; renders run lock-free and concurrent in the serving layer, so a
  bare read-modify-write on a module global loses updates.

:meth:`~repro.aop.runtime.DeploymentSet.add` runs this analyzer on demand
via its ``lint="warn"|"error"`` mode, and the CLI front is
``python -m repro.tools aop lint`` (see :mod:`repro.tools.cli`).
"""

from __future__ import annotations

import ast
import inspect
import symtable
import textwrap
import warnings
import weakref
from dataclasses import dataclass
from types import FunctionType
from typing import Any, Iterable, Sequence

from . import monitor as _monitor
from .advice import Advice, AdviceKind
from .aspect import Aspect
from .codegen import (
    _FILENAME,
    _field_source,
    _module_static_source,
    _render_signature,
    _scoped_static_source,
    _static_source,
)
from .errors import WeavingError
from .joinpoint import JoinPointKind
from .pointcut import execution
from .weaver import InstanceScope, ShadowIndex

#: Shadows the committed benchmark prices per HTTP request (the serving
#: path's advised renders — ``serve_page_ns`` in the gated bench series).
#: A per-call residue landing here drops the shadow to the generic
#: dispatch tier on the hottest path in the repo.
DEFAULT_HOT_SHADOWS = frozenset(
    {"PageRenderer.render_node", "PageRenderer.render_home"}
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_ADVISORY = "advisory"

#: Builtins the generated templates use deliberately (they are also in
#: ``codegen._RESERVED_PARAM_NAMES`` so original signatures cannot shadow
#: them).  Any *other* global lookup in a generated source is a defect.
_ALLOWED_GLOBALS = frozenset(
    {
        "type",
        "id",
        "len",
        "dict",
        "Exception",
        "IndexError",
        "AttributeError",
        "KeyError",
        # Generator-advice templates (the inlined send/throw protocol).
        "isinstance",
        "RuntimeError",
        "StopIteration",
    }
)


class AopLintWarning(UserWarning):
    """Category for diagnostics surfaced through ``lint="warn"``."""


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, with a stable code and a joinpoint location."""

    #: Stable machine code (``APL001``...); see the module docstring table.
    code: str
    #: Human slug for the code (``pointcut-matches-nothing``...).
    name: str
    #: ``"error"``, ``"warning"`` or ``"advisory"``.
    severity: str
    message: str
    #: Joinpoint location (``Class.member``) when the finding has one.
    site: str | None = None
    #: Owning aspect class name, when the finding belongs to one.
    aspect: str | None = None
    #: Offending advice name, when the finding belongs to one.
    advice: str | None = None

    def format(self) -> str:
        where = f" at {self.site}" if self.site else ""
        owner = f" [{self.aspect}]" if self.aspect else ""
        return (
            f"{self.code} {self.name} ({self.severity}){where}{owner}: "
            f"{self.message}"
        )


@dataclass(frozen=True)
class PlanEntry:
    """One would-be deployment: an aspect over targets, optionally scoped.

    The analyzer's unit of input — :func:`analyze_plan` takes a sequence
    of these in deployment order (later entries wrap earlier ones, like
    sequential :meth:`~repro.aop.runtime.WeaverRuntime.deploy` calls).
    """

    aspect: Aspect
    #: Classes and/or modules (module-function weaving) to plan over.
    targets: tuple[Any, ...]
    fields: tuple[str, ...] = ()
    #: Scope members the deployment would cover (None = class-wide).
    scope: Any = None


# -- weave-plan lint -----------------------------------------------------------


def _advice_proceeds(function: Any) -> bool | None:
    """Whether *function* can ever call ``proceed`` (None = unknowable).

    A purely lexical test: any mention of a ``proceed`` attribute or name
    — called or merely referenced — counts as proceeding, so the check
    only flags advice that *cannot* proceed, never advice that might.
    """
    try:
        source = textwrap.dedent(inspect.getsource(function))
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "proceed":
            return True
        if isinstance(node, ast.Name) and node.id == "proceed":
            return True
    return False


def _scope_members(scope: Any) -> list[Any]:
    if scope is None:
        return []
    if isinstance(scope, InstanceScope):
        return scope.instances()
    return list(scope)


def _signature(cls: type, name: str) -> str:
    return f"{cls.__name__}.{name}"


def analyze_plan(
    entries: Sequence[PlanEntry],
    *,
    hot_shadows: Iterable[str] = DEFAULT_HOT_SHADOWS,
    index: ShadowIndex | None = None,
) -> list[Diagnostic]:
    """Compute the would-be weave plan for *entries* and lint it.

    Mirrors :meth:`WeaverRuntime.deploy`'s planning — the same
    :class:`ShadowIndex` scans, the same ``matches_shadow`` calls over
    methods, registered fields and introduced members — but never touches
    a class.  Entries are analyzed in deployment order, so cross-entry
    findings (``APL002``/``APL003``/``APL006``) see the same stacking a
    real :class:`~repro.aop.runtime.DeploymentSet` would produce.
    """
    index = index if index is not None else ShadowIndex()
    hot = frozenset(hot_shadows)
    diags: list[Diagnostic] = []
    # (cls, member, kind) -> [(entry_index, aspect_name, advice)], in
    # deployment order; the cross-entry checks below read this back.
    chains: dict[tuple[type, str, JoinPointKind], list[tuple[int, str, Advice]]] = {}
    # cls -> member names introduced by earlier entries in this plan.
    introduced: dict[type, set[str]] = {}
    # cls -> function members introduced earlier (they are weavable
    # shadows for this and later entries, exactly as in deploy()).
    introduced_functions: dict[type, set[str]] = {}
    # (entry position, cls, member) -> (aspect name, advice group): the
    # per-shadow method-execution groups each entry would weave — the
    # tier planner's unit of work, read back by the APL007 pass.
    method_groups: dict[tuple[int, type, str], tuple[str, list[Advice]]] = {}

    for position, entry in enumerate(entries):
        aspect = entry.aspect
        aspect.validate()
        aspect_name = type(aspect).__name__
        advice = sorted(aspect.advice(), key=lambda a: a.order)

        for introduction in aspect.introductions():
            for cls in entry.targets:
                if not isinstance(cls, type):
                    continue  # introductions graft class members only
                if not introduction.matches(cls):
                    continue
                exists = (
                    introduction.name in cls.__dict__
                    or introduction.name in introduced.get(cls, ())
                )
                if exists and not introduction.replace:
                    diags.append(
                        Diagnostic(
                            code="APL006",
                            name="introduction-conflict",
                            severity=SEVERITY_ERROR,
                            message=(
                                f"introducing {introduction.name!r} into "
                                f"{cls.__name__} would conflict with an "
                                "existing member; deployment raises unless "
                                "replace=True"
                            ),
                            site=_signature(cls, introduction.name),
                            aspect=aspect_name,
                        )
                    )
                    continue
                introduced.setdefault(cls, set()).add(introduction.name)
                if isinstance(introduction.member, FunctionType):
                    introduced_functions.setdefault(cls, set()).add(
                        introduction.name
                    )

        for item in advice:
            if item.generator and _advice_proceeds(item.function) is False:
                diags.append(
                    Diagnostic(
                        code="APL008",
                        name="generator-never-proceeds",
                        severity=SEVERITY_WARNING,
                        message=(
                            f"generator advice {item.name!r} can never yield "
                            "proceed; the original never runs and every "
                            "advised call returns its return_ value — add "
                            "`yield proceed` (or keep a deliberate stub "
                            "silent by mentioning proceed)"
                        ),
                        aspect=aspect_name,
                        advice=item.name,
                    )
                )
            matched: list[tuple[type, str, JoinPointKind]] = []
            for cls in entry.targets:
                names = [shadow.name for shadow in index.shadows(cls)]
                names.extend(introduced_functions.get(cls, ()))
                for name in names:
                    if item.pointcut.matches_shadow(
                        cls, name, JoinPointKind.METHOD_EXECUTION
                    ):
                        matched.append((cls, name, JoinPointKind.METHOD_EXECUTION))
                for field_name in entry.fields:
                    for kind in (JoinPointKind.FIELD_GET, JoinPointKind.FIELD_SET):
                        if item.pointcut.matches_shadow(cls, field_name, kind):
                            matched.append((cls, field_name, kind))
            if not matched:
                targets = ", ".join(t.__name__ for t in entry.targets)
                diags.append(
                    Diagnostic(
                        code="APL001",
                        name="pointcut-matches-nothing",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"{item.kind.value} advice {item.name!r} "
                            f"({item.pointcut!r}) matches no join point "
                            f"shadow in [{targets}] — deployment would "
                            "silently weave nothing for it"
                        ),
                        aspect=aspect_name,
                        advice=item.name,
                    )
                )
                continue
            per_call = item.residue_parts()[1]
            for cls, name, kind in matched:
                chains.setdefault((cls, name, kind), []).append(
                    (position, aspect_name, item)
                )
                if kind is JoinPointKind.METHOD_EXECUTION:
                    method_groups.setdefault(
                        (position, cls, name), (aspect_name, [])
                    )[1].append(item)
                signature = _signature(cls, name)
                if per_call is not None and signature in hot:
                    diags.append(
                        Diagnostic(
                            code="APL004",
                            name="residue-on-hot-shadow",
                            severity=SEVERITY_WARNING,
                            message=(
                                f"advice {item.name!r} carries a per-call "
                                f"residue ({per_call!r}) on hot shadow "
                                f"{signature}; the shadow drops to the "
                                "generic dispatch tier and pays the residue "
                                "test on every serve-path call"
                            ),
                            site=signature,
                            aspect=aspect_name,
                            advice=item.name,
                        )
                    )

        flagged_types: set[type] = set()
        for member in _scope_members(entry.scope):
            if type(member) in flagged_types:
                continue
            try:
                weakref.ref(member)
            except TypeError:
                flagged_types.add(type(member))
                diags.append(
                    Diagnostic(
                        code="APL005",
                        name="scope-unweakrefable",
                        severity=SEVERITY_WARNING,
                        message=(
                            f"scope member of type {type(member).__name__!r} "
                            "has no __weakref__ slot; the weaver must pin it "
                            "strongly for the life of the deployment (it "
                            "cannot leave the scope by dying)"
                        ),
                        aspect=type(entry.aspect).__name__,
                    )
                )

    diags.extend(_lint_chains(chains))
    diags.extend(_lint_monitor_pins(entries, method_groups, index))
    return diags


def _lint_chains(
    chains: dict[tuple[type, str, JoinPointKind], list[tuple[int, str, Advice]]],
) -> list[Diagnostic]:
    """Cross-entry checks over each shadow's stacked chain."""
    diags: list[Diagnostic] = []
    for (cls, name, _kind), chain in chains.items():
        signature = _signature(cls, name)

        # APL002: a never-proceeding around shadows everything that runs
        # strictly inside it — inner arounds of its own deployment, and
        # the entire chains of deployments beneath it (earlier entries,
        # which the later wrapper wraps).
        for position, aspect_name, item in chain:
            if item.kind is not AdviceKind.AROUND:
                continue
            if _advice_proceeds(item.function) is not False:
                continue
            own_arounds = [
                a
                for p, _n, a in chain
                if p == position and a.kind is AdviceKind.AROUND
            ]
            inner = own_arounds[own_arounds.index(item) + 1 :]
            beneath = [a for p, _n, a in chain if p < position]
            shadowed = [a.name for a in (*inner, *beneath)]
            if not shadowed:
                continue
            listed = ", ".join(shadowed[:3]) + ("..." if len(shadowed) > 3 else "")
            diags.append(
                Diagnostic(
                    code="APL002",
                    name="advice-shadowed",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"around advice {item.name!r} never calls proceed(); "
                        f"{len(shadowed)} advice beneath it on {signature} "
                        f"can never run ({listed})"
                    ),
                    site=signature,
                    aspect=aspect_name,
                    advice=item.name,
                )
            )

        # APL003: equal order across *different aspect classes* — their
        # nesting is decided by deployment order alone.  Several
        # instances of one class (the navigation-stack idiom) are
        # ordered by deployment on purpose and stay silent.
        seen_pairs: set[tuple[str, str, int]] = set()
        for i, (pos_a, name_a, advice_a) in enumerate(chain):
            for pos_b, name_b, advice_b in chain[i + 1 :]:
                if pos_a == pos_b or name_a == name_b:
                    continue
                if advice_a.order != advice_b.order:
                    continue
                key = (*sorted((name_a, name_b)), advice_a.order)
                if key in seen_pairs:
                    continue
                seen_pairs.add(key)
                diags.append(
                    Diagnostic(
                        code="APL003",
                        name="ambiguous-precedence",
                        severity=SEVERITY_WARNING,
                        message=(
                            f"{name_a} and {name_b} both advise {signature} "
                            f"at order={advice_a.order}; their nesting is "
                            "decided by deployment order alone — give one an "
                            "explicit order to pin precedence"
                        ),
                        site=signature,
                        aspect=name_b,
                    )
                )
    return diags


def _lint_monitor_pins(
    entries: Sequence[PlanEntry],
    groups: dict[tuple[int, type, str], tuple[str, list[Advice]]],
    index: ShadowIndex,
) -> list[Diagnostic]:
    """APL007: monitor-material advice the plan pins to a wrapper tier.

    Walks each entry's per-shadow advice groups in deployment order,
    mirroring :meth:`WeaverRuntime.deploy`'s tier planner: a group whose
    advice is observation-only and residue-free would dispatch from
    ``sys.monitoring`` with zero wrapper frames — unless the plan itself
    forbids it.  Only *actionable plan* properties are flagged (instance
    scope, stacking above a wrapper-tier group); shadow-shape obstacles
    (generators, inherited members, defaulted parameters) are inherent
    to the advised code and stay silent, and whether the host
    interpreter actually has ``sys.monitoring`` is an environment
    question the analyzer deliberately ignores, so findings are stable
    across the CI interpreter matrix.
    """
    diags: list[Diagnostic] = []
    # Shadows some earlier group claims with a wrapper: the tier planner
    # refuses to monitor a shadow whose member is already a woven
    # wrapper (the registration would fire beneath it out of order).
    wrapper_below: set[tuple[type, str]] = set()
    for (position, cls, name), (aspect_name, group) in groups.items():
        site_key = (cls, name)
        if _monitor.advice_obstacle(group) is not None:
            wrapper_below.add(site_key)
            continue
        shadow = next((s for s in index.shadows(cls) if s.name == name), None)
        if shadow is not None and _monitor.shadow_obstacle(shadow) is not None:
            # The member's own shape (generator body, inherited code
            # object, defaulted parameters, ...) rules the monitor tier
            # out.  That is inherent to the advised code, not something
            # reordering or rescoping the plan could fix, so it is not
            # worth an advisory — but the group still installs a
            # wrapper, which pins later groups on the same shadow.
            wrapper_below.add(site_key)
            continue
        entry = entries[position]
        if entry.scope is not None:
            reason = "instance-scoped deployments dispatch through wrapper markers"
        elif site_key in wrapper_below:
            reason = (
                "it stacks above an earlier wrapper-tier deployment "
                "on the same shadow"
            )
        else:
            continue  # takes the monitor tier wherever it is supported
        wrapper_below.add(site_key)
        signature = _signature(cls, name)
        diags.append(
            Diagnostic(
                code="APL007",
                name="monitor-tier-pinned",
                severity=SEVERITY_ADVISORY,
                message=(
                    "observation-only static advice on "
                    f"{signature} is eligible for the zero-wrapper "
                    f"monitor tier but stays on a wrapper tier: {reason}"
                ),
                site=signature,
                aspect=aspect_name,
            )
        )
    return diags


def analyze_deployment(
    aspects: Aspect | Iterable[Aspect],
    targets: Iterable[type],
    *,
    fields: Iterable[str] = (),
    instances: Any = None,
    hot_shadows: Iterable[str] = DEFAULT_HOT_SHADOWS,
    index: ShadowIndex | None = None,
) -> list[Diagnostic]:
    """Lint the deployment ``deploy(aspect, targets, ...)`` would perform.

    *aspects* is one aspect or a sequence (analyzed in deployment order,
    like sequential :meth:`~repro.aop.runtime.DeploymentSet.add` calls
    over the same targets); *instances* narrows every entry to the same
    instance scope, exactly as ``deploy(..., instances=...)`` would.
    Nothing is woven — classes are only scanned.
    """
    if isinstance(aspects, Aspect):
        aspects = [aspects]
    target_tuple = tuple(targets)
    field_tuple = tuple(fields)
    scope = (
        instances
        if instances is None or isinstance(instances, InstanceScope)
        else list(instances)
    )
    entries = [
        PlanEntry(aspect=a, targets=target_tuple, fields=field_tuple, scope=scope)
        for a in aspects
    ]
    return analyze_plan(entries, hot_shadows=hot_shadows, index=index)


def analyze_runtime(
    runtime: Any,
    *,
    hot_shadows: Iterable[str] = DEFAULT_HOT_SHADOWS,
) -> list[Diagnostic]:
    """Lint a live :class:`~repro.aop.runtime.WeaverRuntime`.

    Rebuilds the plan from the runtime's active deployments (their
    aspects, touched classes and scopes, in deployment order), runs the
    weave-plan and concurrency lints over it, and verifies every
    installed wrapper's ``__codegen_source__`` with the codegen checks —
    the live counterpart of pre-deployment analysis.
    """
    entries: list[PlanEntry] = []
    diags: list[Diagnostic] = []
    for deployment in runtime.deployments:
        touched: list[type] = []
        for member in deployment.members:
            if member.cls not in touched:
                touched.append(member.cls)
        for applied in deployment.introductions:
            if applied.cls not in touched:
                touched.append(applied.cls)
        field_names = tuple(
            member.name
            for member in deployment.members
            if hasattr(member.installed, "__set__")
        )
        entries.append(
            PlanEntry(
                aspect=deployment.aspect,
                targets=tuple(touched),
                fields=field_names,
                scope=deployment.scope,
            )
        )
        stats = runtime.deployment_stats(deployment)
        for signature, source in stats.codegen_sources.items():
            diags.extend(verify_wrapper_source(source, label=signature))
    diags.extend(
        analyze_plan(entries, hot_shadows=hot_shadows, index=runtime.shadow_index)
    )
    diags.extend(analyze_concurrency(entry.aspect for entry in entries))
    return diags


# -- concurrency lint ----------------------------------------------------------


def _collect_locals(fn_node: ast.AST) -> set[str]:
    """Names bound inside *fn_node* (params and any assignment target)."""
    bound: set[str] = set()
    args = getattr(fn_node, "args", None)
    if args is not None:
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            bound.update(a.arg for a in group)
        for special in (args.vararg, args.kwarg):
            if special is not None:
                bound.add(special.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            bound.difference_update(node.names)
    return bound


def _write_root(target: ast.AST) -> ast.Name | None:
    """The root ``Name`` of an assignment target (``a.b[c].d`` -> ``a``)."""
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _under_lock(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Whether *node* sits inside a ``with`` whose context names a lock."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                if "lock" in ast.unparse(item.context_expr).lower():
                    return True
        current = parents.get(current)
    return False


def _function_node(tree: ast.Module) -> ast.AST | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return node
    return None


def analyze_concurrency(aspects: Aspect | Iterable[Aspect]) -> list[Diagnostic]:
    """Advisory scan of advice bodies for unsynchronized shared writes.

    Flags assignments (plain or augmented) whose target's root is neither
    a local of the advice body nor its ``self`` — a module global or a
    captured object mutated from advice that the serving layer runs
    lock-free and concurrently — unless the write sits inside a ``with``
    block whose context expression names a lock.  Purely lexical and
    intentionally advisory: it cannot see locks taken by callees.
    """
    if isinstance(aspects, Aspect):
        aspects = [aspects]
    diags: list[Diagnostic] = []
    seen_functions: set[int] = set()
    for aspect in aspects:
        aspect_name = type(aspect).__name__
        for item in aspect.advice():
            if id(item.function) in seen_functions:
                continue
            seen_functions.add(id(item.function))
            try:
                source = textwrap.dedent(inspect.getsource(item.function))
                tree = ast.parse(source)
            except (OSError, TypeError, SyntaxError):
                continue
            fn_node = _function_node(tree)
            if fn_node is None:
                continue
            bound = _collect_locals(fn_node)
            args = getattr(fn_node, "args", None)
            self_name = None
            if item.aspect is not None and args is not None and args.args:
                self_name = args.args[0].arg
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(fn_node):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            for node in ast.walk(fn_node):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    root = _write_root(target)
                    if root is None:
                        continue
                    if isinstance(target, ast.Name):
                        # A bare name is only shared when declared
                        # global/nonlocal (otherwise the store makes it
                        # local); _collect_locals removed declared names.
                        if root.id in bound:
                            continue
                    elif root.id in bound or root.id == self_name:
                        continue
                    if isinstance(target, ast.Name) and root.id in bound:
                        continue
                    if _under_lock(node, parents):
                        continue
                    diags.append(
                        Diagnostic(
                            code="APL201",
                            name="unsynchronized-shared-write",
                            severity=SEVERITY_ADVISORY,
                            message=(
                                f"advice {item.name!r} writes shared state "
                                f"({ast.unparse(target)}) outside any "
                                "obvious lock; advised calls run lock-free "
                                "and concurrently in the serving layer"
                            ),
                            aspect=aspect_name,
                            advice=item.name,
                        )
                    )
    return diags


# -- codegen source verification -----------------------------------------------


def _factory_def(tree: ast.Module) -> ast.FunctionDef | None:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "_factory":
            return node
    return None


def _param_names(fn: ast.FunctionDef) -> list[str]:
    names = [a.arg for a in (*fn.args.posonlyargs, *fn.args.args)]
    if fn.args.vararg is not None:
        names.append(fn.args.vararg.arg)
    names.extend(a.arg for a in fn.args.kwonlyargs)
    if fn.args.kwarg is not None:
        names.append(fn.args.kwarg.arg)
    return names


def _check_globals(source: str, label: str) -> list[Diagnostic]:
    """Every global lookup must be an allow-listed builtin (APL102)."""
    diags: list[Diagnostic] = []
    table = symtable.symtable(source, _FILENAME, "exec")

    def walk(scope: symtable.SymbolTable) -> None:
        if scope.get_type() == "function":
            for symbol in scope.get_symbols():
                if (
                    symbol.is_global()
                    and symbol.is_referenced()
                    and symbol.get_name() not in _ALLOWED_GLOBALS
                ):
                    diags.append(
                        Diagnostic(
                            code="APL102",
                            name="codegen-free-name",
                            severity=SEVERITY_ERROR,
                            message=(
                                f"generated source resolves "
                                f"{symbol.get_name()!r} globally in scope "
                                f"{scope.get_name()!r}; every name in a "
                                "generated wrapper must be a factory "
                                "parameter, a local, or an allow-listed "
                                "builtin"
                            ),
                            site=label,
                        )
                    )
        for child in scope.get_children():
            walk(child)

    walk(table)
    return diags


def _check_captures(
    tree: ast.Module, source: str, label: str
) -> list[Diagnostic]:
    """Closures may capture only factory params and nested defs (APL103).

    A factory-level *assignment* captured by the wrapper would be shared
    mutable state smuggled across every call of the shadow — the exact
    regression this check exists to catch in template edits.
    """
    diags: list[Diagnostic] = []
    factory = _factory_def(tree)
    if factory is None:
        return diags
    allowed = set(_param_names(factory))
    for node in factory.body:
        if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
            allowed.add(node.name)

    table = symtable.symtable(source, _FILENAME, "exec")

    def factory_scope(scope: symtable.SymbolTable) -> symtable.SymbolTable | None:
        for child in scope.get_children():
            if child.get_name() == "_factory":
                return child
            found = factory_scope(child)
            if found is not None:
                return found
        return None

    scope = factory_scope(table)
    if scope is None:
        return diags

    def walk(current: symtable.SymbolTable, bound_above: set[str]) -> None:
        local_names = {
            s.get_name()
            for s in current.get_symbols()
            if s.is_local() or s.is_parameter()
        }
        for child in current.get_children():
            for symbol in child.get_symbols():
                name = symbol.get_name()
                if not symbol.is_free():
                    continue
                if name in local_names or name in bound_above:
                    continue
                diags.append(
                    Diagnostic(
                        code="APL103",
                        name="codegen-closure-capture",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"{child.get_name()!r} captures {name!r}, which "
                            "is not a factory parameter, a nested function, "
                            "or an enclosing call-scope local"
                        ),
                        site=label,
                    )
                )
            walk(child, bound_above | local_names)

    # At factory level only params and nested defs are legitimate
    # closure sources; any other factory-level binding is shared state.
    walk(scope, set())
    for child_table in scope.get_children():
        for symbol in child_table.get_symbols():
            name = symbol.get_name()
            if symbol.is_free() and name not in allowed:
                diags.append(
                    Diagnostic(
                        code="APL103",
                        name="codegen-closure-capture",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"{child_table.get_name()!r} captures factory "
                            f"state {name!r} beyond the factory parameters "
                            "and its nested functions (shared mutable state "
                            "across calls)"
                        ),
                        site=label,
                    )
                )
    return diags


def _expected_forward(fn: ast.FunctionDef, call: ast.Call) -> bool:
    """Whether *call* forwards exactly *fn*'s parameters, in order."""
    expected: list[tuple[str, str]] = [
        ("name", a.arg) for a in (*fn.args.posonlyargs, *fn.args.args)
    ]
    if fn.args.vararg is not None:
        expected.append(("star", fn.args.vararg.arg))
    got: list[tuple[str, str]] = []
    for arg in call.args:
        if isinstance(arg, ast.Name):
            got.append(("name", arg.id))
        elif isinstance(arg, ast.Starred) and isinstance(arg.value, ast.Name):
            got.append(("star", arg.value.id))
        else:
            return False
    if got != expected:
        return False
    if fn.args.kwarg is not None:
        if len(call.keywords) != 1:
            return False
        keyword = call.keywords[0]
        if keyword.arg is not None or not isinstance(keyword.value, ast.Name):
            return False
        return keyword.value.id == fn.args.kwarg.arg
    return not call.keywords


def _check_forwarding(tree: ast.Module, label: str) -> list[Diagnostic]:
    """Passthrough returns must forward the exact signature (APL104).

    Applies to ``return _original(...)`` / ``return _run(...)`` directly
    in a wrapper body — the scoped templates' passthrough/dispatch calls.
    The inlined chain's ``result = _original(self, *jp.args, ...)``
    deliberately forwards the (possibly advice-rewritten) join point
    arguments and is not a passthrough.
    """
    diags: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "wrapper"):
            continue
        returns: list[ast.Return] = []
        stack: list[ast.AST] = list(node.body)
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # _p and around runners forward chain args, not ours
            if isinstance(current, ast.Return):
                returns.append(current)
            stack.extend(ast.iter_child_nodes(current))
        for ret in returns:
            call = ret.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id in ("_original", "_run")
            ):
                continue
            if not _expected_forward(node, call):
                diags.append(
                    Diagnostic(
                        code="APL104",
                        name="codegen-signature-drift",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"wrapper passthrough `{ast.unparse(ret)}` does "
                            "not forward the wrapper's own parameters "
                            "exactly, in order"
                        ),
                        site=label,
                    )
                )
    return diags


def verify_wrapper_source(source: str, *, label: str = "<source>") -> list[Diagnostic]:
    """Run the codegen checks over one generated-wrapper source."""
    try:
        compile(source, _FILENAME, "exec")
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                code="APL101",
                name="codegen-syntax-error",
                severity=SEVERITY_ERROR,
                message=f"generated source does not compile: {exc.msg}",
                site=label,
            )
        ]
    diags = _check_globals(source, label)
    diags.extend(_check_captures(tree, source, label))
    diags.extend(_check_forwarding(tree, label))
    return diags


def _shape_advice(
    kinds: Sequence[AdviceKind | str], *, bound: bool
) -> tuple[Advice, ...]:
    """Sample advice for template enumeration.

    A kind of ``"generator"`` produces a generator-protocol around advice
    (``generator=True``), so the enumeration covers the inlined
    send/throw drive loop alongside the plain chain shapes.
    """
    aspect = object() if bound else None

    def body(jp: Any) -> Any:  # pragma: no cover - never invoked
        return jp

    def gen_body(jp: Any) -> Any:  # pragma: no cover - never invoked
        yield jp

    return tuple(
        Advice(
            kind=AdviceKind.AROUND if kind == "generator" else kind,
            pointcut=execution("*.run"),
            function=gen_body if kind == "generator" else body,
            name=f"a{i}",
            aspect=aspect,
            generator=kind == "generator",
        )
        for i, kind in enumerate(kinds)
    )


def _sample_original(self: Any, node: Any, depth: int = 1) -> Any:
    """A renderable signature for the exact-forwarding template variants."""
    return (node, depth)  # pragma: no cover - never invoked


def enumerate_template_sources() -> list[tuple[str, str]]:
    """``(label, source)`` for every generated-wrapper template shape.

    Covers method, field and module-function templates, scoped and
    unscoped dispatch, marker and id membership, rendered and packed
    signatures, and every advice-kind mix that changes the rendered code
    path (befores, around nesting, the exception envelope, bound vs
    unbound advice, and the generator-protocol drive loop) — the matrix
    CI verifies so template edits cannot silently regress.
    """
    shapes: list[tuple[str, tuple[Advice, ...]]] = [
        ("before", _shape_advice([AdviceKind.BEFORE], bound=True)),
        ("around", _shape_advice([AdviceKind.AROUND], bound=True)),
        (
            "full",
            _shape_advice(
                [
                    AdviceKind.BEFORE,
                    AdviceKind.AROUND,
                    AdviceKind.AFTER_RETURNING,
                    AdviceKind.AFTER_THROWING,
                    AdviceKind.AFTER,
                ],
                bound=True,
            ),
        ),
        (
            "stacked-arounds",
            _shape_advice(
                [AdviceKind.AROUND, AdviceKind.AROUND, AdviceKind.BEFORE],
                bound=True,
            ),
        ),
        (
            "unbound",
            _shape_advice([AdviceKind.BEFORE, AdviceKind.AROUND], bound=False),
        ),
        ("generator", _shape_advice(["generator"], bound=True)),
        (
            "generator-stacked",
            _shape_advice(
                [AdviceKind.AROUND, "generator", AdviceKind.BEFORE],
                bound=True,
            ),
        ),
        ("generator-unbound", _shape_advice(["generator"], bound=False)),
    ]
    sig = _render_signature(_sample_original)
    assert sig is not None  # the sample is renderable by construction
    sources: list[tuple[str, str]] = []
    for label, advice in shapes:
        sources.append((f"method/{label}/static", _static_source(advice)[0]))
        # Marker templates render the fixed marker slot — the source is
        # scope-independent by design (the real marker is retargeted into
        # the compiled code per wrapper), so one shape per mix suffices.
        for scope_label, marked in (("marker", True), ("id", False)):
            for sig_label, rendered in (("sig", sig), ("packed", None)):
                sources.append(
                    (
                        f"method/{label}/scoped-{scope_label}-{sig_label}",
                        _scoped_static_source(advice, marked, rendered)[0],
                    )
                )
    field_shapes: list[tuple[str, Sequence[AdviceKind], Sequence[AdviceKind]]] = [
        ("get-before", [AdviceKind.BEFORE], []),
        ("set-around", [], [AdviceKind.AROUND]),
        (
            "get-set-full",
            [AdviceKind.BEFORE, AdviceKind.AROUND, AdviceKind.AFTER],
            [
                AdviceKind.BEFORE,
                AdviceKind.AFTER_RETURNING,
                AdviceKind.AFTER_THROWING,
            ],
        ),
        ("get-around-set-after", [AdviceKind.AROUND], [AdviceKind.AFTER]),
    ]
    for label, get_kinds, set_kinds in field_shapes:
        source = _field_source(
            _shape_advice(get_kinds, bound=True),
            _shape_advice(set_kinds, bound=False),
        )[0]
        sources.append((f"field/{label}", source))
    field_gen = _field_source(
        _shape_advice(["generator"], bound=True),
        _shape_advice([AdviceKind.AFTER], bound=True),
    )[0]
    sources.append(("field/get-generator-set-after", field_gen))
    module_shapes: list[tuple[str, Sequence[AdviceKind | str]]] = [
        ("before", [AdviceKind.BEFORE]),
        (
            "full",
            [
                AdviceKind.BEFORE,
                AdviceKind.AROUND,
                AdviceKind.AFTER_RETURNING,
                AdviceKind.AFTER_THROWING,
                AdviceKind.AFTER,
            ],
        ),
        ("generator", ["generator"]),
        ("generator-stacked", [AdviceKind.AROUND, "generator", AdviceKind.BEFORE]),
    ]
    for label, kinds in module_shapes:
        source = _module_static_source(_shape_advice(kinds, bound=True))[0]
        sources.append((f"module/{label}", source))
    return sources


def verify_codegen_templates() -> list[Diagnostic]:
    """Verify every template shape (see :func:`enumerate_template_sources`)."""
    diags: list[Diagnostic] = []
    for label, source in enumerate_template_sources():
        diags.extend(verify_wrapper_source(source, label=label))
    return diags


# -- the deploy-time gate ------------------------------------------------------


def lint_gate(
    aspect: Aspect,
    targets: Iterable[type],
    *,
    fields: Iterable[str] = (),
    instances: Any = None,
    mode: str,
    index: ShadowIndex | None = None,
) -> list[Diagnostic]:
    """The opt-in analyzer behind ``DeploymentSet.add(..., lint=...)``.

    ``mode="warn"`` surfaces every finding as an :class:`AopLintWarning`;
    ``mode="error"`` additionally raises :class:`WeavingError` *before
    anything is woven* when an error-severity finding exists.
    """
    if mode not in ("warn", "error"):
        raise ValueError(
            f"lint mode must be 'warn' or 'error', not {mode!r}"
        )
    diags = analyze_deployment(
        aspect, targets, fields=fields, instances=instances, index=index
    )
    diags.extend(analyze_concurrency(aspect))
    errors = [d for d in diags if d.severity == SEVERITY_ERROR]
    if mode == "error" and errors:
        raise WeavingError(
            "aspect lint failed (nothing was woven):\n"
            + "\n".join(d.format() for d in errors)
        )
    for diagnostic in diags:
        warnings.warn(diagnostic.format(), AopLintWarning, stacklevel=3)
    return diags
