"""Inter-type declarations (introductions).

AspectJ lets an aspect *introduce* members into other classes; the
navigation aspect uses this to graft navigational capabilities (anchors,
access-structure hooks) onto conceptual-model classes that know nothing
about the web.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any

from .errors import IntroductionError


@dataclass(frozen=True)
class Introduction:
    """Add *member* (function, property or value) as *name* on matching classes.

    ``class_pattern`` uses the same wildcard syntax as pointcut class
    patterns.  By default an introduction refuses to overwrite an existing
    member — crosscutting code silently replacing base behaviour is exactly
    the tangling the paper warns about — pass ``replace=True`` to allow it.
    """

    class_pattern: str
    name: str
    member: Any
    replace: bool = False

    def matches(self, cls: type) -> bool:
        return fnmatch.fnmatchcase(
            cls.__name__, self.class_pattern
        ) or fnmatch.fnmatchcase(
            f"{cls.__module__}.{cls.__qualname__}", self.class_pattern
        )

    def apply(self, cls: type) -> "AppliedIntroduction | None":
        if not self.matches(cls):
            return None
        existing = cls.__dict__.get(self.name, _MISSING)
        if existing is not _MISSING and not self.replace:
            raise IntroductionError(
                f"cannot introduce {self.name!r} into {cls.__name__}: member exists "
                "(use replace=True to override)"
            )
        setattr(cls, self.name, self.member)
        return AppliedIntroduction(cls=cls, name=self.name, previous=existing)


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()


@dataclass
class AppliedIntroduction:
    """Bookkeeping needed to undo an introduction at undeploy time."""

    cls: type
    name: str
    previous: Any

    def revert(self) -> None:
        if self.previous is _MISSING:
            # Only delete if it is still our member (not re-overridden).
            if self.name in self.cls.__dict__:
                delattr(self.cls, self.name)
        else:
            setattr(self.cls, self.name, self.previous)


def introduce(
    class_pattern: str, name: str, member: Any, *, replace: bool = False
) -> Introduction:
    """Convenience constructor matching the pointcut helpers' style."""
    return Introduction(class_pattern, name, member, replace)
