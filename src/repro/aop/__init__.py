"""An AspectJ-like aspect-oriented programming framework for Python.

The paper's section 5 asks whether aspect-oriented tools are powerful
enough to express navigation separately.  This package is our answer
substrate: join points (method execution, field get/set), a composable
pointcut language with a textual DSL, five advice kinds, inter-type
introductions and a reversible runtime weaver — held as a first-class
:class:`WeaverRuntime` you scope, transact against and introspect::

    from repro.aop import Aspect, WeaverRuntime, around

    class Timing(Aspect):
        @around("execution(*.render)")
        def time_it(self, jp):
            start = perf_counter()
            try:
                return jp.proceed()
            finally:
                print(jp.signature, perf_counter() - start)

    runtime = WeaverRuntime("timing")
    with runtime.transaction([PageRenderer]) as tx:
        tx.add(Timing())
        renderer.render()          # advice active
        tx.undeploy()              # original behaviour restored

The pre-runtime API (``Weaver``, free ``deploy``/``deploy_all``/
``undeploy``, ``deployed``) still works as deprecation shims over
:data:`default_runtime`; see :mod:`repro.aop.legacy` for the migration
table.
"""

from .advice import Advice, AdviceKind
from .analysis import (
    AopLintWarning,
    Diagnostic,
    PlanEntry,
    analyze_concurrency,
    analyze_deployment,
    analyze_plan,
    analyze_runtime,
    verify_codegen_templates,
    verify_wrapper_source,
)
from .codegen import CodegenCache, codegen_enabled
from .monitor import MonitorBridge, monitor_enabled, monitor_supported
from .aspect import (
    Aspect,
    AspectBuilder,
    DeclareError,
    FluentAspect,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    declare_error,
)
from .errors import (
    AopError,
    IntroductionError,
    PointcutSyntaxError,
    WeavingError,
)
from .introduce import Introduction, introduce
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    JoinPointPool,
    ProceedingJoinPoint,
    current_stack,
)
from .parser import parse_pointcut
from .pointcut import (
    Pointcut,
    args,
    cflow,
    cflowbelow,
    execution,
    field_get,
    field_set,
    target,
    within,
)
from .weaver import (
    CompiledChain,
    Deployment,
    InstanceScope,
    ShadowIndex,
    method_shadows,
    run_advice_chain,
    shadow_index,
)
from .runtime import (
    DeploymentSet,
    DeploymentStats,
    WeaverRuntime,
    WovenSite,
    default_runtime,
)
from .legacy import (
    Weaver,
    default_weaver,
    deploy,
    deploy_all,
    deployed,
    undeploy,
)

__all__ = [
    "Advice",
    "AdviceKind",
    "AopError",
    "AopLintWarning",
    "Aspect",
    "AspectBuilder",
    "CodegenCache",
    "CompiledChain",
    "DeclareError",
    "Deployment",
    "DeploymentSet",
    "DeploymentStats",
    "Diagnostic",
    "FluentAspect",
    "InstanceScope",
    "Introduction",
    "IntroductionError",
    "JoinPoint",
    "JoinPointKind",
    "JoinPointPool",
    "MonitorBridge",
    "PlanEntry",
    "Pointcut",
    "PointcutSyntaxError",
    "ProceedingJoinPoint",
    "ShadowIndex",
    "Weaver",
    "WeaverRuntime",
    "WeavingError",
    "WovenSite",
    "after",
    "after_returning",
    "after_throwing",
    "analyze_concurrency",
    "analyze_deployment",
    "analyze_plan",
    "analyze_runtime",
    "args",
    "around",
    "before",
    "cflow",
    "cflowbelow",
    "codegen_enabled",
    "current_stack",
    "declare_error",
    "default_runtime",
    "default_weaver",
    "deploy",
    "deploy_all",
    "deployed",
    "execution",
    "field_get",
    "field_set",
    "introduce",
    "method_shadows",
    "monitor_enabled",
    "monitor_supported",
    "parse_pointcut",
    "run_advice_chain",
    "shadow_index",
    "target",
    "undeploy",
    "verify_codegen_templates",
    "verify_wrapper_source",
    "within",
]
