"""An AspectJ-like aspect-oriented programming framework for Python.

The paper's section 5 asks whether aspect-oriented tools are powerful
enough to express navigation separately.  This package is our answer
substrate: join points (method execution, field get/set, module-level
function execution), a composable pointcut language with a textual DSL,
five advice kinds plus aspectlib-style *generator advice*, inter-type
introductions and a reversible runtime weaver — held as a first-class
:class:`WeaverRuntime` you scope, transact against and introspect.
:meth:`WeaverRuntime.weave` is the one deployment entry point::

    from repro.aop import Aspect, WeaverRuntime, generator, proceed, return_

    class Timing(Aspect):
        @generator("execution(*.render)")
        def time_it(self, jp):
            start = perf_counter()
            result = yield proceed          # run the original
            print(jp.signature, perf_counter() - start)
            yield return_(result)

    runtime = WeaverRuntime("timing")
    with runtime.weave(PageRenderer, Timing()):
        renderer.render()          # advice active
    renderer.render()              # original behaviour restored

``weave()`` also accepts modules and plain module-level functions
(``runtime.weave(xmlcore.parser.parse, Timing())``) — module globals are
rebound on deploy and restored exactly on undeploy/rollback.

The pre-runtime API (``Weaver``, free ``deploy``/``deploy_all``/
``undeploy``, ``deployed``) still works as deprecation shims over
:data:`default_runtime`; see :mod:`repro.aop.legacy` for the migration
table.
"""

from .advice import Advice, AdviceKind, proceed, return_
from .analysis import (
    AopLintWarning,
    Diagnostic,
    PlanEntry,
    analyze_concurrency,
    analyze_deployment,
    analyze_plan,
    analyze_runtime,
    verify_codegen_templates,
    verify_wrapper_source,
)
from .codegen import CodegenCache, codegen_enabled
from .monitor import MonitorBridge, monitor_enabled, monitor_supported
from .aspect import (
    Aspect,
    AspectBuilder,
    DeclareError,
    FluentAspect,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    declare_error,
    generator,
)
from .errors import (
    AopError,
    IntroductionError,
    PointcutSyntaxError,
    WeavingError,
)
from .introduce import Introduction, introduce
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    JoinPointPool,
    ProceedingJoinPoint,
    current_stack,
)
from .parser import parse_pointcut
from .pointcut import (
    Pointcut,
    args,
    cflow,
    cflowbelow,
    execution,
    field_get,
    field_set,
    target,
    within,
)
from .weaver import (
    CompiledChain,
    Deployment,
    InstanceScope,
    ModuleShadow,
    ShadowIndex,
    method_shadows,
    module_shadows,
    run_advice_chain,
    shadow_index,
)
from .runtime import (
    DeploymentSet,
    DeploymentStats,
    Weave,
    WeaverRuntime,
    WovenSite,
    default_runtime,
)
from .legacy import (
    Weaver,
    default_weaver,
    deploy,
    deploy_all,
    deployed,
    undeploy,
)

__all__ = [
    "Advice",
    "AdviceKind",
    "AopError",
    "AopLintWarning",
    "Aspect",
    "AspectBuilder",
    "CodegenCache",
    "CompiledChain",
    "DeclareError",
    "Deployment",
    "DeploymentSet",
    "DeploymentStats",
    "Diagnostic",
    "FluentAspect",
    "InstanceScope",
    "Introduction",
    "IntroductionError",
    "JoinPoint",
    "JoinPointKind",
    "JoinPointPool",
    "ModuleShadow",
    "MonitorBridge",
    "PlanEntry",
    "Pointcut",
    "PointcutSyntaxError",
    "ProceedingJoinPoint",
    "ShadowIndex",
    "Weave",
    "Weaver",
    "WeaverRuntime",
    "WeavingError",
    "WovenSite",
    "after",
    "after_returning",
    "after_throwing",
    "analyze_concurrency",
    "analyze_deployment",
    "analyze_plan",
    "analyze_runtime",
    "args",
    "around",
    "before",
    "cflow",
    "cflowbelow",
    "codegen_enabled",
    "current_stack",
    "declare_error",
    "default_runtime",
    "default_weaver",
    "deploy",
    "deploy_all",
    "deployed",
    "execution",
    "field_get",
    "field_set",
    "generator",
    "introduce",
    "method_shadows",
    "module_shadows",
    "monitor_enabled",
    "monitor_supported",
    "parse_pointcut",
    "proceed",
    "return_",
    "run_advice_chain",
    "shadow_index",
    "target",
    "undeploy",
    "verify_codegen_templates",
    "verify_wrapper_source",
    "within",
]
