"""An AspectJ-like aspect-oriented programming framework for Python.

The paper's section 5 asks whether aspect-oriented tools are powerful
enough to express navigation separately.  This package is our answer
substrate: join points (method execution, field get/set), a composable
pointcut language with a textual DSL, five advice kinds, inter-type
introductions and a reversible runtime weaver::

    from repro.aop import Aspect, around, deploy, deployed

    class Timing(Aspect):
        @around("execution(*.render)")
        def time_it(self, jp):
            start = perf_counter()
            try:
                return jp.proceed()
            finally:
                print(jp.signature, perf_counter() - start)

    with deployed(Timing(), [PageRenderer]):
        renderer.render()
"""

from .advice import Advice, AdviceKind
from .codegen import codegen_enabled
from .aspect import (
    Aspect,
    DeclareError,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    declare_error,
)
from .errors import (
    AopError,
    IntroductionError,
    PointcutSyntaxError,
    WeavingError,
)
from .introduce import Introduction, introduce
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    JoinPointPool,
    ProceedingJoinPoint,
    current_stack,
)
from .parser import parse_pointcut
from .pointcut import (
    Pointcut,
    args,
    cflow,
    cflowbelow,
    execution,
    field_get,
    field_set,
    target,
    within,
)
from .weaver import (
    CompiledChain,
    Deployment,
    ShadowIndex,
    Weaver,
    default_weaver,
    deploy,
    deploy_all,
    deployed,
    method_shadows,
    run_advice_chain,
    shadow_index,
    undeploy,
)

__all__ = [
    "Advice",
    "AdviceKind",
    "CompiledChain",
    "DeclareError",
    "AopError",
    "Aspect",
    "Deployment",
    "ShadowIndex",
    "Introduction",
    "IntroductionError",
    "JoinPoint",
    "JoinPointKind",
    "JoinPointPool",
    "Pointcut",
    "PointcutSyntaxError",
    "ProceedingJoinPoint",
    "Weaver",
    "WeavingError",
    "after",
    "after_returning",
    "after_throwing",
    "args",
    "around",
    "before",
    "cflow",
    "cflowbelow",
    "codegen_enabled",
    "declare_error",
    "current_stack",
    "default_weaver",
    "deploy",
    "deploy_all",
    "deployed",
    "execution",
    "field_get",
    "field_set",
    "introduce",
    "method_shadows",
    "parse_pointcut",
    "run_advice_chain",
    "shadow_index",
    "target",
    "undeploy",
    "within",
]
