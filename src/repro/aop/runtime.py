"""First-class weaver runtimes: scoped state, transactions, introspection.

The paper's thesis is that access structures are aspects you can swap
without touching the base program; this module makes the *weaver itself*
an object you hold, scope, transact against and inspect — the shape
AspectJ's per-deployment weaver state and JAsCo's runtime aspect
containers converge on:

- :class:`WeaverRuntime` — an explicit runtime with isolated
  :class:`~repro.aop.weaver.ShadowIndex`, cflow-watcher count and codegen
  cache (the process-global singletons of earlier revisions are simply the
  *default* runtime, :data:`default_runtime`);
- :meth:`WeaverRuntime.weave` — **the** deployment entry point: one
  polymorphic call accepting a class, a module, a module-level function
  or a list of those, returning a context-managed :class:`Weave` handle
  (the older ``deploy`` / ``deploy_all`` / ``DeploymentSet.add`` surface
  survives as ``DeprecationWarning`` shims);
- :meth:`WeaverRuntime.transaction` — a :class:`DeploymentSet` handle that
  batches several aspects atomically over one shadow scan per class, with
  context-manager rollback and partial :meth:`~DeploymentSet.undeploy`;
- introspection — :meth:`WeaverRuntime.woven_sites`,
  :meth:`WeaverRuntime.deployment_stats` and :meth:`WeaverRuntime.stats`
  (surfaced on the command line as ``repro.tools aop inspect``).

The deprecated process-global API (``Weaver``, free ``deploy`` /
``deploy_all`` / ``undeploy``, the ``deployed`` context manager) lives in
:mod:`repro.aop.legacy` as thin shims over :data:`default_runtime`.

::

    runtime = WeaverRuntime("per-audience")
    handle = runtime.weave([PageRenderer], TourAspect(spec))
    ...                                  # advice is live
    handle.undeploy()

    with runtime.weave(xmlcore.parser.parse, RetryAspect()):
        ...                              # module function advised
    ...                                  # original global restored
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from types import FunctionType, ModuleType
from typing import Any, Iterable

from . import codegen, monitor
from .advice import Advice
from .aspect import Aspect
from .errors import WeavingError
from .joinpoint import JoinPointKind
from .weaver import (
    Deployment,
    InstanceScope,
    ModuleShadow,
    ShadowIndex,
    _BatchScans,
    _cflow_watchers,
    _marker_defaults,
    _MISSING,
    _release_marker_state,
    _rollback_partial_weave,
    _WatcherCount,
    _WovenField,
    _WovenMember,
    make_field_descriptor,
    make_method_wrapper,
    make_module_wrapper,
    shadow_index as _default_shadow_index,
)


def _deprecated(old: str, new: str) -> None:
    """Warn for the pre-``weave()`` deployment surface (stacklevel: caller)."""
    import warnings

    warnings.warn(
        f"repro.aop.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class WeaverRuntime:
    """A scoped aspect-weaving runtime.

    Each runtime owns the state earlier revisions kept in module globals —
    a :class:`~repro.aop.weaver.ShadowIndex`, a cflow-watcher count and a
    :class:`~repro.aop.codegen.CodegenCache` — so two runtimes in one
    process never share scan caches, watcher bookkeeping or compile
    statistics.  Class *mutation* is still process-global (weaving rewrites
    class members), so runtimes weaving the same class stack their wrappers
    and must unwind LIFO across runtimes; the shared
    :class:`~repro.aop.weaver._TokenBoard` keeps every runtime's scans
    honest about members another runtime installed.
    """

    def __init__(
        self,
        name: str | None = None,
        *,
        shadow_index: ShadowIndex | None = None,
        watchers: _WatcherCount | None = None,
        codegen_cache: "codegen.CodegenCache | None" = None,
    ) -> None:
        self.name = name or f"runtime-{id(self):x}"
        self._shadow_index = shadow_index if shadow_index is not None else ShadowIndex()
        self._watchers = watchers if watchers is not None else _WatcherCount()
        self._codegen_cache = (
            codegen_cache if codegen_cache is not None else codegen.CodegenCache()
        )
        self._deployments: list[Deployment] = []
        # Monotonic weave-mutation counter; see the weave_epoch property.
        self._weave_epoch = 0
        # The sys.monitoring bridge, created lazily on the first shadow
        # the tier planner routes there — a runtime that never weaves
        # monitor-eligible advice never claims a monitoring tool id.
        self._monitor: "monitor.MonitorBridge | None" = None

    def __repr__(self) -> str:
        return f"<WeaverRuntime {self.name!r} ({len(self.deployments)} active)>"

    # -- scoped state ---------------------------------------------------------

    @property
    def shadow_index(self) -> ShadowIndex:
        """This runtime's (isolated) shadow-scan cache."""
        return self._shadow_index

    @property
    def watchers(self) -> _WatcherCount:
        """This runtime's live cflow-watcher count."""
        return self._watchers

    @property
    def codegen_cache(self) -> "codegen.CodegenCache":
        """This runtime's wrapper-source compile cache (and its stats)."""
        return self._codegen_cache

    @property
    def deployments(self) -> list[Deployment]:
        return [d for d in self._deployments if d.active]

    @property
    def weave_epoch(self) -> int:
        """A monotonic counter of this runtime's weave mutations.

        Advances on every successful :meth:`deploy` and :meth:`undeploy`
        — the only operations that change what this runtime's woven
        members compute — in lockstep with the
        :class:`~repro.aop.weaver._TokenBoard` stamps those operations
        produce.  For a fixed set of inputs, anything derived from woven
        output (a rendered page, a serialized site) is reusable exactly
        while the epoch it was recorded under is still current; the
        serving layer's page cache keys on it.  Never reset, so an epoch
        value can never come back around to alias a different weave
        state.
        """
        return self._weave_epoch

    def advance_epoch(self) -> int:
        """Advance the weave epoch by hand; returns the new value.

        For layers that compose several deploy/undeploy calls into one
        logical mutation (the serving layer's ``reconfigure``) and need
        a fresh epoch *fence* at a point where no individual weave has
        happened yet — marking everything derived so far as superseded
        before the mutation begins, and again after it completes.
        """
        self._weave_epoch += 1
        return self._weave_epoch

    # -- deployment -----------------------------------------------------------

    def _deploy(
        self,
        aspect: Aspect,
        targets: "Iterable[type | ModuleType]",
        *,
        fields: Iterable[str] = (),
        require_match: bool = True,
        instances: "Iterable[Any] | InstanceScope | None" = None,
        members: "frozenset[str] | None" = None,
        _scans: _BatchScans | None = None,
    ) -> Deployment:
        """Weave *aspect* into *targets* (the engine under :meth:`weave`).

        ``fields`` names instance attributes to expose as field join points
        (Python cannot discover instance attributes statically, so field
        interception is opt-in).  With *require_match*, deploying an aspect
        that matches nothing raises — almost always a pointcut typo.

        ``targets`` may mix classes and *modules*: a module's shadows are
        its own module-level functions (see
        :class:`~repro.aop.weaver.ModuleShadow`), woven by rebinding the
        module global and restored exactly on undeploy.  Modules have no
        instances to scope to, no fields and no MRO to graft
        introductions through, so ``instances`` is rejected with module
        targets and the introduction/field phases skip them.

        ``instances`` narrows the deployment to an *instance scope*: the
        woven members become per-shadow dispatchers that run advice only
        for receivers in the scope (an iterable of instances, or a shared
        :class:`~repro.aop.weaver.InstanceScope`), while every other
        instance falls through to the previous member near-plain.  Scoped
        deployments stack with class-wide ones in deployment order (a
        class-wide chain deployed later wraps the instance dispatch) and
        unwind LIFO like any other deployment.  Aspects carrying
        introductions cannot be instance-scoped — introductions graft
        class members.

        ``members`` restricts planning to the named shadows — how
        :meth:`weave` narrows a module deployment to exactly the functions
        the caller passed, rather than everything the pointcut matches in
        the module.

        ``_scans`` is a :class:`DeploymentSet` batch's shared scan view;
        single deployments read this runtime's shadow index directly.
        """
        aspect.validate()
        advice = sorted(aspect.advice(), key=lambda a: a.order)
        targets = list(targets)
        scope = InstanceScope.resolve(instances)
        module_targets = [t for t in targets if not isinstance(t, type)]
        if scope is not None and module_targets:
            raise WeavingError(
                "instance scopes require class targets; module-level "
                "functions have no receiver to scope to "
                f"({', '.join(m.__name__ for m in module_targets)})"
            )
        introductions = list(aspect.introductions())
        if scope is not None and introductions:
            raise WeavingError(
                f"aspect {type(aspect).__name__} declares introductions, "
                "which graft class members and cannot be instance-scoped; "
                "deploy it class-wide instead"
            )
        deployment = Deployment(
            aspect=aspect,
            scope=scope,
            _index=self._shadow_index,
            _watchers=self._watchers,
        )
        scans = _scans if _scans is not None else self._shadow_index
        index = self._shadow_index

        # Snapshot every target's pre-weave scan (also pre-warming the
        # cache for the phases below).  Undeploy restores classes exactly,
        # so these snapshots make deploy/undeploy cycles rescan-free.
        pre_state = {cls: (scans.shadows(cls), index.token(cls)) for cls in targets}

        # declare error: refuse deployment when a forbidden shape exists.
        for declaration in aspect.declarations():
            for cls in targets:
                for shadow in scans.shadows(cls):
                    if members is not None and shadow.name not in members:
                        continue
                    if declaration.pointcut.matches_shadow(
                        cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                    ):
                        raise WeavingError(
                            f"{declaration.message} "
                            f"(declare error matched {cls.__name__}.{shadow.name})"
                        )

        try:
            intro_touched: set[type] = set()
            for introduction in introductions:
                for cls in targets:
                    if not isinstance(cls, type):
                        continue  # introductions graft class members only
                    applied = introduction.apply(cls)
                    if applied is not None:
                        deployment.introductions.append(applied)
                        intro_touched.add(cls)
                        # Introduced functions are weavable shadows themselves.
                        index.invalidate(cls)
                        if _scans is not None:
                            _scans.note_introduction(cls)

            # cflow() residues need the join point stack populated at their
            # inner pointcuts' shadows even when no advice runs there; shadows
            # the residues match get tracking-only wrappers (AspectJ
            # instruments cflow entry shadows the same way).  While this
            # deployment is active it also raises the runtime's watcher
            # count, so every woven shadow in this runtime resumes frame
            # bookkeeping.
            inner_pointcuts = [
                inner for a in advice for inner in a.pointcut.cflow_inner_pointcuts()
            ]

            def tracked(cls: type, name: str, kind: JoinPointKind) -> bool:
                return any(p.matches_shadow(cls, name, kind) for p in inner_pointcuts)

            # Capture every shadow before installing anything, so that weaving
            # a base class never changes what a subclass shadow captures.  One
            # (memoized) scan per class covers advice matching and cflow entry
            # instrumentation.
            method_plan: list[tuple[Any, list[Advice]]] = []
            field_plan: list[tuple[type, str, list[Advice], list[Advice]]] = []
            tracking_only: set[tuple[Any, str]] = set()
            for cls in targets:
                for shadow in scans.shadows(cls):
                    if members is not None and shadow.name not in members:
                        continue
                    matching = [
                        a
                        for a in advice
                        if a.pointcut.matches_shadow(
                            cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                        )
                    ]
                    if matching:
                        method_plan.append((shadow, matching))
                    elif inner_pointcuts:
                        key = (shadow.cls, shadow.name)
                        if key not in tracking_only and tracked(
                            cls, shadow.name, JoinPointKind.METHOD_EXECUTION
                        ):
                            tracking_only.add(key)
                            method_plan.append((shadow, []))
                if not isinstance(cls, type):
                    continue  # modules have no instance fields
                for field_name in fields:
                    getters = [
                        a
                        for a in advice
                        if a.pointcut.matches_shadow(
                            cls, field_name, JoinPointKind.FIELD_GET
                        )
                    ]
                    setters = [
                        a
                        for a in advice
                        if a.pointcut.matches_shadow(
                            cls, field_name, JoinPointKind.FIELD_SET
                        )
                    ]
                    if getters or setters:
                        field_plan.append((cls, field_name, getters, setters))

            touched: set[Any] = set()
            marker_classes: set[type] = set()
            # Tier planner: observation-only, residue-free, class-wide
            # advice on a monitorable code object dispatches from
            # sys.monitoring events — no wrapper member is installed at
            # all.  Everything else (around/throwing advice, dynamic
            # residue, instance scopes, tracking-only shadows, inherited
            # or generator members) takes the wrapper tiers below, and
            # the two compose freely on one class.
            use_monitor = scope is None and monitor.monitor_enabled()
            for shadow, matching in method_plan:
                if (
                    use_monitor
                    and matching
                    and monitor.advice_obstacle(matching) is None
                    and monitor.shadow_obstacle(shadow) is None
                ):
                    registration = self._monitor_bridge().attach(shadow, matching)
                    if registration is not None:
                        deployment.monitor_sites.append(registration)
                        continue
                if isinstance(shadow, ModuleShadow):
                    wrapper = make_module_wrapper(
                        shadow,
                        matching,
                        watchers=self._watchers,
                        codegen_cache=self._codegen_cache,
                    )
                else:
                    wrapper = self._make_method_wrapper(shadow, matching, scope)
                marker = getattr(wrapper, "__scope_marker__", None)
                if marker is not None and shadow.cls not in marker_classes:
                    # Marker dispatch reads `self.<marker>`; unscoped
                    # instances must find the class-level default, which
                    # the marker-default board owns (it flips it between
                    # None and WATCHED on cflow-watcher transitions).
                    marker_classes.add(shadow.cls)
                    _marker_defaults.register(shadow.cls, marker, self._watchers)
                    deployment._marker_sites.append((shadow.cls, marker))
                previous = shadow.cls.__dict__.get(shadow.name, _MISSING)
                setattr(shadow.cls, shadow.name, wrapper)
                touched.add(shadow.cls)
                deployment.members.append(
                    _WovenMember(shadow.cls, shadow.name, wrapper, previous)
                )

            for cls, field_name, getters, setters in field_plan:
                previous = cls.__dict__.get(field_name, _MISSING)
                default = previous if previous is not _MISSING else _MISSING
                # A re-weave keeps the original class default.
                if isinstance(default, _WovenField):
                    default = default._class_default
                descriptor = make_field_descriptor(
                    field_name,
                    getters,
                    setters,
                    default,
                    watchers=self._watchers,
                    codegen_cache=self._codegen_cache,
                    scope=scope,
                )
                setattr(cls, field_name, descriptor)
                touched.add(cls)
                deployment.members.append(
                    _WovenMember(cls, field_name, descriptor, previous)
                )

            if marker_classes:
                scope._acquire_markers()
                deployment._holds_markers = True

            for cls in touched | intro_touched:
                woven_token = index.invalidate(cls)
                shadows_snapshot, pre_token = pre_state[cls]
                deployment._cache_state[cls] = (
                    shadows_snapshot,
                    pre_token,
                    woven_token,
                )
            if _scans is not None:
                installed_by_cls: dict[type, dict[str, Any]] = {}
                for member in deployment.members:
                    installed_by_cls.setdefault(member.cls, {})[member.name] = (
                        member.installed
                    )
                # Bases before subclasses: a touched base drops its subclasses'
                # derived scans (their inherited entries changed underneath
                # them), which must happen before — never after — a touched
                # subclass would prime one.
                for cls in sorted(
                    touched,
                    key=lambda klass: (
                        len(klass.__mro__) if isinstance(klass, type) else 0
                    ),
                ):
                    _scans.apply_installs(cls, installed_by_cls.get(cls, {}))

            if (
                require_match
                and not deployment.members
                and not deployment.introductions
                and not deployment.monitor_sites
            ):
                raise WeavingError(
                    f"aspect {type(aspect).__name__} matched nothing in "
                    f"[{', '.join(t.__name__ for t in targets)}]"
                )
        except BaseException:
            # Mid-weave failure (introduction conflict, raising pointcut,
            # ...): revert what this deployment already applied so the
            # caller is never left with class mutations it has no handle
            # to undo.
            _rollback_partial_weave(deployment, index)
            # The revert is best-effort; advance the epoch so nothing
            # cached across the failed weave is ever trusted.
            self._weave_epoch += 1
            raise
        if inner_pointcuts:
            self._watchers.watch()
            deployment._tracks_cflow = True
        self._weave_epoch += 1
        self._deployments.append(deployment)
        return deployment

    def _monitor_bridge(self) -> "monitor.MonitorBridge":
        if self._monitor is None:
            self._monitor = monitor.MonitorBridge(self.name, self._watchers)
        return self._monitor

    def _make_method_wrapper(
        self, shadow, advice: list[Advice], scope: InstanceScope | None = None
    ):
        return make_method_wrapper(
            shadow,
            advice,
            watchers=self._watchers,
            codegen_cache=self._codegen_cache,
            scope=scope,
        )

    def deploy(
        self,
        aspect: Aspect,
        targets: "Iterable[type | ModuleType]",
        *,
        fields: Iterable[str] = (),
        require_match: bool = True,
        instances: "Iterable[Any] | InstanceScope | None" = None,
    ) -> Deployment:
        """Deprecated: use :meth:`weave` (one surface for every target kind).

        Same semantics as always — this shim forwards to the internal
        engine — but new code should call ``runtime.weave(targets, aspect,
        ...)``, which also accepts modules and module-level functions and
        returns a context-managed handle.
        """
        _deprecated("WeaverRuntime.deploy()", "WeaverRuntime.weave()")
        return self._deploy(
            aspect,
            targets,
            fields=fields,
            require_match=require_match,
            instances=instances,
        )

    def weave(
        self,
        target: Any,
        aspect: Aspect,
        *,
        instances: "Iterable[Any] | InstanceScope | None" = None,
        lint: str | None = None,
        fields: Iterable[str] = (),
        require_match: bool = True,
    ) -> "Weave":
        """Weave *aspect* over *target*; the one deployment entry point.

        *target* is polymorphic — a class, a module, a module-level
        function, or a list mixing any of those::

            handle = runtime.weave(PageRenderer, TracingAspect())
            handle.undeploy()

            with runtime.weave(xmlcore.parser.parse, RetryAspect()):
                ...                      # advice live inside the block
            ...                          # original function restored

        Functions are grouped by defining module and woven as
        member-restricted module deployments (only the named functions are
        planned, however broadly the pointcut matches).  All constituent
        deployments ride one :class:`DeploymentSet` transaction, so a
        failure mid-way (declare error, lint gate, introduction conflict)
        rolls back everything already woven.

        ``instances`` narrows class targets to an instance scope exactly
        as before (rejected when *target* includes functions or modules);
        ``lint`` (``"warn"``/``"error"``) runs the static analyzer gate
        before weaving; ``require_match`` asserts the aspect matched at
        least one shadow across the whole target list.

        Returns a :class:`Weave` handle: ``with`` gives aspectlib-style
        scope (exit restores the originals; an exception inside the block
        rolls back), ``.undeploy()`` reverses it explicitly.
        """
        items = list(target) if isinstance(target, (list, tuple)) else [target]
        if not items:
            raise WeavingError("weave(): no targets given")
        direct: list[Any] = []
        by_module: dict[ModuleType, list[str]] = {}
        for item in items:
            if isinstance(item, (type, ModuleType)):
                direct.append(item)
            elif isinstance(item, FunctionType):
                module = sys.modules.get(getattr(item, "__module__", None) or "")
                if module is None:
                    raise WeavingError(
                        f"weave(): cannot locate the defining module of "
                        f"{item!r} (its __module__ is not imported)"
                    )
                by_module.setdefault(module, []).append(item.__name__)
            else:
                raise WeavingError(
                    f"weave(): unsupported target {item!r}; expected a class, "
                    "a module, a module-level function, or a list of those"
                )
        if instances is not None and by_module:
            raise WeavingError(
                "weave(): instance scopes require class targets; "
                "module-level functions have no receiver to scope to"
            )
        tx = self.transaction()
        matched = False
        try:
            if direct:
                d = tx._add(
                    aspect,
                    direct,
                    fields=fields,
                    require_match=False,
                    instances=instances,
                    lint=lint,
                )
                matched |= bool(d.members or d.monitor_sites or d.introductions)
            for module, names in by_module.items():
                d = tx._add(
                    aspect,
                    [module],
                    require_match=False,
                    members=frozenset(names),
                    lint=lint,
                )
                matched |= bool(d.members or d.monitor_sites or d.introductions)
            if require_match and not matched:
                described = ", ".join(
                    [t.__name__ for t in direct]
                    + [f"{m.__name__}.{n}" for m, ns in by_module.items() for n in ns]
                )
                raise WeavingError(
                    f"aspect {type(aspect).__name__} matched nothing in "
                    f"[{described}]"
                )
        except BaseException:
            tx.rollback()
            raise
        tx.commit()
        return Weave(self, tx)

    def transaction(
        self,
        targets: "Iterable[type | ModuleType] | None" = None,
        *,
        fields: Iterable[str] = (),
    ) -> "DeploymentSet":
        """A :class:`DeploymentSet` batching deployments on this runtime.

        ``targets``/``fields`` become the set's defaults; each
        :meth:`~DeploymentSet.add` may override them.  Used as a context
        manager, the set commits on clean exit and rolls *everything* back
        — members and introductions, best-effort — when the block raises.
        """
        return DeploymentSet(self, targets, fields=fields)

    def deploy_all(
        self,
        aspects: Iterable[Aspect],
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        require_match: bool = True,
    ) -> list[Deployment]:
        """Deprecated: use :meth:`weave` (or :meth:`transaction` directly)."""
        _deprecated("WeaverRuntime.deploy_all()", "WeaverRuntime.weave()")
        return self._deploy_all(
            aspects, targets, fields=fields, require_match=require_match
        )

    def _deploy_all(
        self,
        aspects: Iterable[Aspect],
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        require_match: bool = True,
    ) -> list[Deployment]:
        """Deploy several aspects over the same targets, in order.

        Semantically identical to sequential deploys — later aspects wrap
        earlier ones, and the batch unwinds LIFO like any other
        deployments — but the whole batch runs through one
        :class:`DeploymentSet`, planning from **one** shadow scan per
        class.  All-or-nothing: if a later aspect's deploy raises (declare
        error, pointcut typo with *require_match*, ...), the aspects
        already installed are rolled back before the exception propagates.
        """
        tx = self.transaction(targets, fields=fields)
        try:
            for aspect in aspects:
                tx._add(aspect, require_match=require_match)
        except BaseException:
            tx.rollback()
            raise
        return tx.commit()

    def undeploy(self, deployment: Deployment) -> None:
        """Reverse one deployment (most-recent-first when they overlap)."""
        if not deployment.active:
            return
        index = (
            deployment._index if deployment._index is not None else self._shadow_index
        )
        watchers = (
            deployment._watchers
            if deployment._watchers is not None
            else self._watchers
        )
        touched: set[type] = set()
        try:
            for member in reversed(deployment.members):
                member.revert()
                touched.add(member.cls)
            for applied in reversed(deployment.introductions):
                applied.revert()
                touched.add(applied.cls)
        except Exception:
            # Partial revert (e.g. out-of-LIFO undeploy): the classes we
            # did touch are in an unknown state — force rescans.
            for cls in touched:
                index.invalidate(cls)
            raise
        for cls in touched:
            state = deployment._cache_state.get(cls)
            if state is None:
                index.invalidate(cls)
            else:
                snapshot, pre_token, woven_token = state
                index.restore_after_revert(
                    cls, snapshot, woven_token=woven_token, pre_token=pre_token
                )
        for registration in reversed(deployment.monitor_sites):
            registration.release()
        deployment.monitor_sites.clear()
        _release_marker_state(deployment)
        if deployment._tracks_cflow:
            watchers.unwatch()
            deployment._tracks_cflow = False
        deployment.active = False
        self._weave_epoch += 1

    def undeploy_all(self) -> None:
        """Reverse every active deployment, most recent first."""
        for deployment in reversed(self.deployments):
            self.undeploy(deployment)

    # -- introspection --------------------------------------------------------

    def woven_sites(self) -> list["WovenSite"]:
        """Every member this runtime's active deployments currently weave.

        One :class:`WovenSite` per installed member, ordered by deployment
        (oldest first) then install order — the live answer to "what did
        weaving do to my classes?".
        """
        sites: list[WovenSite] = []
        for position, deployment in enumerate(self.deployments):
            aspect_name = type(deployment.aspect).__name__
            for member in deployment.members:
                sites.append(
                    _describe_member(member, aspect_name, position, deployment.scope)
                )
            for registration in deployment.monitor_sites:
                sites.append(
                    WovenSite(
                        cls=registration.cls,
                        member=registration.name,
                        kind="method",
                        tier="monitor",
                        aspect=aspect_name,
                        deployment_index=position,
                    )
                )
            for applied in deployment.introductions:
                sites.append(
                    WovenSite(
                        cls=applied.cls,
                        member=applied.name,
                        kind="introduction",
                        tier="introduction",
                        aspect=aspect_name,
                        deployment_index=position,
                    )
                )
        return sites

    def deployment_stats(self, deployment: Deployment) -> "DeploymentStats":
        """Codegen and pool statistics for one deployment."""
        codegen_sources: dict[str, str] = {}
        pooled = 0
        pool_free = 0
        method_members = 0
        field_members = 0
        for member in deployment.members:
            signature = f"{member.cls.__name__}.{member.name}"
            installed = member.installed
            if isinstance(installed, _WovenField):
                field_members += 1
            else:
                method_members += 1
            source = getattr(installed, "__codegen_source__", None)
            if source is not None:
                codegen_sources[signature] = source
            pool = getattr(installed, "__joinpoint_pool__", None)
            if pool is not None:
                pools = [pool]
            else:
                pools = list(getattr(installed, "__joinpoint_pools__", {}).values())
            for pool in pools:
                pooled += 1
                pool_free += len(pool.free)
        scope = deployment.scope
        return DeploymentStats(
            aspect=type(deployment.aspect).__name__,
            active=deployment.active,
            method_members=method_members,
            field_members=field_members,
            monitor_members=len(deployment.monitor_sites),
            introductions=len(deployment.introductions),
            codegen_sources=codegen_sources,
            pools=pooled,
            pooled_joinpoints_free=pool_free,
            scope_instances=len(scope) if scope is not None else None,
        )

    def stats(self) -> dict[str, Any]:
        """A snapshot of this runtime's scoped state, for dashboards/CLI.

        Scope-aware: beyond the per-deployment count, ``scopes`` reports
        the *distinct* live :class:`~repro.aop.weaver.InstanceScope`
        objects and their total member instances (a scope shared by
        several deployments — an audience's whole stack — counts once),
        and ``pools`` aggregates every deployment's join point pools.
        The HTTP serving front exposes this verbatim at ``GET /-/stats``.
        """
        sites = self.woven_sites()
        tiers: dict[str, int] = {}
        for site in sites:
            tiers[site.tier] = tiers.get(site.tier, 0) + 1
        pools = 0
        pool_free = 0
        scopes: dict[int, Any] = {}
        for deployment in self.deployments:
            per = self.deployment_stats(deployment)
            pools += per.pools
            pool_free += per.pooled_joinpoints_free
            if deployment.scope is not None:
                scopes[id(deployment.scope)] = deployment.scope
        return {
            "name": self.name,
            "weave_epoch": self._weave_epoch,
            "deployments": len(self.deployments),
            "instance_scoped": sum(1 for d in self.deployments if d.scope is not None),
            "scopes": {
                "count": len(scopes),
                "instances": sum(len(scope) for scope in scopes.values()),
            },
            "woven_sites": len(sites),
            "tiers": tiers,
            "pools": {"count": pools, "free_joinpoints": pool_free},
            "cflow_watchers": self._watchers.count,
            "codegen_cache": self._codegen_cache.stats(),
            "monitor": (
                self._monitor.stats()
                if self._monitor is not None
                else {
                    "supported": monitor.monitor_supported(),
                    "enabled": monitor.monitor_enabled(),
                    "tool_id": None,
                    "code_objects": 0,
                    "stacked_entries": 0,
                    "in_flight": 0,
                }
            ),
        }


@dataclass(frozen=True)
class WovenSite:
    """One woven member, as reported by :meth:`WeaverRuntime.woven_sites`."""

    #: The owning container: a class, or a module for module-function
    #: weaves (whose signatures read ``package.module.function``).
    cls: Any
    member: str
    #: ``"method"``, ``"field"`` or ``"introduction"``.
    kind: str
    #: Dispatch tier: ``"monitor"``, ``"codegen"``, ``"generic"``,
    #: ``"tracking"``, ``"field-codegen"``, ``"field-generic"`` or
    #: ``"introduction"``.
    tier: str
    aspect: str
    deployment_index: int
    #: Line count of the generated wrapper source (codegen tiers only).
    codegen_lines: int | None = None
    #: Live instance count of the deployment's scope (None = class-wide).
    scope_instances: int | None = None

    @property
    def scoped(self) -> bool:
        """Whether this site belongs to an instance-scoped deployment."""
        return self.scope_instances is not None

    @property
    def signature(self) -> str:
        return f"{self.cls.__name__}.{self.member}"


@dataclass(frozen=True)
class DeploymentStats:
    """Per-deployment codegen/pool statistics."""

    aspect: str
    active: bool
    method_members: int
    field_members: int
    introductions: int
    #: signature -> generated wrapper source.
    codegen_sources: dict[str, str]
    pools: int
    pooled_joinpoints_free: int
    #: Live instance count of the deployment's scope (None = class-wide).
    scope_instances: int | None = None
    #: Shadows advised through sys.monitoring (no installed member).
    monitor_members: int = 0


def _describe_member(
    member: _WovenMember,
    aspect: str,
    position: int,
    scope: InstanceScope | None = None,
) -> WovenSite:
    installed = member.installed
    source = getattr(installed, "__codegen_source__", None)
    lines = source.count("\n") if isinstance(source, str) else None
    if isinstance(installed, _WovenField):
        tier = "field-codegen" if source is not None else "field-generic"
        kind = "field"
    else:
        kind = "method"
        if source is not None:
            tier = "codegen"
        elif getattr(installed, "__woven_advice_count__", None) == 0:
            tier = "tracking"
        else:
            tier = "generic"
    return WovenSite(
        cls=member.cls,
        member=member.name,
        kind=kind,
        tier=tier,
        aspect=aspect,
        deployment_index=position,
        codegen_lines=lines,
        scope_instances=len(scope) if scope is not None else None,
    )


class Weave:
    """A live :meth:`WeaverRuntime.weave` handle (context-managed).

    Wraps the committed :class:`DeploymentSet` the weave ran through.
    ``with runtime.weave(...) as handle:`` gives aspectlib-style scoping:
    the advice is live inside the block and the originals are restored on
    exit (a raising block rolls back best-effort instead of unwinding
    strictly).  Outside a ``with`` block, call :meth:`undeploy`.
    """

    def __init__(self, runtime: WeaverRuntime, tx: "DeploymentSet") -> None:
        self._runtime = runtime
        self._tx = tx

    def __repr__(self) -> str:
        return (
            f"<Weave {len(self.deployments)} deployment(s) "
            f"on {self._runtime.name!r}>"
        )

    @property
    def deployments(self) -> list[Deployment]:
        """The live deployment handles this weave installed, oldest first."""
        return self._tx.deployments

    @property
    def active(self) -> bool:
        return bool(self._tx.deployments)

    def undeploy(self) -> None:
        """Strict LIFO unweave of everything this handle installed."""
        self._tx.undeploy()

    def rollback(self) -> None:
        """Best-effort unwind (keeps going past revert failures)."""
        self._tx.rollback()

    def __enter__(self) -> "Weave":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.rollback()
        else:
            self.undeploy()


@dataclass
class _SetEntry:
    """One :meth:`DeploymentSet.add`'s recipe plus its live deployment."""

    aspect: Aspect
    targets: list[Any]
    fields: tuple[str, ...]
    require_match: bool
    deployment: Deployment
    #: The resolved instance scope (None = class-wide).  Survivor
    #: re-weaves pass the *same* scope object, so membership persists.
    scope: InstanceScope | None = None
    #: Member-name restriction (:meth:`WeaverRuntime.weave` function
    #: targets); survivor re-weaves must honour the same narrowing.
    members: "frozenset[str] | None" = None


class DeploymentSet:
    """A transactional batch of deployments on one runtime.

    Subsumes the old ``deploy_all``: every :meth:`add` weaves immediately
    but plans through one shared scan view (one real shadow scan per class
    for the whole set, however many aspects stack), and the set as a whole
    is the unit of atomicity —

    - as a context manager, a raising block triggers :meth:`rollback`,
      which unwinds members *and introductions* best-effort, while a clean
      exit commits (the deployments stay live);
    - :meth:`undeploy` reverses the whole set — or a *subset*: the set
      unwinds LIFO down to the oldest targeted deployment, then re-weaves
      the survivors in their original order (their
      :class:`~repro.aop.weaver.Deployment` handles are refreshed in
      :attr:`deployments`).

    A set never spans runtimes; :meth:`WeaverRuntime.transaction` is the
    only constructor callers need.
    """

    def __init__(
        self,
        runtime: WeaverRuntime,
        targets: Iterable[type] | None = None,
        *,
        fields: Iterable[str] = (),
    ) -> None:
        self._runtime = runtime
        self._default_targets = list(targets) if targets is not None else None
        self._default_fields = tuple(fields)
        self._batch = _BatchScans(runtime.shadow_index)
        self._entries: list[_SetEntry] = []
        self._committed = False

    def __repr__(self) -> str:
        state = "committed" if self._committed else "open"
        return (
            f"<DeploymentSet {state}, {len(self.deployments)} deployments "
            f"on {self._runtime.name!r}>"
        )

    @property
    def deployments(self) -> list[Deployment]:
        """The set's live deployment handles, oldest first."""
        return [e.deployment for e in self._entries if e.deployment.active]

    @property
    def committed(self) -> bool:
        return self._committed

    def add(
        self,
        aspect: Aspect,
        targets: "Iterable[type | ModuleType] | None" = None,
        *,
        fields: Iterable[str] | None = None,
        require_match: bool = True,
        instances: "Iterable[Any] | InstanceScope | None" = None,
        lint: str | None = None,
    ) -> Deployment:
        """Deprecated: use :meth:`WeaverRuntime.weave` (one call per aspect).

        A weave's constituent deployments already share a transaction;
        sets that batch *several* aspects atomically keep working through
        this shim unchanged.
        """
        _deprecated("DeploymentSet.add()", "WeaverRuntime.weave()")
        return self._add(
            aspect,
            targets,
            fields=fields,
            require_match=require_match,
            instances=instances,
            lint=lint,
        )

    def _add(
        self,
        aspect: Aspect,
        targets: "Iterable[type | ModuleType] | None" = None,
        *,
        fields: Iterable[str] | None = None,
        require_match: bool = True,
        instances: "Iterable[Any] | InstanceScope | None" = None,
        lint: str | None = None,
        members: "frozenset[str] | None" = None,
    ) -> Deployment:
        """Weave one more aspect into the set (immediately, but revocably).

        ``targets``/``fields`` default to the set's; the deployment plans
        through the set's shared scan view, so stacking N aspects over the
        same classes costs one real scan per class total.  ``instances``
        narrows the deployment to an instance scope exactly as in
        :meth:`WeaverRuntime.deploy`; a partial :meth:`undeploy` re-weaves
        surviving scoped deployments with their original scope objects.

        ``lint`` opts this add into the static analyzer
        (:mod:`repro.aop.analysis`) *before* anything is woven:
        ``"warn"`` surfaces every finding as an
        :class:`~repro.aop.analysis.AopLintWarning`; ``"error"``
        additionally refuses to deploy (raising :class:`WeavingError`)
        when an error-severity finding exists — e.g. a typo'd pointcut
        that matches nothing even though the aspect as a whole would
        survive ``require_match``.
        """
        if targets is None:
            if self._default_targets is None:
                raise WeavingError(
                    "DeploymentSet.add: no targets given and the transaction "
                    "declared no default targets"
                )
            targets = self._default_targets
        resolved_fields = self._default_fields if fields is None else tuple(fields)
        scope = InstanceScope.resolve(instances)
        if lint is not None:
            from .analysis import lint_gate

            lint_gate(
                aspect,
                targets,
                fields=resolved_fields,
                instances=scope,
                mode=lint,
                index=self._runtime.shadow_index,
            )
        deployment = self._runtime._deploy(
            aspect,
            targets,
            fields=resolved_fields,
            require_match=require_match,
            instances=scope,
            members=members,
            _scans=self._batch,
        )
        self._entries.append(
            _SetEntry(
                aspect=aspect,
                targets=list(targets),
                fields=resolved_fields,
                require_match=require_match,
                deployment=deployment,
                scope=scope,
                members=members,
            )
        )
        return deployment

    def commit(self) -> list[Deployment]:
        """Seal the set: its deployments stay live; returns their handles."""
        self._committed = True
        return self.deployments

    def rollback(self) -> None:
        """Best-effort LIFO unwind of everything the set deployed.

        Unlike a strict :meth:`undeploy`, rollback keeps going when a
        member revert fails (e.g. someone outside the set re-wove a class
        after us): the failing member is skipped, its class is invalidated
        for honest rescans, and — crucially — *introductions still
        revert*, so a raising ``with`` block never leaks grafted members.
        """
        index = self._runtime.shadow_index
        watchers = self._runtime.watchers
        self._batch = _BatchScans(index)  # derived scans describe dead wrappers
        for entry in reversed(self._entries):
            deployment = entry.deployment
            if not deployment.active:
                continue
            try:
                self._runtime.undeploy(deployment)
            except Exception:
                # Strict undeploy refused (non-LIFO interleaving): fall
                # back to the forgiving unwind and keep rolling back.
                _rollback_partial_weave(deployment, index)
                if deployment._tracks_cflow:
                    watchers.unwatch()
                    deployment._tracks_cflow = False
                deployment.active = False
                self._runtime._weave_epoch += 1
        self._entries.clear()

    def undeploy(self, deployments: Iterable[Deployment] | None = None) -> None:
        """Reverse the whole set, or just *deployments* (a subset of it).

        A partial undeploy unwinds the set LIFO down to the oldest targeted
        deployment — strictly, so an interleaved weave by someone else
        still raises — then re-weaves the unwound survivors in their
        original order through a fresh batch scan.  Survivor handles are
        refreshed; read them back from :attr:`deployments`.
        """
        # Any unweave invalidates the set's derived scans (they describe
        # wrappers that no longer exist); later add()s must re-plan fresh.
        self._batch = _BatchScans(self._runtime.shadow_index)
        active = [e for e in self._entries if e.deployment.active]
        if deployments is None:
            for entry in reversed(active):
                self._runtime.undeploy(entry.deployment)
            self._entries = [e for e in self._entries if e.deployment.active]
            return
        targeted = set(deployments)
        known = {e.deployment for e in active}
        unknown = targeted - known
        if unknown:
            raise WeavingError(
                "DeploymentSet.undeploy: deployment(s) not active in this set: "
                + ", ".join(sorted(type(d.aspect).__name__ for d in unknown))
            )
        if not targeted:
            return
        oldest = min(i for i, e in enumerate(active) if e.deployment in targeted)
        unwound = active[oldest:]
        for entry in reversed(unwound):
            self._runtime.undeploy(entry.deployment)
        survivors = [e for e in unwound if e.deployment not in targeted]
        self._entries = [
            e for e in self._entries if e.deployment.active or e in survivors
        ]
        for entry in survivors:
            entry.deployment = self._runtime._deploy(
                entry.aspect,
                entry.targets,
                fields=entry.fields,
                require_match=entry.require_match,
                instances=entry.scope,
                members=entry.members,
                _scans=self._batch,
            )

    def __enter__(self) -> "DeploymentSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and not self._committed:
            self.rollback()
        else:
            self.commit()


#: The process-default runtime.  The deprecated free functions and every
#: legacy ``Weaver()`` operate on this runtime's state, which is why the
#: seed's cross-weaver semantics (shared scan cache, cross-deployment
#: cflow observation) still hold for them.
default_runtime = WeaverRuntime(
    "default",
    shadow_index=_default_shadow_index,
    watchers=_cflow_watchers,
    codegen_cache=codegen.default_cache,
)
