"""The join point model.

Following AspectJ's terminology (which the paper cites as the reference
mechanism), a *join point* is a principled point in program execution where
advice may run.  We expose three kinds — method execution, field get and
field set — which are the ones the navigation aspect needs: page rendering
is a method execution, and node state (current context, position) lives in
fields.

A context-local *join point stack* records the dynamic extent of executing
join points, which is what ``cflow()`` pointcuts match against.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable


class JoinPointKind(str, Enum):
    METHOD_EXECUTION = "execution"
    FIELD_GET = "get"
    FIELD_SET = "set"


@dataclass(slots=True)
class JoinPoint:
    """A runtime join point handed to advice.

    ``signature`` reads like AspectJ's: ``Museum.render`` for execution,
    ``Node.current_context`` for field access.
    """

    kind: JoinPointKind
    target: Any
    cls: type
    name: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    #: For FIELD_SET: the value being assigned.  For FIELD_GET: unused.
    value: Any = None
    #: Populated for after-returning advice and around-proceed results.
    result: Any = None

    @property
    def signature(self) -> str:
        return f"{self.cls.__name__}.{self.name}"

    def describe(self) -> str:
        return f"{self.kind.value}({self.signature})"


class ProceedingJoinPoint(JoinPoint):
    """The join point seen by *around* advice; call :meth:`proceed`.

    ``proceed()`` continues with the original arguments; passing arguments
    overrides them, which is how an around advice rewrites a call.
    """

    __slots__ = ("_proceed",)

    def __init__(self, base: JoinPoint, proceed: Callable[..., Any]):
        super().__init__(
            kind=base.kind,
            target=base.target,
            cls=base.cls,
            name=base.name,
            args=base.args,
            kwargs=base.kwargs,
            value=base.value,
        )
        self._proceed = proceed

    @classmethod
    def for_chain(
        cls,
        base: JoinPoint,
        proceed: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> "ProceedingJoinPoint":
        """Allocation-lean constructor for compiled around chains.

        Skips the two-level dataclass ``__init__`` chain (a measurable
        share of an advised around call) by assigning slots directly;
        behaviour is identical to ``ProceedingJoinPoint(base, proceed)``
        followed by overwriting ``args``/``kwargs``.
        """
        pjp = object.__new__(cls)
        pjp.kind = base.kind
        pjp.target = base.target
        pjp.cls = base.cls
        pjp.name = base.name
        pjp.args = args
        pjp.kwargs = kwargs
        pjp.value = base.value
        pjp.result = None
        pjp._proceed = proceed
        return pjp

    def proceed(self, *args: Any, **kwargs: Any) -> Any:
        if args or kwargs:
            return self._proceed(*args, **kwargs)
        return self._proceed(*self.args, **self.kwargs)


class JoinPointPool:
    """A per-shadow free list of slotted :class:`JoinPoint` instances.

    The hot path used to allocate a fresh join point (and run the two-level
    dataclass ``__init__``, including a ``kwargs`` dict default) on every
    advised call.  A pool makes the steady state allocation-free: the
    wrapper pops a blank instance, fills the per-call slots (``target``,
    ``cls``, ``args``, ``kwargs``) and pushes it back when the call
    unwinds.  ``kind`` and ``name`` are constant per shadow, so they are
    stamped once at allocation time and never rewritten.

    Pool invariant: every instance on the free list has been scrubbed by
    :meth:`release` (``target``/``cls``/``kwargs``/``result``/``value``
    cleared, ``args`` emptied), so acquired join points never carry state
    from an earlier call and released references never keep call arguments
    alive.  Reentrant calls simply allocate past the free list; the cap
    bounds how many instances an advice storm can park.

    The pool is *not* an identity guarantee: advice that stores a join
    point beyond the call observes a scrubbed (and possibly re-used)
    object.  Join points are documented as valid for the duration of their
    join point only — same as AspectJ's.
    """

    __slots__ = ("_free", "_kind", "_name", "_cap")

    def __init__(self, kind: JoinPointKind, name: str, cap: int = 8):
        self._free: list[JoinPoint] = []
        self._kind = kind
        self._name = name
        self._cap = cap

    @property
    def free(self) -> list[JoinPoint]:
        """The free list (shared with code-generated wrappers)."""
        return self._free

    def blank(self) -> JoinPoint:
        """A new pool-shaped join point: shadow slots stamped, rest blank."""
        jp = JoinPoint.__new__(JoinPoint)
        jp.kind = self._kind
        jp.name = self._name
        jp.args = ()
        jp.kwargs = None
        jp.target = None
        jp.cls = None
        jp.value = None
        jp.result = None
        return jp

    def acquire(self, target: Any, args: tuple, kwargs: dict | None) -> JoinPoint:
        """A join point for one call; pair with :meth:`release`."""
        # try/except rather than `if free:` — the check-then-pop pair is
        # not atomic under threads, but `list.pop` itself is.
        try:
            jp = self._free.pop()
        except IndexError:
            jp = self.blank()
        jp.target = target
        jp.cls = type(target)
        jp.args = args
        jp.kwargs = kwargs
        return jp

    def release(self, jp: JoinPoint) -> None:
        """Scrub *jp* and return it to the free list (drops past the cap)."""
        free = self._free
        if len(free) < self._cap:
            jp.target = None
            jp.cls = None
            jp.args = ()
            jp.kwargs = None
            jp.value = None
            jp.result = None
            free.append(jp)


_stack: contextvars.ContextVar[tuple[JoinPoint, ...]] = contextvars.ContextVar(
    "repro_aop_joinpoint_stack", default=()
)


def current_stack() -> tuple[JoinPoint, ...]:
    """The join points currently executing, outermost first."""
    return _stack.get()


def push_frame(jp: JoinPoint) -> contextvars.Token:
    """Push *jp* onto the join point stack; returns the token for pop_frame.

    The function pair is the allocation-free flavour of
    :class:`joinpoint_frame` for hot wrappers (no context-manager object
    per call)::

        token = push_frame(jp)
        try:
            ...
        finally:
            pop_frame(token)
    """
    return _stack.set(_stack.get() + (jp,))


def pop_frame(token: contextvars.Token) -> None:
    """Pop the frame pushed by the matching :func:`push_frame`."""
    _stack.reset(token)


class joinpoint_frame:
    """Context manager pushing a join point for the duration of its extent."""

    __slots__ = ("_joinpoint", "_token")

    def __init__(self, jp: JoinPoint):
        self._joinpoint = jp
        self._token = None

    def __enter__(self) -> JoinPoint:
        self._token = push_frame(self._joinpoint)
        return self._joinpoint

    def __exit__(self, *exc_info) -> None:
        pop_frame(self._token)
