"""The zero-wrapper observation tier: ``sys.monitoring`` interception.

The codegen tier bottoms out at the cost of one wrapper frame per advised
call — the wrapper *is* a Python function, so even a fully-static before
advice pays frame setup, argument forwarding and a closure call.  The
pypy-sc lineage the roadmap cites weaves at the interpreter level with no
wrapper frames at all; CPython 3.12+ ``sys.monitoring`` (PEP 669) is the
closest user-space analogue: a tool registers callbacks for
``PY_START``/``PY_RETURN``/``PY_UNWIND`` events and masks them *per code
object*, so only the advised shadows' code raises events and every other
method of a monitored class runs at true plain-call cost.

This tier intercepts the eligible subset of advice only:

- **observation-only kinds** — ``before``, ``after_returning`` and
  ``after`` (finally).  ``around`` needs a proceed closure and
  ``after_throwing`` rewrites the exception path; both keep their wrapper
  tier.
- **static residue** — every pointcut :meth:`~Pointcut.residue_free`, so
  no per-call ``matches_dynamic`` is needed.
- **class-wide** — instance scopes dispatch through marker attributes on
  the wrapper tiers.
- **plain Python bodies** — generators/coroutines defer execution past
  the call, and inherited members share their code object with the
  defining class, so both stay on wrappers.

Dispatch runs from a flat per-code-object table: ``PY_START`` recovers
the receiver and arguments from the live frame, runs the before advice
over a pooled join point (pushing a join point frame when a cflow watcher
is live — exactly when the wrapper slow path would), and ``PY_RETURN`` /
``PY_UNWIND`` run the after flavours with the wrapper tiers' ordering
semantics.  Deployments stack on one code object in deployment order
(newest outermost), and monitor-tier shadows compose freely with
codegen/generic wrappers on other members of the same class.

``REPRO_AOP_MONITOR=0`` disables the tier; unset, it is auto-on wherever
``sys.monitoring`` exists (3.12+) and off below.
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING, Any, Iterable

from .advice import Advice, AdviceKind
from .joinpoint import JoinPointKind, JoinPointPool, pop_frame, push_frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .weaver import MethodShadow, _WatcherCount

#: Advice kinds that only observe a call (no proceed closure, no
#: exception rewriting) and so can dispatch from monitoring events.
OBSERVATION_KINDS = frozenset(
    {AdviceKind.BEFORE, AdviceKind.AFTER_RETURNING, AdviceKind.AFTER}
)

_CO_GENERATOR = 0x20
_CO_COROUTINE = 0x80
_CO_ASYNC_GENERATOR = 0x200
_CO_VARARGS = 0x04
_CO_VARKEYWORDS = 0x08
_DEFERRED = _CO_GENERATOR | _CO_COROUTINE | _CO_ASYNC_GENERATOR

_TOOL_RANGE = range(6)  # sys.monitoring tool ids 0..5

#: Free-list cap, shared with the generated wrappers' inlined release.
_POOL_CAP = 8


def monitor_supported() -> bool:
    """Whether this interpreter has ``sys.monitoring`` (CPython 3.12+)."""
    return hasattr(sys, "monitoring")


def monitor_enabled() -> bool:
    """The ``REPRO_AOP_MONITOR`` knob: auto-on where supported.

    Mirrors :func:`~repro.aop.codegen.codegen_enabled`'s parsing —
    ``0``/``false``/``no``/``off`` (any case) disable the tier — except
    the default is *supported-gated* rather than a constant: unset means
    on under 3.12+ and off below, so the same configuration deploys the
    fastest eligible tier everywhere.
    """
    if not monitor_supported():
        return False
    raw = os.environ.get("REPRO_AOP_MONITOR")
    if raw is None:
        return True
    return raw.strip().lower() not in {"0", "false", "no", "off"}


def advice_obstacle(advice: Iterable[Advice]) -> str | None:
    """Why this advice list can *never* take the monitor tier (None = could).

    Checks the advice-shape half of eligibility — the half
    :mod:`repro.aop.analysis` can evaluate statically.  Advice that
    passes here is "monitor material"; whether it actually deploys there
    also depends on :func:`shadow_obstacle`, the environment and the
    deployment's scope (see ``APL007``).
    """
    advice = list(advice)
    if not advice:
        return "no advice matches the shadow"
    for item in advice:
        if getattr(item, "generator", False):
            # Generator advice is AROUND-kind anyway, but give the
            # protocol its own reason: the send/throw loop must own the
            # call to proceed, which only a wrapper can provide.
            return (
                "generator advice drives the original through "
                "proceed/send/throw, which needs a wrapper"
            )
        if item.kind not in OBSERVATION_KINDS:
            return (
                f"{item.kind.value} advice needs a wrapper "
                "(proceed closure / exception rewrite)"
            )
        if not item.pointcut.residue_free():
            return "dynamic pointcut residue is evaluated per call"
    return None


def shadow_obstacle(shadow: "MethodShadow") -> str | None:
    """Why this shadow's code object cannot be monitored (None = it can)."""
    if getattr(shadow, "module", None) is not None:
        # ModuleShadow (duck-typed to avoid importing the weaver here):
        # the monitor bridge reads the receiver from the frame's first
        # local, and module-level functions have none.
        return "module-level functions have no receiver local to observe"
    original = shadow.original
    code = getattr(original, "__code__", None)
    if code is None:
        return "the member has no Python code object"
    if getattr(original, "__woven__", False):
        # A woven wrapper's code object comes from a shared codegen
        # template (or a shared generic closure): monitoring it would
        # fire for every shadow compiled from the same shape.
        return "the member is already a woven wrapper (stack through it)"
    if code.co_flags & _DEFERRED:
        return "generator/coroutine bodies execute after the call returns"
    if shadow.inherited:
        return "an inherited member shares its code object with the base class"
    if code.co_argcount < 1:
        return "the member takes no receiver parameter"
    if getattr(original, "__defaults__", None) or getattr(
        original, "__kwdefaults__", None
    ):
        # By PY_START the interpreter has already materialized default
        # values into the frame, so ``jp.args`` could not distinguish
        # caller-supplied arguments from defaulted ones — an observable
        # divergence from the wrapper tiers, which see the raw call.
        return "default parameter values are bound before PY_START fires"
    return None


def pin_reason(
    shadow: "MethodShadow",
    advice: Iterable[Advice],
    *,
    scoped: bool = False,
) -> str | None:
    """Why monitor-material advice stays on a wrapper tier right now.

    Returns None either when the advice would deploy to the monitor tier,
    *or* when it is not monitor material at all (see
    :func:`advice_obstacle`) — this function reports only the "eligible
    but pinned" cases the ``APL007`` diagnostic surfaces.
    """
    if advice_obstacle(advice) is not None:
        return None
    if not monitor_supported():
        return (
            "sys.monitoring is unavailable on this interpreter "
            f"({sys.version_info.major}.{sys.version_info.minor} < 3.12)"
        )
    if not monitor_enabled():
        return "REPRO_AOP_MONITOR disables the monitor tier"
    if scoped:
        return "instance-scoped deployments dispatch through wrapper markers"
    return shadow_obstacle(shadow)


def _bound(advice: Advice):
    """The advice body as a ready-to-call ``f(jp)`` callable.

    Prebinding the aspect here (the codegen tier inlines the same
    ``f(aspect, jp)`` pair into its generated source) keeps the per-call
    dispatch to one bound-method call instead of ``Advice.invoke``'s
    attribute loads and aspect branch.
    """
    if advice.aspect is not None:
        return advice.function.__get__(advice.aspect)
    return advice.function


class _MonitorEntry:
    """One deployment's advice on one monitored code object."""

    __slots__ = ("befores", "returnings_rev", "finallys_rev", "aspect_name")

    def __init__(self, advice: Iterable[Advice], aspect_name: str) -> None:
        advice = tuple(advice)
        self.befores = tuple(
            _bound(a) for a in advice if a.kind is AdviceKind.BEFORE
        )
        self.returnings_rev = tuple(
            _bound(a)
            for a in reversed(advice)
            if a.kind is AdviceKind.AFTER_RETURNING
        )
        self.finallys_rev = tuple(
            _bound(a) for a in reversed(advice) if a.kind is AdviceKind.AFTER
        )
        self.aspect_name = aspect_name

    @property
    def has_exit(self) -> bool:
        return bool(self.returnings_rev or self.finallys_rev)


class _CodeSite:
    """The flat dispatch record for one monitored code object.

    ``stack`` holds one :class:`_MonitorEntry` per stacked deployment,
    oldest first — the same order wrapper nesting produces (the newest
    deployment's wrapper is outermost), so before advice runs newest
    entry first and the after flavours oldest entry first.
    """

    __slots__ = (
        "cls",
        "name",
        "self_name",
        "pos_names",
        "vararg_name",
        "kwonly_names",
        "varkw_name",
        "simple",
        "pool",
        "acquire",
        "release",
        "free",
        "blank",
        "stack",
        "has_exit",
        "fast_befores",
    )

    def __init__(self, cls: type, name: str, code: Any) -> None:
        self.cls = cls
        self.name = name
        varnames = code.co_varnames
        argcount = code.co_argcount
        kwonlycount = code.co_kwonlyargcount
        self.self_name = varnames[0]
        self.pos_names = varnames[1:argcount]
        self.kwonly_names = varnames[argcount : argcount + kwonlycount]
        index = argcount + kwonlycount
        self.vararg_name = None
        if code.co_flags & _CO_VARARGS:
            self.vararg_name = varnames[index]
            index += 1
        self.varkw_name = varnames[index] if code.co_flags & _CO_VARKEYWORDS else None
        #: Receiver-only signature: the dominant case, dispatched without
        #: touching the frame locals beyond the receiver itself.
        self.simple = not (
            self.pos_names
            or self.kwonly_names
            or self.vararg_name
            or self.varkw_name
        )
        self.pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, name)
        self.acquire = self.pool.acquire
        self.release = self.pool.release
        # The free list and blank factory, bound flat for the inlined
        # acquire in the dispatch fast path (same surface the generated
        # wrappers bind as closure cells).
        self.free = self.pool.free
        self.blank = self.pool.blank
        self.stack: list[_MonitorEntry] = []
        self.has_exit = False
        self.fast_befores: tuple | None = None

    def refresh(self) -> None:
        self.has_exit = any(entry.has_exit for entry in self.stack)
        # One before-only deployment is the overwhelmingly common shape
        # (BreadcrumbAspect-style observation): dispatch it without the
        # stack-walk machinery.
        self.fast_befores = (
            self.stack[0].befores
            if len(self.stack) == 1 and not self.has_exit
            else None
        )


class MonitorRegistration:
    """A deployment's revocable claim on one monitored shadow."""

    __slots__ = ("_bridge", "_code", "_entry", "cls", "name", "advice_count")

    def __init__(
        self,
        bridge: "MonitorBridge",
        code: Any,
        entry: _MonitorEntry,
        cls: type,
        name: str,
        advice_count: int,
    ) -> None:
        self._bridge = bridge
        self._code = code
        self._entry = entry
        self.cls = cls
        self.name = name
        self.advice_count = advice_count

    @property
    def aspect_name(self) -> str:
        return self._entry.aspect_name

    @property
    def signature(self) -> str:
        return f"{self.cls.__name__}.{self.name}"

    def release(self) -> None:
        """Detach this deployment's advice (idempotent).

        When the last stacked entry of a code object goes, its local
        events are cleared; when the last code object goes, the bridge
        frees its tool id — undeploying the final monitor-tier
        deployment leaves ``sys.monitoring`` exactly as found.
        """
        self._bridge._remove(self._code, self._entry)


class MonitorBridge:
    """One runtime's ``sys.monitoring`` tool: table, callbacks, tool id.

    The tool id is acquired lazily on the first attached shadow and freed
    when the last registration releases, so a runtime that never routes a
    shadow here never touches ``sys.monitoring`` — and six runtimes with
    live monitor deployments exhaust the id space gracefully: the seventh
    simply keeps its shadows on the wrapper tiers.
    """

    def __init__(self, name: str, watchers: "_WatcherCount") -> None:
        self._name = name
        self._watchers = watchers
        self._tool_id: int | None = None
        #: code object -> :class:`_CodeSite` (the flat dispatch table).
        self._table: dict[Any, _CodeSite] = {}
        #: id(frame) -> (jp, cflow token, site, unwind floor) for calls
        #: whose exit the callbacks must observe.
        self._live: dict[int, tuple] = {}

    # -- registration ---------------------------------------------------------

    def attach(
        self, shadow: "MethodShadow", advice: Iterable[Advice]
    ) -> MonitorRegistration | None:
        """Route one shadow's advice through monitoring events.

        Returns None — leaving the caller to fall back to a wrapper tier —
        when no tool id is free or the code object is already monitored
        for a *different* site (two class members sharing one function
        would cross-advise each other).
        """
        advice = list(advice)
        code = shadow.original.__code__
        site = self._table.get(code)
        if site is not None:
            if (site.cls, site.name) != (shadow.cls, shadow.name):
                return None
        else:
            if not self._ensure_tool():
                return None
            site = _CodeSite(shadow.cls, shadow.name, code)
            self._table[code] = site
        entry = _MonitorEntry(advice, type(advice[0].aspect).__name__ if advice[0].aspect is not None else "<unbound>")
        site.stack.append(entry)
        site.refresh()
        self._arm(code, site)
        return MonitorRegistration(
            self, code, entry, shadow.cls, shadow.name, len(advice)
        )

    def _remove(self, code: Any, entry: _MonitorEntry) -> None:
        site = self._table.get(code)
        if site is None or entry not in site.stack:
            return
        site.stack.remove(entry)
        if site.stack:
            site.refresh()
            self._arm(code, site)
            return
        del self._table[code]
        if self._tool_id is not None:
            sys.monitoring.set_local_events(self._tool_id, code, 0)
        if not self._table:
            self._release_tool()

    def _arm(self, code: Any, site: _CodeSite) -> None:
        """Set the code object's local events to exactly what it needs.

        ``PY_RETURN`` is armed only when something must observe the exit:
        the site carries after/finally advice, a cflow watcher is live
        (the pushed join point frame must be popped on return), or a call
        is in flight that may have pushed one.  A before-only site in a
        watcher-free runtime pays for a single ``PY_START`` event — the
        difference is ~50 ns of C→Python callback per call.
        """
        monitoring = sys.monitoring
        events = monitoring.events.PY_START
        if site.has_exit or self._watchers.count or self._live:
            events |= monitoring.events.PY_RETURN
        monitoring.set_local_events(self._tool_id, code, events)

    def refresh_events(self) -> None:
        """Re-arm every site after a cflow-watcher 0↔1 transition."""
        if self._tool_id is None:
            return
        for code, site in self._table.items():
            self._arm(code, site)

    def _ensure_tool(self) -> bool:
        if self._tool_id is not None:
            return True
        if not monitor_supported():
            return False
        monitoring = sys.monitoring
        for tool in _TOOL_RANGE:
            if monitoring.get_tool(tool) is not None:
                continue
            try:
                monitoring.use_tool_id(tool, f"repro-aop:{self._name}")
            except ValueError:
                continue  # raced another tool; try the next id
            self._tool_id = tool
            events = monitoring.events
            monitoring.register_callback(tool, events.PY_START, self._on_start)
            monitoring.register_callback(tool, events.PY_RETURN, self._on_return)
            monitoring.register_callback(tool, events.PY_UNWIND, self._on_unwind)
            # PY_UNWIND is not a local event, so it runs tool-global
            # while any site is monitored; the callback's first check
            # (`not self._live`) keeps the tax on unrelated exception
            # unwinds to one dict bool.
            monitoring.set_events(tool, events.PY_UNWIND)
            # Watcher 0↔1 transitions re-arm PY_RETURN on before-only
            # sites (the pushed cflow frame must be popped on return);
            # subscribed only while the tool is held, so the shared
            # watcher count never accumulates dead bridges.
            self._watchers.subscribe(self.refresh_events)
            return True
        return False

    def _release_tool(self) -> None:
        if self._tool_id is None:
            return
        monitoring = sys.monitoring
        events = monitoring.events
        tool = self._tool_id
        self._tool_id = None
        self._watchers.unsubscribe(self.refresh_events)
        monitoring.set_events(tool, 0)
        monitoring.register_callback(tool, events.PY_START, None)
        monitoring.register_callback(tool, events.PY_RETURN, None)
        monitoring.register_callback(tool, events.PY_UNWIND, None)
        monitoring.free_tool_id(tool)

    # -- dispatch -------------------------------------------------------------

    def _on_start(self, code: Any, _offset: int) -> None:
        site = self._table.get(code)
        if site is None:
            return
        frame = sys._getframe(1)
        locs = frame.f_locals
        target = locs[site.self_name]
        if not isinstance(target, site.cls):
            # A code object is not a member: class factories hand the
            # *same* code to every class they create, so a sibling
            # class's calls raise this event too.  The wrapper tiers
            # advise exactly one class member; the receiver check is the
            # monitor tier's equivalent.
            return
        if site.simple:
            args = ()
            kwargs = {}
        else:
            args = tuple([locs[name] for name in site.pos_names])
            if site.vararg_name is not None:
                args += locs[site.vararg_name]
            kwargs = (
                {name: locs[name] for name in site.kwonly_names}
                if site.kwonly_names
                else {}
            )
            if site.varkw_name is not None:
                kwargs.update(locs[site.varkw_name])
        fast = site.fast_befores
        if fast is not None and not self._watchers.count:
            # Single before-only deployment, no cflow watcher: inline the
            # pool acquire (the pop is atomic; see JoinPointPool.acquire)
            # and skip the stack walk and exit bookkeeping entirely.
            try:
                jp = site.free.pop()
            except IndexError:
                jp = site.blank()
            jp.target = target
            jp.cls = type(target)
            jp.args = args
            jp.kwargs = kwargs
            try:
                for call in fast:
                    call(jp)
            except BaseException:
                # floor 1 == past the only entry: PY_UNWIND just pops
                # nothing and releases the join point.
                self._live[id(frame)] = (jp, None, site, 1)
                raise
            free = site.free
            if len(free) < _POOL_CAP:  # scrub per the pool invariant
                jp.target = None
                jp.cls = None
                jp.args = ()
                jp.kwargs = None
                jp.value = None
                jp.result = None
                free.append(jp)
            return
        jp = site.acquire(target, args, kwargs)
        token = push_frame(jp) if self._watchers.count else None
        stack = site.stack
        index = len(stack)
        try:
            while index:  # newest deployment's befores first (outermost)
                index -= 1
                for call in stack[index].befores:
                    call(jp)
        except BaseException:
            # A before raised: the monitored frame unwinds with the
            # exception before its body runs.  Deployments *outer* to
            # the raising one (newer; indices above `index`) still run
            # their finallys on PY_UNWIND, exactly as their wrappers
            # would around a raising inner wrapper.
            self._live[id(frame)] = (jp, token, site, index + 1)
            raise
        if token is not None or site.has_exit:
            self._live[id(frame)] = (jp, token, site, 0)
        else:
            site.release(jp)

    def _on_return(self, code: Any, _offset: int, retval: Any) -> None:
        live = self._live
        if not live:
            return
        frame = sys._getframe(1)
        info = live.pop(id(frame), None)
        if info is None:
            return
        jp, token, site, _floor = info  # a returning frame ran every before
        jp.result = retval
        stack = site.stack
        index = 0
        try:
            while index < len(stack):  # oldest (innermost) exits first
                entry = stack[index]
                index += 1
                for call in entry.returnings_rev:
                    call(jp)
                for call in entry.finallys_rev:
                    call(jp)
        except BaseException as exc:
            # An after advice raised: outer deployments still run their
            # finallys (their wrappers would see the exception from the
            # nested call), then the exception propagates.
            jp.result = exc
            while index < len(stack):
                entry = stack[index]
                index += 1
                for call in entry.finallys_rev:
                    call(jp)
            raise
        finally:
            if token is not None:
                pop_frame(token)
            site.release(jp)

    def _on_unwind(self, code: Any, _offset: int, exc: BaseException) -> None:
        live = self._live
        if not live:
            return
        frame = sys._getframe(1)
        info = live.pop(id(frame), None)
        if info is None:
            return
        jp, token, site, floor = info
        jp.result = exc
        stack = site.stack
        index = floor
        try:
            while index < len(stack):
                entry = stack[index]
                index += 1
                for call in entry.finallys_rev:
                    call(jp)
        finally:
            if token is not None:
                pop_frame(token)
            site.release(jp)

    # -- introspection --------------------------------------------------------

    @property
    def tool_id(self) -> int | None:
        return self._tool_id

    def sites(self) -> list[_CodeSite]:
        return list(self._table.values())

    def stats(self) -> dict[str, Any]:
        """A JSON-serializable snapshot for ``stats()`` / ``/-/stats``."""
        return {
            "supported": monitor_supported(),
            "enabled": monitor_enabled(),
            "tool_id": self._tool_id,
            "code_objects": len(self._table),
            "stacked_entries": sum(len(s.stack) for s in self._table.values()),
            "in_flight": len(self._live),
        }
