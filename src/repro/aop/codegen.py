"""Code-generated per-shadow wrappers: the weaver's fastest dispatch tier.

PR 1 compiled advice chains at deploy time (:class:`~repro.aop.weaver.
CompiledChain`), which removed the per-call re-partitioning but still paid,
on every advised call, for a dataclass join point construction, a
``proceed`` closure, and a generic chain dispatch looping over advice
tuples (most of them empty).  This module removes those too: at ``deploy()``
time the weaver synthesizes a *specialized closure per shadow* — a template
rendered to source and ``exec``-compiled once, with the advice callables,
the original function and the join point pool bound as parameters of a
factory function (the closure-specialization idiom ``aspectlib`` and
``namedtuple`` use).

What a generated wrapper inlines:

- the exact before/around/after-returning/after-throwing/after sequence of
  its advice chain, unrolled — no loops, no :class:`CompiledChain` call,
  and no exception handler at all when no after-throwing/after advice
  could observe one;
- lazy, pooled join point construction: the static fast path pops a blank
  slotted :class:`~repro.aop.joinpoint.JoinPoint` from a per-shadow
  :class:`~repro.aop.joinpoint.JoinPointPool` free list and fills four
  slots, instead of running the dataclass ``__init__`` — the steady state
  allocates nothing but the call frames;
- the cflow-watcher check: when any deployment anywhere carries a
  ``cflow()`` residue, the wrapper delegates to a prebuilt slow path that
  pushes join point frames and runs the compiled chain, preserving the
  seed's cross-deployment ``cflow`` semantics exactly.

Shadows whose advice carries a runtime residue (and advice-free cflow
tracking shadows) keep the weaver's generic closures: their dispatch is
generic by construction — frame push, then selection through the
deploy-time :class:`~repro.aop.weaver._ChainSelector`, whose
per-``(pointcut, class)`` residue masks are memoized so the per-call cost
is only the genuinely dynamic tests (``target``/``args``/``cflow``) —
and a specialized template would just duplicate those semantics.

Escape hatch: set ``REPRO_AOP_CODEGEN=0`` in the environment to fall back
to the generic compiled-chain wrappers (checked at each ``deploy()``, so a
test can toggle it per deployment).  Generated functions carry their
source on ``__codegen_source__`` and their pool on ``__joinpoint_pool__``
for debugging and tests.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Sequence

from .advice import Advice, AdviceKind
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    JoinPointPool,
    ProceedingJoinPoint,
    pop_frame,
    push_frame,
)

_FILENAME = "<repro.aop.codegen>"

#: Free-list cap mirrored into generated release blocks (keep in sync with
#: :class:`JoinPointPool`'s default).
_POOL_CAP = 8


def codegen_enabled() -> bool:
    """Whether deploys synthesize per-shadow wrappers (default: yes).

    Controlled by the ``REPRO_AOP_CODEGEN`` environment variable; ``0``,
    ``false``, ``no`` and ``off`` disable it.  Read at deploy time, so
    flipping it affects subsequent deployments, never installed wrappers.
    """
    return os.environ.get("REPRO_AOP_CODEGEN", "1").strip().lower() not in {
        "0",
        "false",
        "no",
        "off",
    }


@functools.lru_cache(maxsize=None)
def _compiled(source: str):
    """Compile generated source once per distinct advice shape."""
    return compile(source, _FILENAME, "exec")


def _build(source: str, bindings: dict[str, Any]) -> Callable:
    namespace: dict[str, Any] = {}
    exec(_compiled(source), namespace)
    wrapper = namespace["_factory"](**bindings)
    wrapper.__codegen_source__ = source
    return wrapper


def _advice_call(index: int, advice: Advice, jp_var: str) -> str:
    """The inlined invocation expression for one advice."""
    if advice.aspect is not None:
        return f"_f{index}(_s{index}, {jp_var})"
    return f"_f{index}({jp_var})"


def _acquire_lines(indent: str) -> list[str]:
    # Pool invariant: free-list entries are scrubbed, so only the per-call
    # slots need filling here.  The pop is guarded by try/except rather
    # than a truthiness check because `if _free: _free.pop()` is not
    # atomic — another thread can drain the last entry in between, and
    # `list.pop` itself is.
    return [
        f"{indent}try:",
        f"{indent}    jp = _free.pop()",
        f"{indent}except IndexError:",
        f"{indent}    jp = _blank()",
        f"{indent}jp.target = self",
        f"{indent}jp.cls = type(self)",
        f"{indent}jp.args = args",
        f"{indent}jp.kwargs = kwargs",
    ]


def _release_lines(indent: str) -> list[str]:
    # Must scrub every mutable slot (the pool invariant _acquire_lines
    # relies on): advice may have assigned any of them, value included.
    return [
        f"{indent}if len(_free) < {_POOL_CAP}:",
        f"{indent}    jp.target = None",
        f"{indent}    jp.cls = None",
        f"{indent}    jp.args = ()",
        f"{indent}    jp.kwargs = None",
        f"{indent}    jp.value = None",
        f"{indent}    jp.result = None",
        f"{indent}    _free.append(jp)",
    ]


def _static_source(advice: Sequence[Advice]) -> tuple[str, list[str]]:
    """Source + advice-binding parameter names for a fully-static chain.

    Mirrors :class:`CompiledChain` exactly: before advice outermost-first,
    arounds nested with the first advice outermost, after-returning /
    after-throwing / after (finally) innermost-first, and the exception
    path (present only when it could run advice) doing after-throwing then
    after before re-raising.
    """
    befores = [(i, a) for i, a in enumerate(advice) if a.kind is AdviceKind.BEFORE]
    arounds = [(i, a) for i, a in enumerate(advice) if a.kind is AdviceKind.AROUND]
    returnings = [
        (i, a) for i, a in enumerate(advice) if a.kind is AdviceKind.AFTER_RETURNING
    ]
    throwings = [
        (i, a) for i, a in enumerate(advice) if a.kind is AdviceKind.AFTER_THROWING
    ]
    finallys = [(i, a) for i, a in enumerate(advice) if a.kind is AdviceKind.AFTER]

    params = ["_original", "_watchers", "_slow", "_free", "_blank"]
    if arounds:
        params.append("_for_chain")
    for index, item in enumerate(advice):
        params.append(f"_f{index}")
        if item.aspect is not None:
            params.append(f"_s{index}")

    body: list[str] = []
    body.append(f"def _factory({', '.join(params)}):")
    body.append("    def wrapper(self, *args, **kwargs):")
    body.append("        if _watchers.count:")
    body.append("            return _slow(self, args, kwargs)")
    body.extend(_acquire_lines("        "))
    body.append("        try:")

    run = "            "
    for index, item in befores:
        body.append(f"{run}{_advice_call(index, item, 'jp')}")

    # Around nesting: runners for all but the outermost advice (each packs
    # proceed()'s varargs into a fresh ProceedingJoinPoint, exactly like
    # the compiled chain's _wrap_around), outermost call inlined.
    if arounds:
        body.append(f"{run}def _p(*a, **k):")
        body.append(f"{run}    return _original(self, *a, **k)")
        inner_name = "_p"
        for index, item in reversed(arounds[1:]):
            body.append(f"{run}def _r{index}(*a, **k):")
            body.append(f"{run}    pjp = _for_chain(jp, {inner_name}, a, k)")
            body.append(f"{run}    return {_advice_call(index, item, 'pjp')}")
            inner_name = f"_r{index}"
        outer_index, outer = arounds[0]
        call = (
            f"pjp0 = _for_chain(jp, {inner_name}, jp.args, dict(jp.kwargs))",
            f"result = {_advice_call(outer_index, outer, 'pjp0')}",
        )
    else:
        call = ("result = _original(self, *jp.args, **jp.kwargs)",)

    if throwings or finallys:
        body.append(f"{run}try:")
        for line in call:
            body.append(f"{run}    {line}")
        body.append(f"{run}except Exception as exc:")
        body.append(f"{run}    jp.result = exc")
        for index, item in reversed(throwings):
            body.append(f"{run}    {_advice_call(index, item, 'jp')}")
        for index, item in reversed(finallys):
            body.append(f"{run}    {_advice_call(index, item, 'jp')}")
        body.append(f"{run}    raise")
    else:
        for line in call:
            body.append(f"{run}{line}")
    body.append(f"{run}jp.result = result")
    for index, item in reversed(returnings):
        body.append(f"{run}{_advice_call(index, item, 'jp')}")
    for index, item in reversed(finallys):
        body.append(f"{run}{_advice_call(index, item, 'jp')}")
    body.append(f"{run}return result")

    body.append("        finally:")
    body.extend(_release_lines("            "))
    body.append("    return wrapper")
    return "\n".join(body) + "\n", params


def _make_slow_path(original: Callable, name: str, chain: Callable) -> Callable:
    """The frame-pushing fallback a static wrapper takes under cflow watch.

    Identical to the generic compiled wrapper's watcher branch: a plain
    join point (the frame may outlive the call in captured stack tuples,
    so it is deliberately *not* pooled), a frame push, the compiled chain.
    """

    def slow(self: Any, args: tuple, kwargs: dict) -> Any:
        jp = JoinPoint(
            JoinPointKind.METHOD_EXECUTION, self, type(self), name, args, kwargs
        )

        def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
            return original(self, *call_args, **call_kwargs)

        token = push_frame(jp)
        try:
            return chain(jp, proceed)
        finally:
            pop_frame(token)

    return slow


def generate_method_wrapper(
    original: Callable,
    name: str,
    advice: Sequence[Advice],
    selector: Any,
    watchers: Any,
) -> Callable:
    """A specialized wrapper for one fully-static method shadow.

    Codegen only targets static chains — that is where specialization
    buys anything (the dynamic and tracking tiers are generic dispatch by
    construction: frame push, memoized-mask select, generic chain — so
    they share the weaver's generic closures instead of duplicating those
    semantics in a template; their frame join points are never pooled, as
    a captured ``current_stack()`` may outlive the call).

    *selector* is the deploy-time chain selector (the generated wrapper
    uses its full chain for the watcher slow path); *watchers* is the
    weaver's live cflow-watcher counter.  The caller guarantees *advice*
    is non-empty and residue-free, and stamps
    ``__woven__``/``__woven_original__`` metadata.
    """
    pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, name, cap=_POOL_CAP)
    source, params = _static_source(advice)
    bindings = {
        "_original": original,
        "_free": pool.free,
        "_blank": pool.blank,
        "_watchers": watchers,
        "_slow": _make_slow_path(original, name, selector.full_chain),
    }
    if "_for_chain" in params:
        bindings["_for_chain"] = ProceedingJoinPoint.for_chain
    for index, item in enumerate(advice):
        bindings[f"_f{index}"] = item.function
        if item.aspect is not None:
            bindings[f"_s{index}"] = item.aspect
    wrapper = _build(source, bindings)

    source = wrapper.__codegen_source__
    functools.update_wrapper(wrapper, original)
    wrapper.__codegen_source__ = source
    wrapper.__joinpoint_pool__ = pool
    return wrapper
