"""Code-generated per-shadow wrappers: the weaver's fastest dispatch tier.

PR 1 compiled advice chains at deploy time (:class:`~repro.aop.weaver.
CompiledChain`), which removed the per-call re-partitioning but still paid,
on every advised call, for a dataclass join point construction, a
``proceed`` closure, and a generic chain dispatch looping over advice
tuples (most of them empty).  This module removes those too: at deploy
time the weaver synthesizes a *specialized closure per shadow* — a template
rendered to source and ``exec``-compiled once, with the advice callables,
the original function and the join point pool bound as parameters of a
factory function (the closure-specialization idiom ``aspectlib`` and
``namedtuple`` use).

What a generated wrapper inlines:

- the exact before/around/after-returning/after-throwing/after sequence of
  its advice chain, unrolled — no loops, no :class:`CompiledChain` call,
  and no exception handler at all when no after-throwing/after advice
  could observe one;
- lazy, pooled join point construction: the static fast path pops a blank
  slotted :class:`~repro.aop.joinpoint.JoinPoint` from a per-shadow
  :class:`~repro.aop.joinpoint.JoinPointPool` free list and fills four
  slots, instead of running the dataclass ``__init__`` — the steady state
  allocates nothing but the call frames;
- the cflow-watcher check: when any deployment in the owning runtime
  carries a ``cflow()`` residue, the wrapper delegates to a prebuilt slow
  path that pushes join point frames and runs the compiled chain,
  preserving the seed's cross-deployment ``cflow`` semantics exactly.

*Field* shadows get the same treatment (:func:`generate_field_descriptor`):
a fully-static woven field deploys as a generated subclass of
``_WovenField`` whose ``__get__``/``__set__`` inline the advice sequence
and the backing ``__dict__`` read/write over pooled join points — no
``read``/``write`` closure allocation and no generic chain dispatch per
attribute access.  Field-set proceed arguments are honoured positionally
(``proceed(new_value)``), matching what around advice actually writes.

Shadows whose advice carries a runtime residue (and advice-free cflow
tracking shadows) keep the weaver's generic closures: their dispatch is
generic by construction — frame push, then selection through the
deploy-time :class:`~repro.aop.weaver._ChainSelector`, whose
per-``(pointcut, class)`` residue masks are memoized so the per-call cost
is only the genuinely dynamic tests (``target``/``args``/``cflow``) —
and a specialized template would just duplicate those semantics.

Escape hatch: set ``REPRO_AOP_CODEGEN=0`` in the environment to fall back
to the generic compiled-chain wrappers (checked at each deploy, so a
test can toggle it per deployment).  Generated functions carry their
source on ``__codegen_source__`` and their pool on ``__joinpoint_pool__``
(``__joinpoint_pools__`` for field descriptors) for debugging, tests and
the runtime introspection API.  Compiled template sources are cached per
advice *shape* in a :class:`CodegenCache` — one per
:class:`~repro.aop.runtime.WeaverRuntime`, so cache statistics are scoped
like the rest of the runtime state.
"""

from __future__ import annotations

import functools
import inspect
import keyword
import os
from typing import Any, Callable, Sequence

from .advice import Advice, AdviceKind, proceed, return_
from .joinpoint import (
    JoinPoint,
    JoinPointKind,
    JoinPointPool,
    ProceedingJoinPoint,
    pop_frame,
    push_frame,
)

_FILENAME = "<repro.aop.codegen>"

#: Placeholder attribute name scoped templates render for the scope's
#: instance marker.  The marker name is per-scope (``_aop_scope_N``), so
#: baking it into the template would force a fresh compile for every
#: scope; rendering this fixed slot instead keeps the source — and the
#: compiled code cached per advice *shape* — scope-independent, and the
#: real marker is substituted into a cheap per-wrapper clone of the code
#: object (:func:`_retarget_code`).  Session scopes, created per
#: connected user, therefore never pay a compile.
_MARKER_SLOT = "_aop_marker_slot"

#: Scope-marker class default while any cflow watcher is live in a runtime
#: using the marker's class.  The scoped dispatch templates read the marker
#: with ONE attribute load: ``None`` means "unscoped receiver, no watcher —
#: call the original plain", this sentinel means "unscoped receiver but
#: frames are observable — take the slow path", and anything else is the
#: owning scope (a member instance's stamp).  The weaver's marker-default
#: board flips installed defaults between ``None`` and this object on
#: watcher-count transitions, which is what keeps the passthrough at a
#: single load instead of marker *plus* watcher reads per call.
WATCHED = object()

#: Free-list cap mirrored into generated release blocks (keep in sync with
#: :class:`JoinPointPool`'s default).
_POOL_CAP = 8


def codegen_enabled() -> bool:
    """Whether deploys synthesize per-shadow wrappers (default: yes).

    Controlled by the ``REPRO_AOP_CODEGEN`` environment variable; ``0``,
    ``false``, ``no`` and ``off`` disable it.  Read at deploy time, so
    flipping it affects subsequent deployments, never installed wrappers.
    """
    return os.environ.get("REPRO_AOP_CODEGEN", "1").strip().lower() not in {
        "0",
        "false",
        "no",
        "off",
    }


class CodegenCache:
    """A per-runtime compile cache for generated wrapper sources.

    Sources are shaped by the advice sequence, not its identity, so a
    batch deploy of a hundred identically-shaped shadows compiles once.
    Earlier revisions kept one process-wide ``lru_cache``; giving each
    :class:`~repro.aop.runtime.WeaverRuntime` its own cache keeps compile
    *statistics* (how much codegen a runtime performed, how often shapes
    were shared) scoped with the rest of the runtime state — the code
    objects themselves are pure functions of the source either way.
    """

    __slots__ = (
        "_code",
        "sources_compiled",
        "compile_hits",
        "wrappers_built",
        "markers_retargeted",
    )

    def __init__(self) -> None:
        self._code: dict[str, Any] = {}
        self.sources_compiled = 0
        self.compile_hits = 0
        self.wrappers_built = 0
        self.markers_retargeted = 0

    def code_for(self, source: str):
        """The compiled code object for *source* (memoized)."""
        code = self._code.get(source)
        if code is None:
            code = self._code[source] = compile(source, _FILENAME, "exec")
            self.sources_compiled += 1
        else:
            self.compile_hits += 1
        return code

    def code_for_marker(self, source: str, marker: str):
        """*source*'s compiled code with its marker slot aimed at *marker*.

        The compile is shared across scopes (the source renders the fixed
        :data:`_MARKER_SLOT` placeholder); only the cheap code-object
        clone is per-marker.  Retargets are deliberately *not* cached —
        markers are per-scope and scopes churn with sessions, so a
        per-marker cache would grow without bound, while a retarget costs
        tuple rebuilds rather than a parse.
        """
        self.markers_retargeted += 1
        return _retarget_code(self.code_for(source), marker)

    def stats(self) -> dict[str, int]:
        return {
            "sources_compiled": self.sources_compiled,
            "compile_hits": self.compile_hits,
            "wrappers_built": self.wrappers_built,
            "markers_retargeted": self.markers_retargeted,
        }


#: The default runtime's compile cache (see :class:`CodegenCache`).
default_cache = CodegenCache()


def _retarget_code(code, marker: str):
    """A clone of *code* with :data:`_MARKER_SLOT` renamed to *marker*.

    Attribute loads resolve through ``co_names``, so renaming the slot
    there (recursively, through nested function code objects in
    ``co_consts``) redirects every ``self.<slot>`` load without touching
    the bytecode — the resulting wrapper is byte-identical to one whose
    source had *marker* baked in.  Code objects that never mention the
    slot are returned untouched.
    """
    names = code.co_names
    consts = code.co_consts
    new_names = tuple(marker if name == _MARKER_SLOT else name for name in names)
    new_consts = tuple(
        _retarget_code(const, marker) if isinstance(const, type(code)) else const
        for const in consts
    )
    if new_names == names and new_consts == consts:
        return code
    return code.replace(co_names=new_names, co_consts=new_consts)


def _build(
    source: str,
    bindings: dict[str, Any],
    cache: CodegenCache,
    *,
    marker: str | None = None,
) -> Callable:
    if marker is None:
        code = cache.code_for(source)
    else:
        # Scoped marker dispatch: the compile is shared per advice shape;
        # the marker attribute is aimed per wrapper.  The recorded source
        # shows the *real* marker so `aop inspect --source` and the
        # analysis battery see exactly what executes.
        code = cache.code_for_marker(source, marker)
        source = source.replace(_MARKER_SLOT, marker)
    namespace: dict[str, Any] = {}
    exec(code, namespace)
    wrapper = namespace["_factory"](**bindings)
    wrapper.__codegen_source__ = source
    cache.wrappers_built += 1
    return wrapper


def _advice_call(prefix: str, index: int, advice: Advice, jp_var: str) -> str:
    """The inlined invocation expression for one advice."""
    if advice.aspect is not None:
        return f"{prefix}f{index}({prefix}a{index}, {jp_var})"
    return f"{prefix}f{index}({jp_var})"


def _advice_params(prefix: str, advice: Sequence[Advice]) -> list[str]:
    params: list[str] = []
    for index, item in enumerate(advice):
        params.append(f"{prefix}f{index}")
        if item.aspect is not None:
            params.append(f"{prefix}a{index}")
    return params


def _bind_advice(
    prefix: str, advice: Sequence[Advice], bindings: dict[str, Any]
) -> None:
    for index, item in enumerate(advice):
        bindings[f"{prefix}f{index}"] = item.function
        if item.aspect is not None:
            bindings[f"{prefix}a{index}"] = item.aspect


def _by_kind(advice: Sequence[Advice], kind: AdviceKind) -> list[tuple[int, Advice]]:
    return [(i, a) for i, a in enumerate(advice) if a.kind is kind]


def _uses_generator(advice: Sequence[Advice]) -> bool:
    return any(item.generator for item in advice)


def _sole_generator(advice: Sequence[Advice]) -> bool:
    """True when the chain is exactly one generator advice (around slot)."""
    return len(advice) == 1 and advice[0].generator


def _generator_drive_lines(advice_expr: str, call: str, pjp: str) -> list[str]:
    """The inlined send/throw protocol for one generator advice.

    Must stay behaviourally identical to ``advice.drive_generator`` —
    this is that loop, unrolled into template source so generator advice
    rides the pooled wrapper tier instead of a generic driver call.
    ``advice_expr`` instantiates the advisor (the generator function
    applied to *pjp*), ``call`` names the inner proceed callable.  The
    block leaves the advised call's return value in ``result``.
    """
    return [
        f"_gen = {advice_expr}",
        "try:",
        "    _adv = _gen.send(None)",
        "except StopIteration:",
        "    _adv = _return",
        "result = None",
        "while True:",
        "    if _adv is _proceed or _adv is None:",
        f"        _cargs = {pjp}.args",
        f"        _ckw = {pjp}.kwargs",
        "    elif isinstance(_adv, _proceed):",
        "        _cargs = _adv.args",
        "        _ckw = _adv.kwargs",
        "    elif _adv is _return:",
        "        _gen.close()",
        "        break",
        "    elif isinstance(_adv, _return):",
        "        result = _adv.value",
        "        _gen.close()",
        "        break",
        "    else:",
        "        _gen.close()",
        "        raise RuntimeError(",
        "            f'generator advice yielded {_adv!r}; expected proceed, '",
        "            f'proceed(...), return_ or return_(...)'",
        "        )",
        "    try:",
        f"        _gres = {call}(*_cargs, **_ckw)",
        "    except Exception as _gexc:",
        "        try:",
        "            _adv = _gen.throw(_gexc)",
        "        except StopIteration:",
        "            break",
        "    else:",
        "        try:",
        "            _adv = _gen.send(_gres)",
        "        except StopIteration:",
        "            result = _gres",
        "            break",
    ]


def _sole_generator_resume_lines(call: str) -> list[str]:
    """One proceed-and-resume step of the sole-generator drive loop."""
    return [
        "    try:",
        f"        _gres = {call}",
        "    except Exception as _gexc:",
        "        try:",
        "            _adv = _gen.throw(_gexc)",
        "        except StopIteration:",
        "            break",
        "        continue",
        "    try:",
        "        _adv = _gen.send(_gres)",
        "    except StopIteration:",
        "        result = _gres",
        "        break",
        "    continue",
    ]


def _sole_generator_drive_lines(
    advice_expr: str, bare_call: str, altered_call: str
) -> list[str]:
    """The send/throw protocol specialized for a chain of ONE generator advice.

    With no other advice on the shadow there is nothing for an inner
    proceed closure to compose with, so the specialization drops the
    ``_p`` closure and the per-call :class:`ProceedingJoinPoint`: the
    advisor receives the pooled join point itself, bare ``proceed``
    replays ``jp.args``/``jp.kwargs`` straight into *bare_call* (rewrites
    of ``jp.args`` are honored, exactly like the chain call line), and a
    ``proceed(...)`` instance substitutes its own arguments through
    *altered_call*.  Behaviour is otherwise pinned to
    ``advice.drive_generator``; the block leaves the advised call's
    return value in ``result``.
    """
    return [
        f"_gen = {advice_expr}",
        # Direct `_gen.send(...)` calls on purpose: 3.11's LOAD_METHOD
        # specialization skips the bound-method allocation that hoisting
        # `_gen.send` into a local would force (~75 ns/call measured).
        "try:",
        "    _adv = _gen.send(None)",
        "except StopIteration:",
        "    _adv = _return",
        "result = None",
        "while True:",
        "    if _adv is _proceed or _adv is None:",
        *(f"    {line}" for line in _sole_generator_resume_lines(bare_call)),
        "    if isinstance(_adv, _proceed):",
        *(f"    {line}" for line in _sole_generator_resume_lines(altered_call)),
        "    if isinstance(_adv, _return):",
        "        result = _adv.value",
        "        _gen.close()",
        "        break",
        "    if _adv is _return:",
        "        _gen.close()",
        "        break",
        "    _gen.close()",
        "    raise RuntimeError(",
        "        f'generator advice yielded {_adv!r}; expected proceed, '",
        "        f'proceed(...), return_ or return_(...)'",
        "    )",
    ]


def _acquire_lines(indent: str, free: str, blank: str) -> list[str]:
    # Pool invariant: free-list entries are scrubbed, so only the per-call
    # slots need filling here.  The pop is guarded by try/except rather
    # than a truthiness check because `if _free: _free.pop()` is not
    # atomic — another thread can drain the last entry in between, and
    # `list.pop` itself is.
    return [
        f"{indent}try:",
        f"{indent}    jp = {free}.pop()",
        f"{indent}except IndexError:",
        f"{indent}    jp = {blank}()",
    ]


def _release_lines(indent: str, free: str) -> list[str]:
    # Must scrub every mutable slot (the pool invariant _acquire_lines
    # relies on): advice may have assigned any of them, value included.
    return [
        f"{indent}if len({free}) < {_POOL_CAP}:",
        f"{indent}    jp.target = None",
        f"{indent}    jp.cls = None",
        f"{indent}    jp.args = ()",
        f"{indent}    jp.kwargs = None",
        f"{indent}    jp.value = None",
        f"{indent}    jp.result = None",
        f"{indent}    {free}.append(jp)",
    ]


def _chain_lines(
    prefix: str,
    advice: Sequence[Advice],
    run: str,
    proceed_lines: list[str],
    call_lines: tuple[str, ...],
    gen_calls: tuple[str, str] | None = None,
) -> list[str]:
    """The unrolled advice chain for one acquire/release envelope.

    Mirrors :class:`CompiledChain` exactly: before advice outermost-first,
    arounds nested with the first advice outermost, after-returning /
    after-throwing / after (finally) innermost-first, and the exception
    path (present only when it could run advice) doing after-throwing then
    after before re-raising.  *proceed_lines* define the ``_p`` proceed
    body (only rendered when around advice needs one); *call_lines* bind
    ``result`` for the no-around case.

    *gen_calls* — ``(bare_call, altered_call)`` original-call expressions
    — opts the template into the sole-generator specialization: a chain
    that is exactly one generator advice drives the advisor over the
    pooled join point directly, with no proceed closure and no
    ``ProceedingJoinPoint`` (see :func:`_sole_generator_drive_lines`).
    """
    if gen_calls is not None and _sole_generator(advice):
        bare_call, altered_call = gen_calls
        index, item = 0, advice[0]
        body = [
            f"{run}{line}"
            for line in _sole_generator_drive_lines(
                _advice_call(prefix, index, item, "jp"), bare_call, altered_call
            )
        ]
        body.append(f"{run}jp.result = result")
        body.append(f"{run}return result")
        return body
    befores = _by_kind(advice, AdviceKind.BEFORE)
    arounds = _by_kind(advice, AdviceKind.AROUND)
    returnings = _by_kind(advice, AdviceKind.AFTER_RETURNING)
    throwings = _by_kind(advice, AdviceKind.AFTER_THROWING)
    finallys = _by_kind(advice, AdviceKind.AFTER)

    body: list[str] = []
    for index, item in befores:
        body.append(f"{run}{_advice_call(prefix, index, item, 'jp')}")

    # Around nesting: runners for all but the outermost advice (each packs
    # proceed()'s varargs into a fresh ProceedingJoinPoint, exactly like
    # the compiled chain's _wrap_around), outermost call inlined.
    # Generator advice occupies an around slot; its runner (or the
    # outermost call) inlines the send/throw protocol over the inner
    # callable instead of a single invocation.
    if arounds:
        body.extend(f"{run}{line}" for line in proceed_lines)
        inner_name = "_p"
        for index, item in reversed(arounds[1:]):
            body.append(f"{run}def _r{index}(*a, **k):")
            body.append(f"{run}    pjp = _for_chain(jp, {inner_name}, a, k)")
            if item.generator:
                body.extend(
                    f"{run}    {line}"
                    for line in _generator_drive_lines(
                        _advice_call(prefix, index, item, "pjp"), inner_name, "pjp"
                    )
                )
                body.append(f"{run}    return result")
            else:
                body.append(
                    f"{run}    return {_advice_call(prefix, index, item, 'pjp')}"
                )
            inner_name = f"_r{index}"
        outer_index, outer = arounds[0]
        if outer.generator:
            call = (
                f"pjp0 = _for_chain(jp, {inner_name}, jp.args, dict(jp.kwargs))",
                *_generator_drive_lines(
                    _advice_call(prefix, outer_index, outer, "pjp0"),
                    inner_name,
                    "pjp0",
                ),
            )
        else:
            call = (
                f"pjp0 = _for_chain(jp, {inner_name}, jp.args, dict(jp.kwargs))",
                f"result = {_advice_call(prefix, outer_index, outer, 'pjp0')}",
            )
    else:
        call = call_lines

    if throwings or finallys:
        body.append(f"{run}try:")
        for line in call:
            body.append(f"{run}    {line}")
        body.append(f"{run}except Exception as exc:")
        body.append(f"{run}    jp.result = exc")
        for index, item in reversed(throwings):
            body.append(f"{run}    {_advice_call(prefix, index, item, 'jp')}")
        for index, item in reversed(finallys):
            body.append(f"{run}    {_advice_call(prefix, index, item, 'jp')}")
        body.append(f"{run}    raise")
    else:
        for line in call:
            body.append(f"{run}{line}")
    body.append(f"{run}jp.result = result")
    for index, item in reversed(returnings):
        body.append(f"{run}{_advice_call(prefix, index, item, 'jp')}")
    for index, item in reversed(finallys):
        body.append(f"{run}{_advice_call(prefix, index, item, 'jp')}")
    body.append(f"{run}return result")
    return body


# -- method wrappers -----------------------------------------------------------


#: Parameter names the wrapper templates use themselves; an original whose
#: signature collides falls back to the ``*args, **kwargs`` packing shape.
_RESERVED_PARAM_NAMES = frozenset(
    {
        "self",
        "jp",
        "result",
        "exc",
        "value",
        "a",
        "k",
        "pjp",
        "pjp0",
        "wrapper",
        "type",
        "id",
        "len",
        "dict",
        "Exception",
        "IndexError",
        "AttributeError",
        # Generator-advice templates (inlined send/throw protocol).
        "isinstance",
        "RuntimeError",
        "StopIteration",
    }
)


def _render_signature(original: Callable):
    """Re-render *original*'s parameter list for an exact-signature wrapper.

    Returns ``(params_src, forward_src, args_tuple_src, bindings)`` — the
    wrapper's parameter list, the argument list forwarding a passthrough
    call, the source of the positional-args tuple the chain binds as
    ``jp.args``, and default-value factory bindings — or ``None`` when the
    signature cannot be reproduced faithfully (varargs, keyword-only or
    positional-only parameters, reserved/private names), in which case the
    caller falls back to ``*args, **kwargs`` packing.  The receiver is
    always rendered as ``self``, whatever the original calls it.
    """
    try:
        signature = inspect.signature(original)
    except (TypeError, ValueError):
        return None
    params = list(signature.parameters.values())
    if not params:
        return None
    names: list[str] = []
    pieces: list[str] = []
    bindings: dict[str, Any] = {}
    for index, param in enumerate(params):
        if param.kind is not inspect.Parameter.POSITIONAL_OR_KEYWORD:
            return None
        if index == 0:
            continue  # the receiver
        name = param.name
        if (
            name.startswith("_")
            or name in _RESERVED_PARAM_NAMES
            or keyword.iskeyword(name)
            or not name.isidentifier()
        ):
            return None
        if param.default is inspect.Parameter.empty:
            pieces.append(name)
        else:
            binding = f"_dflt{index}"
            bindings[binding] = param.default
            pieces.append(f"{name}={binding}")
        names.append(name)
    params_src = ", ".join(["self", *pieces])
    forward_src = ", ".join(["self", *names])
    args_tuple_src = "(" + "".join(f"{name}, " for name in names) + ")"
    return params_src, forward_src, args_tuple_src, bindings


def _scoped_static_source(
    advice: Sequence[Advice],
    marked: bool,
    sig,
) -> tuple[str, list[str]]:
    """Source for an instance-scoped dispatch wrapper (fully-static chain).

    The wrapper is the shadow's *router*: one membership test sends
    unscoped receivers straight to ``_original`` (a near-plain fast path —
    with marker dispatch and a renderable signature, a watcher read, an
    attribute load and a plain call), and scoped receivers into the same
    pooled inlined chain a class-wide generated wrapper runs.  ``marked``
    selects marker dispatch — the membership test is an attribute load of
    the fixed :data:`_MARKER_SLOT` placeholder, retargeted to the owning
    scope's real marker at build time so one compiled shape serves every
    scope (False = id dispatch over the bound ``_scope_ids`` set);
    ``sig`` is :func:`_render_signature`'s rendering of the original
    (None = ``*args, **kwargs`` packing).

    Frames stay observable while cflow watchers are live — for *every*
    call through the shadow, unscoped receivers included, exactly like a
    class-wide woven shadow (the slow path re-tests membership under the
    pushed frame).  Marker dispatch pays for that with a single load: the
    class default the weaver installs for the marker flips between
    ``None`` (no watcher — plain passthrough) and :data:`WATCHED` on
    watcher transitions, so only the scoped branch ever reads
    ``_watchers.count``.  Id dispatch (no marker) reads the count first
    instead.

    With a renderable signature, the join point observes the call in
    canonical positional form: ``jp.args`` holds every bound parameter
    (defaults filled in, keywords bound) and ``jp.kwargs`` is empty —
    the AspectJ-style normalization a compiled shadow signature implies.
    The packing shape (and the generic tier) keep the caller's raw
    args/kwargs split.
    """
    arounds = _by_kind(advice, AdviceKind.AROUND)
    sole_generator = _sole_generator(advice)
    params = ["_original", "_watchers", "_slow", "_free", "_blank"]
    if not marked:
        params.append("_scope_ids")
    else:
        params.append("_watched")
    if sig is not None:
        params_src, forward_src, args_tuple_src, bindings = sig
        params.extend(sorted(bindings))
        run_params_src = forward_src  # defaults already bound by wrapper
    else:
        params_src = "self, *args, **kwargs"
        forward_src = "self, *args, **kwargs"
        args_tuple_src = None
        run_params_src = "self, *args, **kwargs"
    if arounds and not sole_generator:
        params.append("_for_chain")
    if _uses_generator(advice):
        params.extend(["_proceed", "_return"])
    params.extend(_advice_params("_", advice))

    if sig is not None:
        slow_call = f"_slow(self, {args_tuple_src}, {{}})"
    else:
        slow_call = "_slow(self, args, kwargs)"

    body: list[str] = []
    body.append(f"def _factory({', '.join(params)}):")
    # The chain lives in its own function: a CPython call initializes
    # frame space for every local and cell the code object declares, so
    # folding the chain into the dispatcher would tax the unscoped
    # passthrough for locals it never touches (~10 ns — a third of a
    # plain call).  The scoped branch pays one extra call instead.
    body.append(f"    def _run({run_params_src}):")
    if marked:
        body.append(
            f"        if _watchers.count or self.{_MARKER_SLOT} is _watched:"
        )
    else:
        body.append("        if _watchers.count:")
    body.append(f"            return {slow_call}")
    body.extend(_acquire_lines("        ", "_free", "_blank"))
    body.append("        jp.target = self")
    body.append("        jp.cls = type(self)")
    if sig is not None:
        body.append(f"        jp.args = {args_tuple_src}")
        body.append("        jp.kwargs = {}")
    else:
        body.append("        jp.args = args")
        body.append("        jp.kwargs = kwargs")
    # Always proceed from jp.args/jp.kwargs (not the _run locals): a
    # before advice that rewrites jp.args must steer the call, exactly as
    # it does through the generic chain and the class-wide template.
    call_lines = ("result = _original(self, *jp.args, **jp.kwargs)",)
    body.append("        try:")
    body.extend(
        _chain_lines(
            "_",
            advice,
            "            ",
            [
                "def _p(*a, **k):",
                "    return _original(self, *a, **k)",
            ],
            call_lines,
            gen_calls=(
                "_original(self, *jp.args, **jp.kwargs)",
                "_original(self, *_adv.args, **_adv.kwargs)",
            ),
        )
    )
    body.append("        finally:")
    body.extend(_release_lines("            ", "_free"))
    body.append("")
    body.append(f"    def wrapper({params_src}):")
    if marked:
        body.append(f"        if self.{_MARKER_SLOT} is None:")
        body.append(f"            return _original({forward_src})")
        body.append(f"        return _run({forward_src})")
    else:
        body.append("        if id(self) not in _scope_ids:")
        body.append("            if _watchers.count:")
        body.append(f"                return {slow_call}")
        body.append(f"            return _original({forward_src})")
        body.append(f"        return _run({forward_src})")
    body.append("    return wrapper")
    return "\n".join(body) + "\n", params


def _static_source(advice: Sequence[Advice]) -> tuple[str, list[str]]:
    """Source + advice-binding parameter names for a fully-static chain."""
    arounds = _by_kind(advice, AdviceKind.AROUND)

    params = ["_original", "_watchers", "_slow", "_free", "_blank"]
    if arounds and not _sole_generator(advice):
        params.append("_for_chain")
    if _uses_generator(advice):
        params.extend(["_proceed", "_return"])
    params.extend(_advice_params("_", advice))

    body: list[str] = []
    body.append(f"def _factory({', '.join(params)}):")
    body.append("    def wrapper(self, *args, **kwargs):")
    body.append("        if _watchers.count:")
    body.append("            return _slow(self, args, kwargs)")
    body.extend(_acquire_lines("        ", "_free", "_blank"))
    body.append("        jp.target = self")
    body.append("        jp.cls = type(self)")
    body.append("        jp.args = args")
    body.append("        jp.kwargs = kwargs")
    body.append("        try:")
    body.extend(
        _chain_lines(
            "_",
            advice,
            "            ",
            [
                "def _p(*a, **k):",
                "    return _original(self, *a, **k)",
            ],
            ("result = _original(self, *jp.args, **jp.kwargs)",),
            gen_calls=(
                "_original(self, *jp.args, **jp.kwargs)",
                "_original(self, *_adv.args, **_adv.kwargs)",
            ),
        )
    )
    body.append("        finally:")
    body.extend(_release_lines("            ", "_free"))
    body.append("    return wrapper")
    return "\n".join(body) + "\n", params


def _make_slow_path(original: Callable, name: str, chain: Callable) -> Callable:
    """The frame-pushing fallback a static wrapper takes under cflow watch.

    Identical to the generic compiled wrapper's watcher branch: a plain
    join point (the frame may outlive the call in captured stack tuples,
    so it is deliberately *not* pooled), a frame push, the compiled chain.
    """

    def slow(self: Any, args: tuple, kwargs: dict) -> Any:
        jp = JoinPoint(
            JoinPointKind.METHOD_EXECUTION, self, type(self), name, args, kwargs
        )

        def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
            return original(self, *call_args, **call_kwargs)

        token = push_frame(jp)
        try:
            return chain(jp, proceed)
        finally:
            pop_frame(token)

    return slow


def _make_scoped_slow_path(
    original: Callable, name: str, chain: Callable, scope: Any, marker: str | None
) -> Callable:
    """The frame-pushing fallback a scoped wrapper takes under cflow watch.

    Every call through the shadow pushes an observable frame while any
    watcher is live — unscoped receivers too, exactly like a class-wide
    woven shadow — and membership is re-tested under the frame to route
    scoped receivers into the chain.  The re-test mirrors the fast path's
    *dispatch semantics*: a marker wrapper follows the instance stamp
    (so e.g. a ``copy.copy`` of a member, which carries the stamp, is
    advised consistently whether or not a watcher is live), an id
    wrapper follows the scope's id set.
    """
    ids = scope.ids

    def slow(self: Any, args: tuple, kwargs: dict) -> Any:
        jp = JoinPoint(
            JoinPointKind.METHOD_EXECUTION, self, type(self), name, args, kwargs
        )
        token = push_frame(jp)
        try:
            if marker is not None:
                stamp = getattr(self, marker, None)
                member = stamp is not None and stamp is not WATCHED
            else:
                member = id(self) in ids
            if not member:
                return original(self, *args, **kwargs)

            def proceed(*call_args: Any, **call_kwargs: Any) -> Any:
                return original(self, *call_args, **call_kwargs)

            return chain(jp, proceed)
        finally:
            pop_frame(token)

    return slow


def generate_method_wrapper(
    original: Callable,
    name: str,
    advice: Sequence[Advice],
    selector: Any,
    watchers: Any,
    *,
    cache: CodegenCache | None = None,
    scope: Any = None,
) -> Callable:
    """A specialized wrapper for one fully-static method shadow.

    Codegen only targets static chains — that is where specialization
    buys anything (the dynamic and tracking tiers are generic dispatch by
    construction: frame push, memoized-mask select, generic chain — so
    they share the weaver's generic closures instead of duplicating those
    semantics in a template; their frame join points are never pooled, as
    a captured ``current_stack()`` may outlive the call).

    *selector* is the deploy-time chain selector (the generated wrapper
    uses its full chain for the watcher slow path); *watchers* is the
    owning runtime's live cflow-watcher counter; *cache* its compile
    cache.  The caller guarantees *advice* is non-empty and residue-free,
    and stamps ``__woven__``/``__woven_original__`` metadata.

    With an :class:`~repro.aop.weaver.InstanceScope`, the generated
    wrapper is the shadow's dispatch: unscoped receivers take a near-plain
    passthrough (marker-attribute test + exact-signature forwarding when
    possible), scoped receivers run the inlined chain.  A marker-dispatch
    wrapper advertises its marker attribute on ``__scope_marker__`` so the
    deployment registers the class-level default on the weaver's
    marker-default board (which flips it with cflow-watcher state).
    """
    if cache is None:
        cache = default_cache
    pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, name, cap=_POOL_CAP)
    bindings = {
        "_original": original,
        "_free": pool.free,
        "_blank": pool.blank,
        "_watchers": watchers,
        "_slow": _make_slow_path(original, name, selector.full_chain),
    }
    marker = None
    if scope is None:
        source, params = _static_source(advice)
    else:
        marker = scope.attr if scope.markable else None
        sig = _render_signature(original)
        source, params = _scoped_static_source(advice, marker is not None, sig)
        if sig is not None:
            bindings.update(sig[3])
        if marker is None:
            bindings["_scope_ids"] = scope.ids
        else:
            bindings["_watched"] = WATCHED
        bindings["_slow"] = _make_scoped_slow_path(
            original, name, selector.full_chain, scope, marker
        )
    if "_for_chain" in params:
        bindings["_for_chain"] = ProceedingJoinPoint.for_chain
    if "_proceed" in params:
        bindings["_proceed"] = proceed
        bindings["_return"] = return_
    _bind_advice("_", advice, bindings)
    wrapper = _build(source, bindings, cache, marker=marker)

    source = wrapper.__codegen_source__
    functools.update_wrapper(wrapper, original)
    # update_wrapper merged the original's __dict__ — when the original is
    # itself a woven wrapper (stacked deployments), its introspection
    # attrs describe *it*, not this wrapper.
    wrapper.__dict__.pop("__scope_marker__", None)
    wrapper.__dict__.pop("__woven_scope__", None)
    wrapper.__codegen_source__ = source
    wrapper.__joinpoint_pool__ = pool
    if marker is not None:
        wrapper.__scope_marker__ = marker
    return wrapper


# -- module-function wrappers --------------------------------------------------


def _module_static_source(advice: Sequence[Advice]) -> tuple[str, list[str]]:
    """Source + parameter names for a fully-static module-function chain.

    The shape mirrors :func:`_static_source` minus the receiver: a
    module-level function has no ``self``, so the wrapper packs the raw
    call, stamps ``jp.target = None`` and ``jp.cls`` to the owning module
    object (making ``jp.signature`` the dotted
    ``package.module.function``), and proceeds with the caller's
    arguments directly.
    """
    arounds = _by_kind(advice, AdviceKind.AROUND)

    params = ["_original", "_module", "_watchers", "_slow", "_free", "_blank"]
    if arounds and not _sole_generator(advice):
        params.append("_for_chain")
    if _uses_generator(advice):
        params.extend(["_proceed", "_return"])
    params.extend(_advice_params("_", advice))

    body: list[str] = []
    body.append(f"def _factory({', '.join(params)}):")
    body.append("    def wrapper(*args, **kwargs):")
    body.append("        if _watchers.count:")
    body.append("            return _slow(args, kwargs)")
    body.extend(_acquire_lines("        ", "_free", "_blank"))
    body.append("        jp.target = None")
    body.append("        jp.cls = _module")
    body.append("        jp.args = args")
    body.append("        jp.kwargs = kwargs")
    body.append("        try:")
    body.extend(
        _chain_lines(
            "_",
            advice,
            "            ",
            [
                "def _p(*a, **k):",
                "    return _original(*a, **k)",
            ],
            ("result = _original(*jp.args, **jp.kwargs)",),
            gen_calls=(
                "_original(*jp.args, **jp.kwargs)",
                "_original(*_adv.args, **_adv.kwargs)",
            ),
        )
    )
    body.append("        finally:")
    body.extend(_release_lines("            ", "_free"))
    body.append("    return wrapper")
    return "\n".join(body) + "\n", params


def _make_module_slow_path(
    original: Callable, module: Any, name: str, chain: Callable
) -> Callable:
    """The frame-pushing fallback a module wrapper takes under cflow watch."""

    def slow(args: tuple, kwargs: dict) -> Any:
        jp = JoinPoint(
            JoinPointKind.METHOD_EXECUTION, None, module, name, args, kwargs
        )

        def proceed_call(*call_args: Any, **call_kwargs: Any) -> Any:
            return original(*call_args, **call_kwargs)

        token = push_frame(jp)
        try:
            return chain(jp, proceed_call)
        finally:
            pop_frame(token)

    return slow


def generate_module_wrapper(
    original: Callable,
    module: Any,
    name: str,
    advice: Sequence[Advice],
    selector: Any,
    watchers: Any,
    *,
    cache: CodegenCache | None = None,
) -> Callable:
    """A specialized wrapper for one fully-static module-function shadow.

    The module-target counterpart of :func:`generate_method_wrapper`:
    same pooled join points, same unrolled chain (including inlined
    generator advice), no receiver and no instance scoping — module
    functions have no instances to scope to, which the runtime enforces
    before ever reaching codegen.
    """
    if cache is None:
        cache = default_cache
    pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, name, cap=_POOL_CAP)
    bindings = {
        "_original": original,
        "_module": module,
        "_free": pool.free,
        "_blank": pool.blank,
        "_watchers": watchers,
        "_slow": _make_module_slow_path(original, module, name, selector.full_chain),
    }
    source, params = _module_static_source(advice)
    if "_for_chain" in params:
        bindings["_for_chain"] = ProceedingJoinPoint.for_chain
    if "_proceed" in params:
        bindings["_proceed"] = proceed
        bindings["_return"] = return_
    _bind_advice("_", advice, bindings)
    wrapper = _build(source, bindings, cache)

    source = wrapper.__codegen_source__
    functools.update_wrapper(wrapper, original)
    wrapper.__dict__.pop("__scope_marker__", None)
    wrapper.__dict__.pop("__woven_scope__", None)
    wrapper.__codegen_source__ = source
    wrapper.__joinpoint_pool__ = pool
    return wrapper


# -- field descriptors ---------------------------------------------------------


_GET_READ_LINES = (
    "try:",
    "    result = obj.__dict__[_name]",
    "except KeyError:",
    "    if _default is _missing:",
    "        raise AttributeError(",
    '            f"{type(obj).__name__!r} object has no attribute {_name!r}"',
    "        ) from None",
    "    result = _default",
)

_GET_PROCEED_LINES = [
    "def _p(*_pa, **_pk):",
    "    try:",
    "        return obj.__dict__[_name]",
    "    except KeyError:",
    "        if _default is _missing:",
    "            raise AttributeError(",
    '                f"{type(obj).__name__!r} object has no attribute "',
    '                f"{_name!r}"',
    "            ) from None",
    "        return _default",
]

# Mirrors the generic descriptor's ``write(*jp.args, **jp.kwargs)``:
# positional proceed arguments override the written value, an explicit
# ``new_value`` keyword is honoured, and the original assignment value is
# the fallback.
_SET_WRITE_LINES = (
    "_wargs = jp.args",
    "if _wargs:",
    "    obj.__dict__[_name] = _wargs[0]",
    "elif jp.kwargs:",
    '    obj.__dict__[_name] = jp.kwargs.get("new_value", value)',
    "else:",
    "    obj.__dict__[_name] = value",
    "result = None",
)

_SET_PROCEED_LINES = [
    "def _p(*_pa, **_pk):",
    "    if _pa:",
    "        obj.__dict__[_name] = _pa[0]",
    "    elif _pk:",
    '        obj.__dict__[_name] = _pk.get("new_value", value)',
    "    else:",
    "        obj.__dict__[_name] = value",
]


def _field_source(
    get_advice: Sequence[Advice], set_advice: Sequence[Advice]
) -> tuple[str, list[str]]:
    """Source + parameter names for a generated woven-field class.

    The factory returns a subclass of the generic ``_WovenField`` whose
    ``__get__``/``__set__`` inline their (fully static) advice chains over
    pooled join points; when a cflow watcher is live in the owning
    runtime, both delegate to the base class, which pushes observable
    frames.  ``__set_name__`` under a *different* name would desynchronize
    the bound name/pools, so it degrades the instance back to the generic
    descriptor class.
    """
    params = ["_base", "_missing", "_name", "_default", "_watchers"]
    if get_advice:
        params.extend(["_get_free", "_get_blank"])
    if set_advice:
        params.extend(["_set_free", "_set_blank"])
    if _by_kind(get_advice, AdviceKind.AROUND) or _by_kind(
        set_advice, AdviceKind.AROUND
    ):
        params.append("_for_chain")
    if _uses_generator(get_advice) or _uses_generator(set_advice):
        params.extend(["_proceed", "_return"])
    params.extend(_advice_params("_g", get_advice))
    params.extend(_advice_params("_s", set_advice))

    body: list[str] = []
    body.append(f"def _factory({', '.join(params)}):")
    body.append("    class _WovenFieldCodegen(_base):")
    body.append("        def __set_name__(self, owner, name):")
    body.append("            if name != _name:")
    body.append("                self.__class__ = _base")
    body.append("            _base.__set_name__(self, owner, name)")
    body.append("")
    body.append("        def __get__(self, obj, objtype=None):")
    body.append("            if obj is None:")
    body.append("                return self")
    body.append("            if _watchers.count:")
    body.append("                return _base.__get__(self, obj, objtype)")
    if not get_advice:
        for line in _GET_READ_LINES:
            body.append(f"            {line}")
        body.append("            return result")
    else:
        body.extend(_acquire_lines("            ", "_get_free", "_get_blank"))
        body.append("            jp.target = obj")
        body.append("            jp.cls = type(obj)")
        body.append("            jp.args = ()")
        body.append("            jp.kwargs = {}")
        body.append("            try:")
        body.extend(
            _chain_lines(
                "_g",
                get_advice,
                "                ",
                _GET_PROCEED_LINES,
                _GET_READ_LINES,
            )
        )
        body.append("            finally:")
        body.extend(_release_lines("                ", "_get_free"))
    body.append("")
    body.append("        def __set__(self, obj, value):")
    body.append("            if _watchers.count:")
    body.append("                return _base.__set__(self, obj, value)")
    if not set_advice:
        body.append("            obj.__dict__[_name] = value")
    else:
        body.extend(_acquire_lines("            ", "_set_free", "_set_blank"))
        body.append("            jp.target = obj")
        body.append("            jp.cls = type(obj)")
        body.append("            jp.args = (value,)")
        body.append("            jp.kwargs = {}")
        body.append("            jp.value = value")
        body.append("            try:")
        body.extend(
            _chain_lines(
                "_s",
                set_advice,
                "                ",
                _SET_PROCEED_LINES,
                _SET_WRITE_LINES,
            )
        )
        body.append("            finally:")
        body.extend(_release_lines("                ", "_set_free"))
    body.append("")
    body.append("    return _WovenFieldCodegen")
    return "\n".join(body) + "\n", params


def generate_field_descriptor(
    name: str,
    get_advice: list[Advice],
    set_advice: list[Advice],
    class_default: Any,
    watchers: Any,
    *,
    base: type,
    missing: Any,
    cache: CodegenCache | None = None,
):
    """A specialized data descriptor for one fully-static woven field.

    Returns an instance of a generated subclass of *base* (the generic
    ``_WovenField``) whose accessors inline the advice chains; the caller
    guarantees both chains are residue-free.  The descriptor carries
    ``__codegen_source__`` and ``__joinpoint_pools__`` for debugging and
    introspection, exactly like generated method wrappers.
    """
    if cache is None:
        cache = default_cache
    source, params = _field_source(tuple(get_advice), tuple(set_advice))
    get_pool = JoinPointPool(JoinPointKind.FIELD_GET, name, cap=_POOL_CAP)
    set_pool = JoinPointPool(JoinPointKind.FIELD_SET, name, cap=_POOL_CAP)
    bindings: dict[str, Any] = {
        "_base": base,
        "_missing": missing,
        "_name": name,
        "_default": class_default,
        "_watchers": watchers,
    }
    if get_advice:
        bindings["_get_free"] = get_pool.free
        bindings["_get_blank"] = get_pool.blank
    if set_advice:
        bindings["_set_free"] = set_pool.free
        bindings["_set_blank"] = set_pool.blank
    if "_for_chain" in params:
        bindings["_for_chain"] = ProceedingJoinPoint.for_chain
    if "_proceed" in params:
        bindings["_proceed"] = proceed
        bindings["_return"] = return_
    _bind_advice("_g", get_advice, bindings)
    _bind_advice("_s", set_advice, bindings)
    descriptor_cls = _build(source, bindings, cache)
    descriptor = descriptor_cls(name, get_advice, set_advice, class_default, watchers)
    # The base __init__ made fresh pools; swap in the ones the generated
    # accessors actually bound, so introspection reports the live pools.
    descriptor._get_pool = get_pool
    descriptor._set_pool = set_pool
    descriptor.__codegen_source__ = descriptor_cls.__codegen_source__
    descriptor.__joinpoint_pools__ = {"get": get_pool, "set": set_pool}
    return descriptor
