"""Errors raised by the aspect framework."""

from __future__ import annotations


class AopError(Exception):
    """Base class for aspect framework errors."""


class PointcutSyntaxError(AopError):
    """A pointcut expression does not parse."""


class WeavingError(AopError):
    """Deployment failed: nothing matched, or a target cannot be woven."""


class IntroductionError(AopError):
    """An inter-type declaration conflicts with an existing member."""
