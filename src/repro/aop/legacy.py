"""Deprecated process-global weaving API, shimmed over the default runtime.

Earlier revisions drove a singleton weaver through free functions; the
first-class API is :class:`~repro.aop.runtime.WeaverRuntime` (scoped
state, transactional :class:`~repro.aop.runtime.DeploymentSet` batches,
introspection).  Everything here delegates to
:data:`~repro.aop.runtime.default_runtime` so existing call sites keep
working — and emits a :class:`DeprecationWarning` pointing at the
replacement:

=====================================  =====================================
Old call                               New call
=====================================  =====================================
``Weaver()``                           ``WeaverRuntime()``
``deploy(a, targets)``                 ``runtime.weave(targets, a)``
``deploy_all(aspects, targets)``       ``runtime.weave(...)`` per aspect
``undeploy(deployment)``               ``handle.undeploy()``
``with deployed(a, targets): ...``     ``with runtime.weave(targets, a): ...``
=====================================  =====================================
"""

from __future__ import annotations

import warnings
from typing import Iterable

from .aspect import Aspect
from .weaver import Deployment
from .runtime import DeploymentSet, WeaverRuntime, default_runtime

#: Deprecated alias for :data:`~repro.aop.runtime.default_runtime`.
default_weaver = default_runtime


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.aop.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class Weaver(WeaverRuntime):
    """Deprecated: a runtime sharing the default runtime's scoped state.

    The seed's ``Weaver`` instances all read one process-wide shadow index
    and cflow-watcher count while keeping their own deployment lists; this
    shim reproduces exactly that by borrowing
    :data:`~repro.aop.runtime.default_runtime`'s state.  New code should
    hold a :class:`~repro.aop.runtime.WeaverRuntime` (isolated state) —
    or use :data:`default_runtime` directly for the process-global
    behaviour.
    """

    def __init__(self) -> None:
        _deprecated("Weaver()", "WeaverRuntime()")
        super().__init__(
            "legacy-weaver",
            shadow_index=default_runtime.shadow_index,
            watchers=default_runtime.watchers,
            codegen_cache=default_runtime.codegen_cache,
        )


def deploy(
    aspect: Aspect,
    targets: Iterable[type],
    *,
    fields: Iterable[str] = (),
    require_match: bool = True,
    instances=None,
) -> Deployment:
    """Deprecated: deploy on the default runtime (see :meth:`WeaverRuntime.deploy`)."""
    _deprecated("deploy()", "WeaverRuntime.weave() / default_runtime.weave()")
    return default_runtime._deploy(
        aspect,
        targets,
        fields=fields,
        require_match=require_match,
        instances=instances,
    )


def deploy_all(
    aspects: Iterable[Aspect],
    targets: Iterable[type],
    *,
    fields: Iterable[str] = (),
    require_match: bool = True,
) -> list[Deployment]:
    """Deprecated: batch-deploy on the default runtime.

    See :meth:`WeaverRuntime.transaction` — a
    :class:`~repro.aop.runtime.DeploymentSet` is the transactional,
    incrementally-extensible form of this call.
    """
    _deprecated("deploy_all()", "WeaverRuntime.weave()")
    return default_runtime._deploy_all(
        aspects, targets, fields=fields, require_match=require_match
    )


def undeploy(deployment: Deployment) -> None:
    """Deprecated: undeploy from the default runtime."""
    _deprecated("undeploy()", "WeaverRuntime.undeploy()")
    default_runtime.undeploy(deployment)


class deployed:
    """Deprecated context manager: aspect woven inside the block, restored after.

    ::

        with deployed(Tracing(), [Node]):
            site.render()          # advice active
        site.render()              # original behaviour

    Routed through a :class:`~repro.aop.runtime.DeploymentSet`: a clean
    exit undeploys strictly (a non-LIFO interleaving still raises), while
    an exception inside the block *rolls back* — members and
    introductions unwind best-effort, so the block can never leak grafted
    members just because the weave order got disturbed mid-flight.
    """

    def __init__(
        self,
        aspect: Aspect,
        targets: Iterable[type],
        *,
        fields: Iterable[str] = (),
        weaver: WeaverRuntime | None = None,
    ):
        _deprecated("deployed()", "WeaverRuntime.weave()")
        self._aspect = aspect
        self._targets = list(targets)
        self._fields = fields
        self._runtime = weaver if weaver is not None else default_runtime
        self._set: DeploymentSet | None = None

    def __enter__(self) -> Deployment:
        self._set = self._runtime.transaction(self._targets, fields=self._fields)
        return self._set._add(self._aspect)

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._set is None:
            return
        if exc_type is not None:
            self._set.rollback()
        else:
            self._set.undeploy()
        self._set = None
