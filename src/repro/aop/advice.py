"""Advice: what runs at matched join points.

Five kinds, as in AspectJ: ``before``, ``after_returning``,
``after_throwing``, ``after`` (finally) and ``around``.  Advice functions
receive the :class:`~repro.aop.joinpoint.JoinPoint` (a
:class:`~repro.aop.joinpoint.ProceedingJoinPoint` for around advice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from .pointcut import Pointcut


class AdviceKind(str, Enum):
    BEFORE = "before"
    AFTER_RETURNING = "after_returning"
    AFTER_THROWING = "after_throwing"
    AFTER = "after"
    AROUND = "around"


@dataclass
class Advice:
    """One advice declaration: kind + pointcut + body.

    ``order`` breaks ties between advice of different aspects: lower runs
    closer to the *outside* (first for before/around, last for after),
    matching AspectJ's precedence model.  Within one aspect, declaration
    order is preserved.
    """

    kind: AdviceKind
    pointcut: Pointcut
    function: Callable[..., Any]
    order: int = 0
    name: str = ""
    aspect: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = getattr(self.function, "__name__", "advice")

    def bind(self, aspect: Any) -> "Advice":
        """A copy bound to a deployed aspect instance."""
        return Advice(
            kind=self.kind,
            pointcut=self.pointcut,
            function=self.function,
            order=self.order,
            name=self.name,
            aspect=aspect,
        )

    @property
    def is_static(self) -> bool:
        """True when the pointcut fully matches at the shadow (no residue).

        Statically-matched advice needs no per-call ``matches_dynamic``
        check, which is what lets the weaver generate its allocation-free
        fast-path wrapper.  Uses :meth:`Pointcut.residue_free` rather than
        ``has_dynamic_test``: ``Not``/``Or`` re-evaluate shadow matches
        against the runtime class even without a dynamic test, so they
        must keep a residue check — though a *class-settled* one that the
        weaver's residue index memoizes per runtime class rather than
        re-evaluating per call (see :meth:`Pointcut.residue_parts`).
        """
        return self.pointcut.residue_free()

    def residue_parts(self):
        """This advice's residue decomposition; see the pointcut method."""
        return self.pointcut.residue_parts()

    def invoke(self, jp) -> Any:
        """Call the advice body (with the owning aspect when bound)."""
        if self.aspect is not None:
            return self.function(self.aspect, jp)
        return self.function(jp)

    def describe(self) -> str:
        owner = type(self.aspect).__name__ if self.aspect is not None else "<unbound>"
        return f"{self.kind.value} {owner}.{self.name} @ {self.pointcut!r}"
