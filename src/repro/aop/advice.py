"""Advice: what runs at matched join points.

Five kinds, as in AspectJ: ``before``, ``after_returning``,
``after_throwing``, ``after`` (finally) and ``around``.  Advice functions
receive the :class:`~repro.aop.joinpoint.JoinPoint` (a
:class:`~repro.aop.joinpoint.ProceedingJoinPoint` for around advice).

A sixth declaration style — *generator advice*, after aspectlib — writes
the whole before/around/after story as one generator body::

    @generator(execution("PageRenderer.render_node"))
    def trace(jp):
        try:
            result = yield proceed          # run the original (jp args)
        except TimeoutError:
            result = yield proceed          # retry once
        yield return_(f"<!-- traced -->{result}")

Yield values drive the protocol: ``proceed`` (bare) runs the original
with the join point's arguments, ``proceed(*args, **kwargs)`` with
replacement arguments, ``return_`` finishes with ``None`` and
``return_(value)`` with ``value``.  Exceptions the original raises are
thrown back into the generator at the ``yield`` so one ``try`` block
catches or translates them.  Generator advice compiles to AROUND-kind
:class:`Advice` (``generator=True``) and rides every wrapper tier; the
codegen tier inlines the send/throw loop into the generated wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from types import GeneratorType
from typing import Any, Callable

from .pointcut import Pointcut


class AdviceKind(str, Enum):
    BEFORE = "before"
    AFTER_RETURNING = "after_returning"
    AFTER_THROWING = "after_throwing"
    AFTER = "after"
    AROUND = "around"


class proceed:  # noqa: N801 — aspectlib's lowercase protocol names
    """Yield from generator advice to run the original join point.

    Bare ``yield proceed`` replays the join point's own arguments;
    ``yield proceed(*args, **kwargs)`` substitutes the given ones —
    including substituting *no* arguments with ``proceed()``.  The yield
    expression evaluates to the original's return value, or raises its
    exception inside the generator body.
    """

    __slots__ = ("args", "kwargs")

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        self.args = args
        self.kwargs = kwargs


class return_:  # noqa: N801 — aspectlib's lowercase protocol names
    """Yield from generator advice to finish the advised call.

    Bare ``yield return_`` makes the call return ``None``;
    ``yield return_(value)`` makes it return ``value``.  The original is
    only run if a ``proceed`` was yielded earlier.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def drive_generator(advisor: Any, pjp) -> Any:
    """Run aspectlib's send/throw protocol over one generator *advisor*.

    ``pjp`` is the :class:`~repro.aop.joinpoint.ProceedingJoinPoint` for
    the around slot the generator advice occupies: bare ``proceed``
    replays ``pjp.args``/``pjp.kwargs`` through the inner chain, a
    ``proceed(...)`` instance substitutes its own (possibly empty)
    argument list.  The codegen tier inlines this exact loop into the
    generated wrapper (see ``codegen._generator_drive_lines``) — the two
    must stay behaviourally identical, which the conformance suite's
    tier parametrization pins.
    """
    if not isinstance(advisor, GeneratorType):
        raise RuntimeError(
            f"generator advice returned {advisor!r} instead of a generator"
        )
    try:
        advice = advisor.send(None)
    except StopIteration:
        advice = return_
    result = None
    while True:
        if advice is proceed or advice is None:
            call_args, call_kwargs = pjp.args, pjp.kwargs
        elif isinstance(advice, proceed):
            call_args, call_kwargs = advice.args, advice.kwargs
        elif advice is return_:
            advisor.close()
            return None
        elif isinstance(advice, return_):
            advisor.close()
            return advice.value
        else:
            advisor.close()
            raise RuntimeError(
                f"generator advice yielded {advice!r}; expected proceed, "
                f"proceed(...), return_ or return_(...)"
            )
        try:
            result = pjp._proceed(*call_args, **call_kwargs)
        except Exception as exc:
            try:
                advice = advisor.throw(exc)
            except StopIteration:
                return None
        else:
            try:
                advice = advisor.send(result)
            except StopIteration:
                return result


@dataclass
class Advice:
    """One advice declaration: kind + pointcut + body.

    ``order`` breaks ties between advice of different aspects: lower runs
    closer to the *outside* (first for before/around, last for after),
    matching AspectJ's precedence model.  Within one aspect, declaration
    order is preserved.
    """

    kind: AdviceKind
    pointcut: Pointcut
    function: Callable[..., Any]
    order: int = 0
    name: str = ""
    aspect: Any = field(default=None, repr=False)
    #: True when ``function`` is a generator function speaking the
    #: proceed/return_ protocol; the chain compiler and codegen templates
    #: drive it instead of calling it like a plain around body.
    generator: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            self.name = getattr(self.function, "__name__", "advice")

    def bind(self, aspect: Any) -> "Advice":
        """A copy bound to a deployed aspect instance."""
        return Advice(
            kind=self.kind,
            pointcut=self.pointcut,
            function=self.function,
            order=self.order,
            name=self.name,
            aspect=aspect,
            generator=self.generator,
        )

    @property
    def is_static(self) -> bool:
        """True when the pointcut fully matches at the shadow (no residue).

        Statically-matched advice needs no per-call ``matches_dynamic``
        check, which is what lets the weaver generate its allocation-free
        fast-path wrapper.  Uses :meth:`Pointcut.residue_free` rather than
        ``has_dynamic_test``: ``Not``/``Or`` re-evaluate shadow matches
        against the runtime class even without a dynamic test, so they
        must keep a residue check — though a *class-settled* one that the
        weaver's residue index memoizes per runtime class rather than
        re-evaluating per call (see :meth:`Pointcut.residue_parts`).
        """
        return self.pointcut.residue_free()

    def residue_parts(self):
        """This advice's residue decomposition; see the pointcut method."""
        return self.pointcut.residue_parts()

    def invoke(self, jp) -> Any:
        """Call the advice body (with the owning aspect when bound)."""
        if self.generator:
            if self.aspect is not None:
                return drive_generator(self.function(self.aspect, jp), jp)
            return drive_generator(self.function(jp), jp)
        if self.aspect is not None:
            return self.function(self.aspect, jp)
        return self.function(jp)

    def describe(self) -> str:
        owner = type(self.aspect).__name__ if self.aspect is not None else "<unbound>"
        return f"{self.kind.value} {owner}.{self.name} @ {self.pointcut!r}"
