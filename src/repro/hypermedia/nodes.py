"""Navigational nodes: views over conceptual classes.

OOHDM's nodes "are views of the conceptual classes" — the same painting
entity may surface different attributes in different node classes, and one
conceptual model supports many navigational models.  A :class:`NodeClass`
declares the view (which attributes, under which names, plus computed
ones); a :class:`Node` is the runtime pairing of that view with an entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .errors import SchemaError
from .instances import Entity, InstanceStore


@dataclass(frozen=True)
class AttributeView:
    """One attribute of a node view.

    ``source`` is an entity attribute name or a callable
    ``(entity, store) -> value`` for derived attributes.
    """

    name: str
    source: str | Callable[[Entity, InstanceStore], Any]

    def value(self, entity: Entity, store: InstanceStore) -> Any:
        if callable(self.source):
            return self.source(entity, store)
        return entity.get(self.source)


@dataclass
class NodeClass:
    """A node type in the navigational schema: a named view of a class."""

    name: str
    conceptual_class: str
    views: list[AttributeView] = field(default_factory=list)
    #: Pattern for node URIs; ``{id}`` is the entity id.
    uri_template: str = "{node_class}/{id}.html"

    def view(
        self,
        name: str,
        source: str | Callable[[Entity, InstanceStore], Any] | None = None,
    ) -> "NodeClass":
        """Add an attribute view (chainable); defaults to same-name passthrough."""
        self.views.append(AttributeView(name, source if source is not None else name))
        return self

    def uri_for(self, entity: Entity) -> str:
        return self.uri_template.format(node_class=self.name, id=entity.entity_id)

    def instantiate(self, entity: Entity, store: InstanceStore) -> "Node":
        if entity.cls.name != self.conceptual_class:
            raise SchemaError(
                f"node class {self.name!r} views {self.conceptual_class!r}, "
                f"got a {entity.cls.name}"
            )
        return Node(node_class=self, entity=entity, store=store)


@dataclass
class Node:
    """A runtime node: one entity seen through one node class."""

    node_class: NodeClass
    entity: Entity
    store: InstanceStore

    @property
    def node_id(self) -> str:
        return self.entity.entity_id

    @property
    def uri(self) -> str:
        return self.node_class.uri_for(self.entity)

    def attributes(self) -> dict[str, Any]:
        """The view's attributes evaluated against the entity."""
        return {
            view.name: view.value(self.entity, self.store)
            for view in self.node_class.views
        }

    def get(self, name: str) -> Any:
        for view in self.node_class.views:
            if view.name == name:
                return view.value(self.entity, self.store)
        raise SchemaError(f"node class {self.node_class.name!r} has no view {name!r}")

    def __hash__(self) -> int:
        return hash((self.node_class.name, self.entity))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return (self.node_class.name, self.entity) == (
            other.node_class.name,
            other.entity,
        )

    def __repr__(self) -> str:
        return f"<Node {self.node_class.name}:{self.node_id}>"
