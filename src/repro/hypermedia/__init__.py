"""OOHDM-style hypermedia design primitives.

The web-design methodologies the paper surveys (HDM, RMM, OOHDM) model
navigation with a small vocabulary this package implements:

- **conceptual schema** — domain classes and relationships, navigation-free
  (:mod:`repro.hypermedia.conceptual`, :mod:`~repro.hypermedia.instances`).
- **nodes and links** — views over classes and relationships
  (:mod:`repro.hypermedia.nodes`, :mod:`repro.hypermedia.links`).
- **access structures** — Index, GuidedTour, IndexedGuidedTour, Menu
  (:mod:`repro.hypermedia.access`; the paper's Figure 2).
- **navigational contexts** — ordered member sets making "Next" depend on
  how you arrived (:mod:`repro.hypermedia.context`; OOHDM's contribution).
"""

from .access import (
    AccessStructure,
    Anchor,
    GuidedTour,
    Index,
    IndexedGuidedTour,
    Menu,
)
from .conceptual import (
    AttributeDef,
    Cardinality,
    ConceptualClass,
    ConceptualSchema,
    Relationship,
)
from .context import (
    ContextFamily,
    NavigationalContext,
    group_by_attribute,
    group_by_relationship,
)
from .errors import (
    HypermediaError,
    InstanceError,
    NavigationError,
    SchemaError,
)
from .instances import Entity, InstanceStore
from .links import LinkClass, NavLink
from .nodes import AttributeView, Node, NodeClass
from .schema import NavigationalSchema

__all__ = [
    "AccessStructure",
    "Anchor",
    "AttributeDef",
    "AttributeView",
    "Cardinality",
    "ConceptualClass",
    "ConceptualSchema",
    "ContextFamily",
    "Entity",
    "GuidedTour",
    "HypermediaError",
    "Index",
    "IndexedGuidedTour",
    "InstanceError",
    "InstanceStore",
    "LinkClass",
    "Menu",
    "NavLink",
    "NavigationError",
    "NavigationalContext",
    "NavigationalSchema",
    "Node",
    "NodeClass",
    "Relationship",
    "SchemaError",
    "group_by_attribute",
    "group_by_relationship",
]
