"""Navigational links: views over conceptual relationships.

A :class:`LinkClass` makes one relationship navigable between two node
classes; resolving it against the instance store yields concrete
:class:`NavLink` anchors.  The ``arcrole`` mirrors XLink's: when the
navigational schema is exported as a linkbase, link classes become arcs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SchemaError
from .instances import InstanceStore
from .nodes import Node, NodeClass


@dataclass(frozen=True)
class LinkClass:
    """A navigable view of a relationship between two node classes."""

    name: str
    relationship: str
    source: NodeClass
    target: NodeClass
    arcrole: str | None = None
    title_attribute: str | None = None

    def resolve(self, node: Node) -> list["NavLink"]:
        """Concrete links leaving *node* through this link class."""
        if node.node_class.name != self.source.name:
            raise SchemaError(
                f"link class {self.name!r} starts at {self.source.name!r} nodes, "
                f"got {node.node_class.name!r}"
            )
        store: InstanceStore = node.store
        links: list[NavLink] = []
        for entity in store.related(node.entity, self.relationship):
            target_node = self.target.instantiate(entity, store)
            links.append(NavLink(link_class=self, source=node, target=target_node))
        return links


@dataclass(frozen=True)
class NavLink:
    """One concrete traversal opportunity between two nodes."""

    link_class: LinkClass
    source: Node
    target: Node

    @property
    def title(self) -> str:
        """Anchor text: the configured target attribute, or the target id."""
        attribute = self.link_class.title_attribute
        if attribute is not None:
            value = self.target.get(attribute)
            if value is not None:
                return str(value)
        return self.target.node_id

    @property
    def href(self) -> str:
        return self.target.uri

    def __repr__(self) -> str:
        return (
            f"<NavLink {self.link_class.name}: "
            f"{self.source.node_id} -> {self.target.node_id}>"
        )
