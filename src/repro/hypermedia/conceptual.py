"""The conceptual schema: classes, attributes and relationships.

OOHDM's first design step models the application domain with conventional
object-oriented primitives, deliberately free of any navigation.  The
museum example's conceptual schema has ``Painter``, ``Painting`` and
``Movement`` classes with ``paints`` / ``belongs_to`` relationships; the
navigational schema (:mod:`repro.hypermedia.nodes`) later *views* these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .errors import SchemaError


class Cardinality(str, Enum):
    """How many targets one source may relate to."""

    ONE = "1"
    MANY = "*"


@dataclass(frozen=True, slots=True)
class AttributeDef:
    """One attribute of a conceptual class."""

    name: str
    type: type = str
    required: bool = False

    def check(self, value: object) -> None:
        if value is None:
            if self.required:
                raise SchemaError(f"attribute {self.name!r} is required")
            return
        if not isinstance(value, self.type):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__}"
            )


@dataclass(frozen=True, slots=True)
class Relationship:
    """A named, directed relationship between two conceptual classes.

    ``inverse`` names the opposite direction when it is navigable too
    (``paints`` / ``painted_by``); the schema materializes the reverse
    relationship from it.
    """

    name: str
    source: str
    target: str
    cardinality: Cardinality = Cardinality.MANY
    inverse: str | None = None


@dataclass
class ConceptualClass:
    """A domain class: a name plus attribute definitions."""

    name: str
    attributes: list[AttributeDef] = field(default_factory=list)

    def attribute(self, name: str) -> AttributeDef:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"{self.name} has no attribute {name!r}")

    def attribute_names(self) -> list[str]:
        return [attr.name for attr in self.attributes]


class ConceptualSchema:
    """The set of conceptual classes and relationships, with validation."""

    def __init__(self) -> None:
        self._classes: dict[str, ConceptualClass] = {}
        self._relationships: dict[str, Relationship] = {}

    # -- construction ----------------------------------------------------

    def add_class(
        self, name: str, attributes: list[AttributeDef | tuple | str] | None = None
    ) -> ConceptualClass:
        """Declare a class; attributes may be defs, (name, type) pairs or names."""
        if name in self._classes:
            raise SchemaError(f"duplicate conceptual class {name!r}")
        defs: list[AttributeDef] = []
        for item in attributes or []:
            if isinstance(item, AttributeDef):
                defs.append(item)
            elif isinstance(item, tuple):
                defs.append(AttributeDef(*item))
            else:
                defs.append(AttributeDef(item))
        cls = ConceptualClass(name, defs)
        self._classes[name] = cls
        return cls

    def add_relationship(
        self,
        name: str,
        source: str,
        target: str,
        *,
        cardinality: Cardinality = Cardinality.MANY,
        inverse: str | None = None,
    ) -> Relationship:
        """Declare a relationship (and its inverse, when named)."""
        for cls_name in (source, target):
            if cls_name not in self._classes:
                raise SchemaError(
                    f"relationship {name!r} references unknown class {cls_name!r}"
                )
        if name in self._relationships:
            raise SchemaError(f"duplicate relationship {name!r}")
        relationship = Relationship(name, source, target, cardinality, inverse)
        self._relationships[name] = relationship
        if inverse is not None:
            if inverse in self._relationships:
                raise SchemaError(f"duplicate relationship {inverse!r}")
            self._relationships[inverse] = Relationship(
                inverse, target, source, Cardinality.MANY, name
            )
        return relationship

    # -- lookup ------------------------------------------------------------

    def cls(self, name: str) -> ConceptualClass:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown conceptual class {name!r}")

    def relationship(self, name: str) -> Relationship:
        try:
            return self._relationships[name]
        except KeyError:
            raise SchemaError(f"unknown relationship {name!r}")

    def classes(self) -> list[ConceptualClass]:
        return list(self._classes.values())

    def relationships(self) -> list[Relationship]:
        return list(self._relationships.values())

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def relationships_from(self, class_name: str) -> list[Relationship]:
        """All relationships whose source is *class_name*."""
        return [r for r in self._relationships.values() if r.source == class_name]
