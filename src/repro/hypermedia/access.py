"""Access structures: Index, Guided Tour, Indexed Guided Tour, Menu.

These are the paper's Figure 2 primitives — "alternative ways to navigate"
— and the pivot of its motivating story: the customer's change request
turns an **Index** (painter → each painting) into an **Indexed Guided
Tour** (adding next/previous between paintings), which in the tangled
implementation forces edits to every node page of the context.

An access structure answers two questions:

- :meth:`AccessStructure.entries` — the anchors on the structure's *own*
  page (e.g. the index listing).
- :meth:`AccessStructure.anchors_on` — the anchors the structure
  contributes to a *member node's* page (e.g. Next/Previous, or the
  embedded index of Figures 3–4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .errors import NavigationError
from .nodes import Node


@dataclass(frozen=True, slots=True)
class Anchor:
    """A rendered traversal opportunity: label + href + its role.

    ``rel`` carries the navigational meaning (``entry``, ``next``,
    ``prev``, ``index``, ``menu``); renderers and the browser simulator
    dispatch on it.
    """

    label: str
    href: str
    rel: str = "entry"

    def __str__(self) -> str:
        return f"[{self.label}]({self.href}; rel={self.rel})"


def _label_of(node: Node, attribute: str | None) -> str:
    if attribute is not None:
        value = node.get(attribute)
        if value is not None:
            return str(value)
    return node.node_id


def _position_of(node: Node, members: Sequence[Node]) -> int:
    for index, member in enumerate(members):
        if member == node:
            return index
    raise NavigationError(
        f"{node!r} is not a member of this access structure's context"
    )


@dataclass
class AccessStructure:
    """Base class; concrete structures override the two anchor methods."""

    name: str
    label_attribute: str | None = None

    @property
    def kind(self) -> str:
        return type(self).__name__

    def entries(self, members: Sequence[Node]) -> list[Anchor]:
        raise NotImplementedError

    def anchors_on(self, node: Node, members: Sequence[Node]) -> list[Anchor]:
        raise NotImplementedError


@dataclass
class Index(AccessStructure):
    """An index: one entry anchor per member (the paper's Figure 2a).

    With ``embed_in_members`` (the tangled sites' style, Figure 3) every
    member page repeats the index of its siblings; otherwise member pages
    carry a single ``index`` anchor back to the index page.
    """

    embed_in_members: bool = True
    index_uri: str | None = None

    def entries(self, members: Sequence[Node]) -> list[Anchor]:
        return [
            Anchor(_label_of(member, self.label_attribute), member.uri, "entry")
            for member in members
        ]

    def anchors_on(self, node: Node, members: Sequence[Node]) -> list[Anchor]:
        _position_of(node, members)  # membership check
        if self.embed_in_members:
            return [
                Anchor(_label_of(member, self.label_attribute), member.uri, "entry")
                for member in members
                if member != node
            ]
        if self.index_uri is not None:
            return [Anchor(self.name, self.index_uri, "index")]
        return []


@dataclass
class GuidedTour(AccessStructure):
    """A guided tour: next/previous through an ordered member sequence.

    ``circular`` makes the tour wrap around (last → first), a common HDM
    variant; by default the ends have no next/previous.
    """

    circular: bool = False

    def entries(self, members: Sequence[Node]) -> list[Anchor]:
        if not members:
            return []
        first = members[0]
        return [Anchor(_label_of(first, self.label_attribute), first.uri, "start")]

    def anchors_on(self, node: Node, members: Sequence[Node]) -> list[Anchor]:
        position = _position_of(node, members)
        anchors: list[Anchor] = []
        count = len(members)
        prev_index = position - 1
        next_index = position + 1
        if self.circular:
            prev_index %= count
            next_index %= count
        if 0 <= prev_index < count and members[prev_index] != node:
            anchors.append(Anchor("Previous", members[prev_index].uri, "prev"))
        if 0 <= next_index < count and members[next_index] != node:
            anchors.append(Anchor("Next", members[next_index].uri, "next"))
        return anchors


@dataclass
class IndexedGuidedTour(AccessStructure):
    """Index plus guided tour (the paper's Figure 2b).

    Member pages carry both the sibling index and Next/Previous — exactly
    the two bold lines of HTML Figure 4 adds to every page.
    """

    circular: bool = False
    embed_in_members: bool = True
    index_uri: str | None = None

    def __post_init__(self) -> None:
        self._index = Index(
            name=self.name,
            label_attribute=self.label_attribute,
            embed_in_members=self.embed_in_members,
            index_uri=self.index_uri,
        )
        self._tour = GuidedTour(
            name=self.name,
            label_attribute=self.label_attribute,
            circular=self.circular,
        )

    def entries(self, members: Sequence[Node]) -> list[Anchor]:
        return self._index.entries(members)

    def anchors_on(self, node: Node, members: Sequence[Node]) -> list[Anchor]:
        return self._index.anchors_on(node, members) + self._tour.anchors_on(
            node, members
        )


@dataclass
class Menu(AccessStructure):
    """A fixed menu of anchors, independent of context membership."""

    items: list[Anchor] = field(default_factory=list)

    def add(self, label: str, href: str) -> "Menu":
        self.items.append(Anchor(label, href, "menu"))
        return self

    def entries(self, members: Sequence[Node]) -> list[Anchor]:
        return list(self.items)

    def anchors_on(self, node: Node, members: Sequence[Node]) -> list[Anchor]:
        return list(self.items)
