"""Entity instances and relationship instances over a conceptual schema.

The store is the "basic functionality" side of the paper's Figure 6: pure
domain objects with attribute values and relationship links, containing no
navigation whatsoever.  Everything navigational is derived from it later.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable

from .conceptual import Cardinality, ConceptualClass, ConceptualSchema
from .errors import InstanceError


@dataclass
class Entity:
    """An instance of a conceptual class."""

    cls: ConceptualClass
    entity_id: str
    attributes: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        """Attribute value by name (schema-checked at creation time)."""
        return self.attributes.get(name, default)

    def __getitem__(self, name: str) -> Any:
        try:
            return self.attributes[name]
        except KeyError:
            raise InstanceError(
                f"{self.cls.name} {self.entity_id!r} has no value for {name!r}"
            )

    def __hash__(self) -> int:
        return hash((self.cls.name, self.entity_id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entity):
            return NotImplemented
        return (self.cls.name, self.entity_id) == (other.cls.name, other.entity_id)

    def __repr__(self) -> str:
        return f"<{self.cls.name} {self.entity_id}>"


class InstanceStore:
    """Entities plus relationship links, validated against a schema."""

    def __init__(self, schema: ConceptualSchema):
        self.schema = schema
        self._entities: dict[tuple[str, str], Entity] = {}
        # (relationship, source entity key) -> ordered target keys
        self._links: dict[tuple[str, tuple[str, str]], list[tuple[str, str]]] = (
            defaultdict(list)
        )

    # -- entities -------------------------------------------------------

    def create(self, class_name: str, entity_id: str, **attributes: Any) -> Entity:
        """Create and register an entity, checking attributes per schema."""
        cls = self.schema.cls(class_name)
        key = (class_name, entity_id)
        if key in self._entities:
            raise InstanceError(f"duplicate {class_name} id {entity_id!r}")
        known = set(cls.attribute_names())
        for name in attributes:
            if name not in known:
                raise InstanceError(
                    f"{class_name} has no attribute {name!r} "
                    f"(schema declares: {sorted(known)})"
                )
        for attr_def in cls.attributes:
            attr_def.check(attributes.get(attr_def.name))
        entity = Entity(cls, entity_id, dict(attributes))
        self._entities[key] = entity
        return entity

    def get(self, class_name: str, entity_id: str) -> Entity:
        try:
            return self._entities[(class_name, entity_id)]
        except KeyError:
            raise InstanceError(f"no {class_name} with id {entity_id!r}")

    def all(self, class_name: str) -> list[Entity]:
        """All entities of a class, in creation order."""
        self.schema.cls(class_name)  # validate the name
        return [e for (cls, _), e in self._entities.items() if cls == class_name]

    def __len__(self) -> int:
        return len(self._entities)

    # -- relationship links ----------------------------------------------

    def relate(self, source: Entity, relationship_name: str, target: Entity) -> None:
        """Link two entities through a declared relationship (and inverse)."""
        relationship = self.schema.relationship(relationship_name)
        if source.cls.name != relationship.source:
            raise InstanceError(
                f"{relationship_name} starts at {relationship.source}, "
                f"not {source.cls.name}"
            )
        if target.cls.name != relationship.target:
            raise InstanceError(
                f"{relationship_name} ends at {relationship.target}, "
                f"not {target.cls.name}"
            )
        source_key = (source.cls.name, source.entity_id)
        target_key = (target.cls.name, target.entity_id)
        existing = self._links[(relationship_name, source_key)]
        if relationship.cardinality is Cardinality.ONE and existing:
            raise InstanceError(
                f"{relationship_name} is single-valued; "
                f"{source.entity_id!r} is already linked"
            )
        if target_key not in existing:
            existing.append(target_key)
        if relationship.inverse is not None:
            back = self._links[(relationship.inverse, target_key)]
            if source_key not in back:
                back.append(source_key)

    def related(self, source: Entity, relationship_name: str) -> list[Entity]:
        """Entities linked from *source* through the relationship, in order."""
        self.schema.relationship(relationship_name)
        source_key = (source.cls.name, source.entity_id)
        return [
            self._entities[key]
            for key in self._links.get((relationship_name, source_key), ())
        ]

    def related_one(self, source: Entity, relationship_name: str) -> Entity:
        """The single related entity; raises unless exactly one exists."""
        found = self.related(source, relationship_name)
        if len(found) != 1:
            raise InstanceError(
                f"{relationship_name} from {source.entity_id!r} has "
                f"{len(found)} targets, expected exactly 1"
            )
        return found[0]

    def bulk_load(
        self,
        entities: Iterable[tuple[str, str, dict[str, Any]]],
        links: Iterable[tuple[tuple[str, str], str, tuple[str, str]]] = (),
    ) -> None:
        """Convenience loader: entity rows then link rows.

        ``entities`` rows are ``(class_name, id, attributes)``; ``links``
        rows are ``((class, id), relationship, (class, id))``.
        """
        for class_name, entity_id, attributes in entities:
            self.create(class_name, entity_id, **attributes)
        for (src_cls, src_id), relationship_name, (dst_cls, dst_id) in links:
            self.relate(
                self.get(src_cls, src_id),
                relationship_name,
                self.get(dst_cls, dst_id),
            )
