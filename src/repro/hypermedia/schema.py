"""The navigational schema: node classes, link classes and context families.

This is OOHDM's second model — built *as a view over* the conceptual
schema, so different navigational schemas can serve the same domain.  The
schema also validates itself against the conceptual schema (a node class
viewing a class that does not exist is a design error, not a runtime one).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .conceptual import ConceptualSchema
from .context import ContextFamily, NavigationalContext
from .errors import SchemaError
from .instances import InstanceStore
from .links import LinkClass
from .nodes import NodeClass


@dataclass
class NavigationalSchema:
    """Node classes, link classes and context families over one domain."""

    conceptual: ConceptualSchema
    node_classes: dict[str, NodeClass] = field(default_factory=dict)
    link_classes: dict[str, LinkClass] = field(default_factory=dict)
    context_families: dict[str, ContextFamily] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def add_node_class(self, node_class: NodeClass) -> NodeClass:
        if node_class.name in self.node_classes:
            raise SchemaError(f"duplicate node class {node_class.name!r}")
        if not self.conceptual.has_class(node_class.conceptual_class):
            raise SchemaError(
                f"node class {node_class.name!r} views unknown conceptual "
                f"class {node_class.conceptual_class!r}"
            )
        self.node_classes[node_class.name] = node_class
        return node_class

    def add_link_class(self, link_class: LinkClass) -> LinkClass:
        if link_class.name in self.link_classes:
            raise SchemaError(f"duplicate link class {link_class.name!r}")
        relationship = self.conceptual.relationship(link_class.relationship)
        if link_class.source.conceptual_class != relationship.source:
            raise SchemaError(
                f"link class {link_class.name!r}: source node views "
                f"{link_class.source.conceptual_class!r} but relationship "
                f"{relationship.name!r} starts at {relationship.source!r}"
            )
        if link_class.target.conceptual_class != relationship.target:
            raise SchemaError(
                f"link class {link_class.name!r}: target node views "
                f"{link_class.target.conceptual_class!r} but relationship "
                f"{relationship.name!r} ends at {relationship.target!r}"
            )
        self.link_classes[link_class.name] = link_class
        return link_class

    def add_context_family(self, family: ContextFamily) -> ContextFamily:
        if family.name in self.context_families:
            raise SchemaError(f"duplicate context family {family.name!r}")
        if family.node_class.name not in self.node_classes:
            raise SchemaError(
                f"context family {family.name!r} uses unregistered node "
                f"class {family.node_class.name!r}"
            )
        self.context_families[family.name] = family
        return family

    # -- lookup -----------------------------------------------------------

    def node_class(self, name: str) -> NodeClass:
        try:
            return self.node_classes[name]
        except KeyError:
            raise SchemaError(f"unknown node class {name!r}")

    def link_class(self, name: str) -> LinkClass:
        try:
            return self.link_classes[name]
        except KeyError:
            raise SchemaError(f"unknown link class {name!r}")

    def link_classes_from(self, node_class_name: str) -> list[LinkClass]:
        """Link classes whose source is the given node class."""
        return [
            lc
            for lc in self.link_classes.values()
            if lc.source.name == node_class_name
        ]

    def context_family(self, name: str) -> ContextFamily:
        try:
            return self.context_families[name]
        except KeyError:
            raise SchemaError(f"unknown context family {name!r}")

    # -- materialization ----------------------------------------------------

    def build_contexts(
        self, store: InstanceStore
    ) -> dict[str, NavigationalContext]:
        """All contexts of all families, keyed ``family:value``."""
        contexts: dict[str, NavigationalContext] = {}
        for family in self.context_families.values():
            contexts.update(family.contexts(store))
        return contexts

    def validate(self) -> None:
        """Re-check cross-references (useful after programmatic edits)."""
        for node_class in self.node_classes.values():
            if not self.conceptual.has_class(node_class.conceptual_class):
                raise SchemaError(
                    f"node class {node_class.name!r} views unknown class "
                    f"{node_class.conceptual_class!r}"
                )
        for link_class in self.link_classes.values():
            self.conceptual.relationship(link_class.relationship)
            if link_class.source.name not in self.node_classes:
                raise SchemaError(
                    f"link class {link_class.name!r} uses unregistered "
                    f"source node class {link_class.source.name!r}"
                )
            if link_class.target.name not in self.node_classes:
                raise SchemaError(
                    f"link class {link_class.name!r} uses unregistered "
                    f"target node class {link_class.target.name!r}"
                )
