"""Errors raised by the hypermedia design model."""

from __future__ import annotations


class HypermediaError(Exception):
    """Base class for hypermedia model errors."""


class SchemaError(HypermediaError):
    """A conceptual or navigational schema is inconsistent."""


class InstanceError(HypermediaError):
    """An entity or relationship instance violates its schema."""


class NavigationError(HypermediaError):
    """A navigation step is impossible (no such node, end of tour, ...)."""
