"""Navigational contexts: OOHDM's structuring of the navigation space.

A navigational context is "a set of nodes, links, context classes and
other navigational contexts ... that can be traversed following a
particular order".  It is what makes the paper's §2 museum example work:
*Guitar* reached through its **author** sits in the ``by-painter:picasso``
context, so *Next* is another Picasso; reached through its **movement**
it sits in ``by-movement:cubism`` and *Next* is another cubist work.

:class:`ContextFamily` generates one context per partition value
(per painter, per movement); :class:`NavigationalContext` is one ordered
member set with an access structure attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .access import AccessStructure, Anchor, Index
from .errors import NavigationError
from .instances import Entity, InstanceStore
from .nodes import Node, NodeClass


@dataclass
class NavigationalContext:
    """An ordered set of nodes traversable under one access structure."""

    name: str
    members: list[Node]
    access_structure: AccessStructure

    def __post_init__(self) -> None:
        seen: set[Node] = set()
        unique: list[Node] = []
        for member in self.members:
            if member not in seen:
                seen.add(member)
                unique.append(member)
        self.members = unique

    # -- membership and order ------------------------------------------------

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node: Node) -> bool:
        return node in self.members

    def position(self, node: Node) -> int:
        """0-based position of *node* in the context order."""
        for index, member in enumerate(self.members):
            if member == node:
                return index
        raise NavigationError(f"{node!r} is not in context {self.name!r}")

    def next_after(self, node: Node) -> Node | None:
        """The member after *node*, or None at the end (non-circular)."""
        position = self.position(node)
        if position + 1 < len(self.members):
            return self.members[position + 1]
        if getattr(self.access_structure, "circular", False) and self.members:
            return self.members[0]
        return None

    def previous_before(self, node: Node) -> Node | None:
        """The member before *node*, or None at the start (non-circular)."""
        position = self.position(node)
        if position > 0:
            return self.members[position - 1]
        if getattr(self.access_structure, "circular", False) and self.members:
            return self.members[-1]
        return None

    # -- anchors --------------------------------------------------------------

    def anchors_on(self, node: Node) -> list[Anchor]:
        """Anchors the context's access structure puts on a member page."""
        return self.access_structure.anchors_on(node, self.members)

    def entry_anchors(self) -> list[Anchor]:
        """Anchors of the context's entry page (e.g. the index listing)."""
        return self.access_structure.entries(self.members)


@dataclass
class ContextFamily:
    """A parameterized set of contexts: one per partition value.

    ``partition`` maps the store to ``{value: [entities]}`` — e.g. all
    paintings grouped by painter.  ``order_key`` sorts each context's
    members; the default preserves partition order.
    """

    name: str
    node_class: NodeClass
    partition: Callable[[InstanceStore], dict[str, list[Entity]]]
    access_structure_factory: Callable[[str], AccessStructure] = field(
        default=lambda name: Index(name=name)
    )
    order_key: Callable[[Entity], object] | None = None

    def contexts(self, store: InstanceStore) -> dict[str, NavigationalContext]:
        """Build every context in the family from current instance data."""
        result: dict[str, NavigationalContext] = {}
        for value, entities in self.partition(store).items():
            if self.order_key is not None:
                entities = sorted(entities, key=self.order_key)
            members = [self.node_class.instantiate(e, store) for e in entities]
            context_name = f"{self.name}:{value}"
            result[context_name] = NavigationalContext(
                name=context_name,
                members=members,
                access_structure=self.access_structure_factory(context_name),
            )
        return result

    def context_for(
        self, store: InstanceStore, value: str
    ) -> NavigationalContext:
        """The single context for one partition value."""
        contexts = self.contexts(store)
        name = f"{self.name}:{value}"
        if name not in contexts:
            raise NavigationError(
                f"no context {name!r} (family {self.name!r} has: "
                f"{', '.join(sorted(contexts)) or 'none'})"
            )
        return contexts[name]


def group_by_relationship(
    node_source_class: str, relationship: str
) -> Callable[[InstanceStore], dict[str, list[Entity]]]:
    """Partition helper: group targets of *relationship* by source entity.

    ``group_by_relationship("Painter", "paints")`` yields
    ``{painter_id: [paintings...]}`` — the paper's by-author context family.
    """

    def partition(store: InstanceStore) -> dict[str, list[Entity]]:
        groups: dict[str, list[Entity]] = {}
        for source in store.all(node_source_class):
            targets = store.related(source, relationship)
            if targets:
                groups[source.entity_id] = targets
        return groups

    return partition


def group_by_attribute(
    class_name: str, attribute: str
) -> Callable[[InstanceStore], dict[str, list[Entity]]]:
    """Partition helper: group a class's entities by an attribute value."""

    def partition(store: InstanceStore) -> dict[str, list[Entity]]:
        groups: dict[str, list[Entity]] = {}
        for entity in store.all(class_name):
            value = entity.get(attribute)
            if value is not None:
                groups.setdefault(str(value), []).append(entity)
        return groups

    return partition
