"""repro — a reproduction of *Separating the Navigational Aspect* (ICDCS 2002).

The paper argues that navigation is a crosscutting concern of web
applications and should be separated from data and presentation, first via
XLink linkbases and ultimately via aspect-oriented weaving.  This library
builds that whole stack in Python:

- :mod:`repro.xmlcore` — from-scratch XML parser/DOM/serializer (namespaces).
- :mod:`repro.xpointer` — XPointer addressing (shorthand, element(), xpointer()).
- :mod:`repro.xlink` — XLink 1.0 data model: simple/extended links, linkbases.
- :mod:`repro.aop` — an AspectJ-like aspect framework (pointcuts, advice, weaver).
- :mod:`repro.hypermedia` — OOHDM primitives: conceptual/navigational schemas,
  access structures (Index, GuidedTour, IndexedGuidedTour), contexts.
- :mod:`repro.navigation` — navigation sessions and a user-agent simulator.
- :mod:`repro.web` — HTML model, XSL-lite stylesheets, static site builder.
- :mod:`repro.baselines` — the paper's *tangled* museum site (Figures 3–4).
- :mod:`repro.core` — the contribution: navigation as an aspect, woven into
  the conceptual model, with XLink linkbase round-tripping (Figures 6–9).
- :mod:`repro.metrics` — scattering/tangling and change-impact measurement.
"""

__version__ = "1.0.0"
