"""Concern classification: which lines of an artifact are *navigation*.

The scattering metrics need to know, per line of markup, whether it
belongs to the navigation concern (anchors, nav regions) or to content.
The classifier is deliberately syntactic — it works identically on the
tangled pages (where anchors sit anywhere) and the separated ones (where
they are confined to ``<nav>``), which is the comparison's whole point.
"""

from __future__ import annotations

import re

from dataclasses import dataclass
from enum import Enum


class Concern(str, Enum):
    NAVIGATION = "navigation"
    CONTENT = "content"
    STRUCTURE = "structure"  # html scaffolding: <html>, <head>, <body>, ...


_STRUCTURE_MARKERS = (
    "<html",
    "</html",
    "<head",
    "</head",
    "<body",
    "</body",
    "<?xml",
)
_NAVIGATION_MARKERS = (
    "<a ",
    "<a>",
    "</a>",
    "<nav",
    "</nav",
    # Linkbase artifacts carry navigation as XLink markup.
    "xlink:type",
    "xlink:href",
    "xlink:from",
    "<links",
    "</links",
)


def classify_line(line: str, *, in_nav_block: bool) -> Concern:
    """The concern of one markup line (given whether we are inside <nav>)."""
    stripped = line.strip()
    if not stripped:
        return Concern.STRUCTURE
    if in_nav_block or any(marker in stripped for marker in _NAVIGATION_MARKERS):
        return Concern.NAVIGATION
    if any(stripped.startswith(marker) for marker in _STRUCTURE_MARKERS):
        return Concern.STRUCTURE
    # A bare closing tag carries no concern of its own.
    if re.fullmatch(r"</[\w.:-]+>", stripped):
        return Concern.STRUCTURE
    return Concern.CONTENT


@dataclass(frozen=True)
class FileConcerns:
    """Per-file concern line counts."""

    path: str
    navigation_lines: int
    content_lines: int
    structure_lines: int

    @property
    def total_lines(self) -> int:
        return self.navigation_lines + self.content_lines + self.structure_lines

    @property
    def has_navigation(self) -> bool:
        return self.navigation_lines > 0

    @property
    def is_tangled(self) -> bool:
        """True when navigation and content share the file."""
        return self.navigation_lines > 0 and self.content_lines > 0


def classify_file(path: str, text: str) -> FileConcerns:
    """Classify every line of one artifact.

    A navigation-spec artifact (first line ``[navigation]``) is pure
    navigation by construction — every decision line in it is a
    navigational decision.
    """
    if text.startswith("[navigation]"):
        decision_lines = [line for line in text.splitlines() if line.strip()]
        return FileConcerns(path, len(decision_lines), 0, 0)
    navigation = content = structure = 0
    nav_depth = 0
    for line in text.splitlines():
        entering = line.count("<nav")
        leaving = line.count("</nav")
        concern = classify_line(line, in_nav_block=nav_depth > 0 or entering > 0)
        nav_depth += entering - leaving
        if concern is Concern.NAVIGATION:
            navigation += 1
        elif concern is Concern.CONTENT:
            content += 1
        else:
            structure += 1
    return FileConcerns(path, navigation, content, structure)
