"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (the benches print these)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(
            value.ljust(widths[i]) for i, value in enumerate(values)
        ).rstrip()

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(rule)
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_ratio(numerator: float, denominator: float) -> str:
    """A 'x.xx×' speedup/blowup factor, guarding the zero denominator."""
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"
