"""Measurement: scattering/tangling metrics and change-impact analysis.

Turns the paper's qualitative claims into numbers: how scattered is the
navigation concern under each architecture, and what does the change
request actually cost to apply.
"""

from .change_impact import (
    ApproachImpact,
    all_impacts,
    aspect_impact,
    tangled_impact,
    xlink_impact,
)
from .concerns import Concern, FileConcerns, classify_file, classify_line
from .report import format_ratio, format_table
from .scattering import ScatteringReport, measure_scattering

__all__ = [
    "ApproachImpact",
    "Concern",
    "FileConcerns",
    "ScatteringReport",
    "all_impacts",
    "aspect_impact",
    "classify_file",
    "classify_line",
    "format_ratio",
    "format_table",
    "measure_scattering",
    "tangled_impact",
    "xlink_impact",
]
