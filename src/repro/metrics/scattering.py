"""Scattering and tangling metrics over a build's artifacts.

Quantifies the paper's premise — "aspects ... wrap concerns that are
scattered all over the program code" — with the standard concern metrics:

- **CDC** (Concern Diffusion over Components): how many artifacts contain
  navigation.
- **CDLOC share**: the fraction of all lines that are navigation.
- **Tangling ratio**: the fraction of artifacts that *mix* navigation with
  content (pure-navigation artifacts like ``links.xml`` are separated, not
  tangled).

A tangled museum site scores CDC ≈ all pages and tangling ≈ 1.0; the
separated builds confine navigation to one artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .concerns import FileConcerns, classify_file


@dataclass
class ScatteringReport:
    """Concern metrics for one build (a ``{path: text}`` mapping)."""

    files: list[FileConcerns] = field(default_factory=list)

    @property
    def total_files(self) -> int:
        return len(self.files)

    @property
    def cdc(self) -> int:
        """Concern Diffusion over Components: files containing navigation."""
        return sum(1 for f in self.files if f.has_navigation)

    @property
    def tangled_files(self) -> int:
        return sum(1 for f in self.files if f.is_tangled)

    @property
    def tangling_ratio(self) -> float:
        if not self.files:
            return 0.0
        return self.tangled_files / len(self.files)

    @property
    def navigation_lines(self) -> int:
        return sum(f.navigation_lines for f in self.files)

    @property
    def total_lines(self) -> int:
        return sum(f.total_lines for f in self.files)

    @property
    def navigation_share(self) -> float:
        """CDLOC share: navigation lines / all lines."""
        if self.total_lines == 0:
            return 0.0
        return self.navigation_lines / self.total_lines

    def navigation_only_files(self) -> list[str]:
        """Artifacts that are pure navigation (the separated ideal)."""
        return [f.path for f in self.files if f.has_navigation and f.content_lines == 0]

    def row(self, label: str) -> tuple:
        """A table row for the experiment reports."""
        return (
            label,
            self.total_files,
            self.cdc,
            self.tangled_files,
            f"{self.tangling_ratio:.2f}",
            self.navigation_lines,
            f"{self.navigation_share:.2f}",
        )


def measure_scattering(build: dict[str, str]) -> ScatteringReport:
    """Classify every artifact of a build and aggregate the metrics."""
    report = ScatteringReport()
    for path in sorted(build):
        report.files.append(classify_file(path, build[path]))
    return report
