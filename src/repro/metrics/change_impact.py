"""Experiment-ready change-impact measurements.

The paper's motivating claim, made measurable: apply the customer's change
request (Index → Indexed Guided Tour) under each architecture and count
what a developer must touch.

Two views matter and the experiments report both:

- **Authored artifacts** — what a human edits.  Tangled: the pages
  themselves.  XLink: data documents + ``links.xml``.  Aspect: the
  navigation spec.
- **Built pages** — what the browser sees.  These change comparably under
  every architecture (the user asked for new links, after all); the
  difference is who regenerates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.museum_data import MuseumFixture
from repro.baselines.tangled import TangledMuseumSite
from repro.core import (
    build_woven_site,
    default_museum_spec,
    export_museum_space,
)
from repro.core.pipeline import XLinkSiteBuilder
from repro.web import ChangeImpact, diff_builds


@dataclass(frozen=True)
class ApproachImpact:
    """Change impact of one approach, in both views."""

    approach: str
    authored: ChangeImpact
    built: ChangeImpact

    def row(self) -> tuple:
        return (
            self.approach,
            f"{self.authored.files_touched}/{self.authored.files_total}",
            self.authored.lines_changed,
            f"{self.built.files_touched}/{self.built.files_total}",
            self.built.lines_changed,
        )


def tangled_impact(
    fixture: MuseumFixture,
    before: str = "index",
    after: str = "indexed-guided-tour",
) -> ApproachImpact:
    """Tangled architecture: the pages *are* the authored artifacts."""
    pages_before = {
        p.path: p.html for p in TangledMuseumSite(fixture, before).build().values()
    }
    pages_after = {
        p.path: p.html for p in TangledMuseumSite(fixture, after).build().values()
    }
    impact = diff_builds(pages_before, pages_after)
    return ApproachImpact("tangled", authored=impact, built=impact)


def xlink_impact(
    fixture: MuseumFixture,
    before: str = "index",
    after: str = "indexed-guided-tour",
) -> ApproachImpact:
    """XLink architecture: authored = data documents + linkbase."""
    spec_before = default_museum_spec(before)
    spec_after = default_museum_spec(after)
    space_before = export_museum_space(fixture, spec_before)
    space_after = export_museum_space(fixture, spec_after)

    def space_text(space):
        from repro.xmlcore import serialize

        return {
            uri: serialize(space.document(uri), indent="  ")
            for uri in space.uris()
        }

    authored = diff_builds(space_text(space_before), space_text(space_after))
    built = diff_builds(
        XLinkSiteBuilder(space_before).build().as_text(),
        XLinkSiteBuilder(space_after).build().as_text(),
    )
    return ApproachImpact("xlink", authored=authored, built=built)


def aspect_impact(
    fixture: MuseumFixture,
    before: str = "index",
    after: str = "indexed-guided-tour",
) -> ApproachImpact:
    """Aspect architecture: authored = the navigation spec (one artifact)."""
    spec_before = default_museum_spec(before)
    spec_after = default_museum_spec(after)
    authored = diff_builds(
        {"navigation.spec": spec_before.to_text()},
        {"navigation.spec": spec_after.to_text()},
    )
    built = diff_builds(
        build_woven_site(fixture, spec_before).as_text(),
        build_woven_site(fixture, spec_after).as_text(),
    )
    return ApproachImpact("aspect", authored=authored, built=built)


def all_impacts(fixture: MuseumFixture) -> list[ApproachImpact]:
    """The change request under all three architectures."""
    return [
        tangled_impact(fixture),
        xlink_impact(fixture),
        aspect_impact(fixture),
    ]
