"""The tangled baseline: Figures 3 and 4 as a site generator.

This reproduces the "before" state of the paper: every page is hand-shaped
markup in which data, presentation *and navigation* are interleaved.  The
access structure is hard-coded into every painting page — switching from
Index to Indexed Guided Tour (the customer's change request) edits **every
node page of the context**, which is exactly what the change-impact
experiment measures.

The pages are well-formed XHTML so the rest of the stack (user agent,
differ) can parse them with :mod:`repro.xmlcore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypermedia import Entity, InstanceStore
from repro.navigation import PageAnchor, PageView
from repro.xmlcore import escape_text, parse

from .museum_data import MuseumFixture


@dataclass(frozen=True)
class TangledPage:
    """One generated page: site-relative path plus its markup."""

    path: str
    html: str

    def lines(self) -> list[str]:
        return self.html.splitlines()


class TangledMuseumSite:
    """Builds the museum site the way Figures 3–4 were written: by hand.

    ``access`` is ``"index"`` (Figure 3) or ``"indexed-guided-tour"``
    (Figure 4).  Each painting page of a painter's context embeds the index
    of sibling paintings; the guided-tour variant adds the two Next /
    Previous lines the paper prints in bold.
    """

    def __init__(self, fixture: MuseumFixture, access: str | None = None):
        self._fixture = fixture
        self._access = access or fixture.painting_access
        if self._access not in ("index", "indexed-guided-tour"):
            raise ValueError(f"unsupported tangled access structure: {self._access}")

    # -- site construction ---------------------------------------------------

    def build(self) -> dict[str, TangledPage]:
        """All pages of the site, keyed by path."""
        store = self._fixture.store
        pages: dict[str, TangledPage] = {}
        home = self._home_page(store)
        pages[home.path] = home
        for painter in store.all("Painter"):
            page = self._painter_page(store, painter)
            pages[page.path] = page
            paintings = self._ordered_paintings(store, painter)
            for painting in paintings:
                painting_page = self._painting_page(store, painter, painting, paintings)
                pages[painting_page.path] = painting_page
        return pages

    def _ordered_paintings(
        self, store: InstanceStore, painter: Entity
    ) -> list[Entity]:
        return sorted(
            store.related(painter, "paints"), key=lambda e: e.get("year") or 0
        )

    @staticmethod
    def _painter_path(painter: Entity) -> str:
        return f"painter/{painter.entity_id}.html"

    @staticmethod
    def _painting_path(painting: Entity) -> str:
        return f"painting/{painting.entity_id}.html"

    def _home_page(self, store: InstanceStore) -> TangledPage:
        lines = [
            "<html>",
            "<head><title>The Museum</title></head>",
            "<body>",
            "<h1>The Museum</h1>",
            "<ul>",
        ]
        for painter in store.all("Painter"):
            name = escape_text(painter.get("name"))
            lines.append(
                f'<li><a href="{self._painter_path(painter)}">{name}</a></li>'
            )
        lines += ["</ul>", "</body>", "</html>"]
        return TangledPage("index.html", "\n".join(lines))

    def _painter_page(self, store: InstanceStore, painter: Entity) -> TangledPage:
        name = escape_text(painter.get("name"))
        lines = [
            "<html>",
            f"<head><title>{name}</title></head>",
            "<body>",
            f"<h1>{name}</h1>",
            "<h2>Paintings</h2>",
            "<ul>",
        ]
        for painting in self._ordered_paintings(store, painter):
            title = escape_text(painting.get("title"))
            lines.append(
                f'<li><a href="../{self._painting_path(painting)}">{title}</a></li>'
            )
        lines += [
            "</ul>",
            '<p><a href="../index.html">Museum home</a></p>',
            "</body>",
            "</html>",
        ]
        return TangledPage(self._painter_path(painter), "\n".join(lines))

    def _painting_page(
        self,
        store: InstanceStore,
        painter: Entity,
        painting: Entity,
        siblings: list[Entity],
    ) -> TangledPage:
        title = escape_text(painting.get("title"))
        painter_name = escape_text(painter.get("name"))
        year = painting.get("year")
        lines = [
            "<html>",
            f"<head><title>{title}</title></head>",
            "<body>",
            f"<h1>{title}</h1>",
            f'<img src="../images/{painting.entity_id}.jpg" alt="{title}"/>',
            f"<p>{painter_name}, {year}.</p>",
            # --- navigation tangled into the page starts here -------------
            "<h2>Other paintings</h2>",
            "<ul>",
        ]
        for sibling in siblings:
            if sibling == painting:
                continue
            sibling_title = escape_text(sibling.get("title"))
            lines.append(
                f'<li><a href="../{self._painting_path(sibling)}">'
                f"{sibling_title}</a></li>"
            )
        lines.append("</ul>")
        if self._access == "indexed-guided-tour":
            # The two bold lines of Figure 4, repeated in *every* page.
            position = siblings.index(painting)
            if position > 0:
                prev_path = self._painting_path(siblings[position - 1])
                lines.append(
                    f'<p><a rel="prev" href="../{prev_path}">Previous</a></p>'
                )
            if position + 1 < len(siblings):
                next_path = self._painting_path(siblings[position + 1])
                lines.append(
                    f'<p><a rel="next" href="../{next_path}">Next</a></p>'
                )
        lines += [
            f'<p><a href="../{self._painter_path(painter)}">{painter_name}</a></p>',
            "</body>",
            "</html>",
        ]
        return TangledPage(self._painting_path(painting), "\n".join(lines))

    # -- page provider for the user agent -------------------------------------

    def provider(self) -> "TangledProvider":
        return TangledProvider(self.build())


class TangledProvider:
    """Serves built tangled pages to :class:`repro.navigation.UserAgent`."""

    def __init__(self, pages: dict[str, TangledPage]):
        self._pages = pages

    def page(self, uri: str) -> PageView:
        from repro.hypermedia.errors import NavigationError

        normalized = _normalize(uri)
        if normalized not in self._pages:
            raise NavigationError(f"no page at {uri!r}")
        document = parse(self._pages[normalized].html)
        title_el = document.root_element.find("title")
        anchors = [
            PageAnchor(
                label=a.text_content(),
                href=_normalize(_join(normalized, a.get("href") or "")),
                rel=a.get("rel") or "link",
            )
            for a in document.root_element.findall("a")
        ]
        return PageView(
            uri=normalized,
            title=title_el.text_content() if title_el is not None else "",
            anchors=anchors,
        )


def _join(base: str, reference: str) -> str:
    from repro.xlink import resolve_uri

    return resolve_uri(base, reference)


def _normalize(uri: str) -> str:
    import posixpath

    return posixpath.normpath(uri)
