"""The museum domain: the paper's running example, in one reusable fixture.

The paper's pages name Picasso's *Guitar*, *Guernica* and *Les Demoiselles
d'Avignon*; we add Dalí and Miró with works and pictorial movements so the
two context families of §2 (by painter, by movement) are non-trivial.
:func:`synthetic_museum` scales the same shape up for benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypermedia import (
    ConceptualSchema,
    ContextFamily,
    GuidedTour,
    Index,
    IndexedGuidedTour,
    InstanceStore,
    LinkClass,
    NavigationalSchema,
    NodeClass,
    group_by_attribute,
    group_by_relationship,
)

#: painter id -> (name, [(painting id, title, year, movement)])
MUSEUM_PAINTERS: dict[str, tuple[str, list[tuple[str, str, int, str]]]] = {
    "picasso": (
        "Pablo Picasso",
        [
            ("guitar", "Guitar", 1913, "cubism"),
            ("guernica", "Guernica", 1937, "cubism"),
            ("avignon", "Les Demoiselles d'Avignon", 1907, "cubism"),
        ],
    ),
    "braque": (
        "Georges Braque",
        [
            ("violin", "Violin and Candlestick", 1910, "cubism"),
            ("clarinet", "Clarinet and Bottle of Rum", 1918, "cubism"),
        ],
    ),
    "dali": (
        "Salvador Dali",
        [
            ("memory", "The Persistence of Memory", 1931, "surrealism"),
            ("elephants", "The Elephants", 1948, "surrealism"),
        ],
    ),
    "miro": (
        "Joan Miro",
        [
            ("harlequin", "Harlequin's Carnival", 1925, "surrealism"),
            ("constellation", "The Morning Star", 1940, "surrealism"),
        ],
    ),
}


def build_museum_schema() -> ConceptualSchema:
    """The conceptual schema: Painter, Painting, Movement + relationships."""
    schema = ConceptualSchema()
    schema.add_class("Painter", [("name", str, True)])
    schema.add_class(
        "Painting", [("title", str, True), ("year", int), ("movement", str)]
    )
    schema.add_class("Movement", [("name", str, True)])
    schema.add_relationship("paints", "Painter", "Painting", inverse="painted_by")
    schema.add_relationship(
        "belongs_to", "Painting", "Movement", inverse="includes"
    )
    return schema


def build_museum_store(
    schema: ConceptualSchema | None = None,
    painters: dict[str, tuple[str, list[tuple[str, str, int, str]]]] | None = None,
) -> InstanceStore:
    """Populate an instance store with the museum data."""
    store = InstanceStore(schema or build_museum_schema())
    painters = painters if painters is not None else MUSEUM_PAINTERS
    movements_seen: set[str] = set()
    for painter_id, (painter_name, paintings) in painters.items():
        painter = store.create("Painter", painter_id, name=painter_name)
        for painting_id, title, year, movement_id in paintings:
            painting = store.create(
                "Painting", painting_id, title=title, year=year, movement=movement_id
            )
            store.relate(painter, "paints", painting)
            if movement_id not in movements_seen:
                movements_seen.add(movement_id)
                store.create("Movement", movement_id, name=movement_id.title())
            store.relate(
                painting, "belongs_to", store.get("Movement", movement_id)
            )
    return store


def build_navigational_schema(
    conceptual: ConceptualSchema,
    *,
    painting_access: str = "index",
) -> NavigationalSchema:
    """The navigational view: nodes, links and the two context families.

    ``painting_access`` chooses the access structure of the by-painter
    context family — ``"index"`` (the original requirement) or
    ``"indexed-guided-tour"`` (after the customer's change request).  This
    single parameter is the "conceptually simple change" of the paper.
    """
    nav = NavigationalSchema(conceptual)

    painter_node = NodeClass("PainterNode", "Painter").view("name")
    painting_node = (
        NodeClass("PaintingNode", "Painting")
        .view("title")
        .view("year")
        .view("movement")
        .view(
            "painter",
            lambda entity, store: ", ".join(
                p.get("name") for p in store.related(entity, "painted_by")
            ),
        )
    )
    nav.add_node_class(painter_node)
    nav.add_node_class(painting_node)

    nav.add_link_class(
        LinkClass(
            name="paints",
            relationship="paints",
            source=painter_node,
            target=painting_node,
            arcrole="urn:museum:paints",
            title_attribute="title",
        )
    )
    nav.add_link_class(
        LinkClass(
            name="painted_by",
            relationship="painted_by",
            source=painting_node,
            target=painter_node,
            arcrole="urn:museum:painted-by",
            title_attribute="name",
        )
    )

    if painting_access == "index":
        def structure_factory(name: str):
            return Index(name=name, label_attribute="title")
    elif painting_access == "indexed-guided-tour":
        def structure_factory(name: str):
            return IndexedGuidedTour(name=name, label_attribute="title")
    elif painting_access == "guided-tour":
        def structure_factory(name: str):
            return GuidedTour(name=name, label_attribute="title")
    else:
        raise ValueError(f"unknown painting_access {painting_access!r}")

    nav.add_context_family(
        ContextFamily(
            name="by-painter",
            node_class=painting_node,
            partition=group_by_relationship("Painter", "paints"),
            access_structure_factory=structure_factory,
            order_key=lambda entity: entity.get("year") or 0,
        )
    )
    nav.add_context_family(
        ContextFamily(
            name="by-movement",
            node_class=painting_node,
            partition=group_by_attribute("Painting", "movement"),
            access_structure_factory=structure_factory,
            order_key=lambda entity: entity.get("year") or 0,
        )
    )
    return nav


@dataclass
class MuseumFixture:
    """Everything the examples, tests and benches need, pre-wired."""

    conceptual: ConceptualSchema
    store: InstanceStore
    nav: NavigationalSchema
    painting_access: str = "index"

    def contexts(self):
        return self.nav.build_contexts(self.store)

    def painting_node(self, painting_id: str):
        return self.nav.node_class("PaintingNode").instantiate(
            self.store.get("Painting", painting_id), self.store
        )

    def painter_node(self, painter_id: str):
        return self.nav.node_class("PainterNode").instantiate(
            self.store.get("Painter", painter_id), self.store
        )


def museum_fixture(painting_access: str = "index") -> MuseumFixture:
    """The paper's museum, ready to navigate."""
    conceptual = build_museum_schema()
    return MuseumFixture(
        conceptual=conceptual,
        store=build_museum_store(conceptual),
        nav=build_navigational_schema(conceptual, painting_access=painting_access),
        painting_access=painting_access,
    )


def synthetic_museum(
    n_painters: int,
    paintings_per_painter: int,
    *,
    n_movements: int = 5,
    painting_access: str = "index",
) -> MuseumFixture:
    """A museum of arbitrary size with the same shape (for scaling benches)."""
    painters: dict[str, tuple[str, list[tuple[str, str, int, str]]]] = {}
    for p in range(n_painters):
        painter_id = f"painter{p}"
        works = [
            (
                f"work{p}_{w}",
                f"Work {w} of Painter {p}",
                1900 + (w * 7 + p) % 100,
                f"movement{(p + w) % n_movements}",
            )
            for w in range(paintings_per_painter)
        ]
        painters[painter_id] = (f"Painter {p}", works)
    conceptual = build_museum_schema()
    return MuseumFixture(
        conceptual=conceptual,
        store=build_museum_store(conceptual, painters),
        nav=build_navigational_schema(conceptual, painting_access=painting_access),
        painting_access=painting_access,
    )
