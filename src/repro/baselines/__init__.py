"""Baselines: the paper's *tangled* museum web application.

:mod:`repro.baselines.museum_data` holds the shared museum domain (the
paper's running example, plus a synthetic generator for scaling studies);
:mod:`repro.baselines.tangled` builds the Figures 3–4 site where
navigation markup is written by hand into every page — the "before"
artifact every experiment diffs against.
"""

from .museum_data import (
    MUSEUM_PAINTERS,
    MuseumFixture,
    build_museum_schema,
    build_museum_store,
    build_navigational_schema,
    museum_fixture,
    synthetic_museum,
)
from .tangled import TangledMuseumSite, TangledPage

__all__ = [
    "MUSEUM_PAINTERS",
    "MuseumFixture",
    "TangledMuseumSite",
    "TangledPage",
    "build_museum_schema",
    "build_museum_store",
    "build_navigational_schema",
    "museum_fixture",
    "synthetic_museum",
]
