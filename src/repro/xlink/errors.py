"""Errors raised by the XLink processor."""

from __future__ import annotations


class XLinkError(Exception):
    """Base class for XLink errors."""


class XLinkSyntaxError(XLinkError):
    """XLink markup violates the spec (bad type value, missing href, ...)."""


class XLinkResolutionError(XLinkError):
    """A locator could not be resolved to a resource."""
