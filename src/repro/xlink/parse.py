"""Harvest XLink links from a parsed document.

An XLink processor does not care about element names — only about the
``xlink:type`` attributes — so any vocabulary (the paper's museum markup,
our navigation specs) can carry links.
"""

from __future__ import annotations

from repro.xmlcore.dom import Document, Element

from . import attributes as attrs
from .attributes import XLinkType, parse_actuate, parse_show, xlink_type
from .errors import XLinkSyntaxError
from .model import Arc, ExtendedLink, Locator, Resource, SimpleLink, UriReference


def find_links(root: Document | Element) -> list[SimpleLink | ExtendedLink]:
    """All XLink links in document order under *root*.

    Nested extended links are not descended into (the spec leaves their
    meaning undefined); everything else is scanned recursively.
    """
    links: list[SimpleLink | ExtendedLink] = []
    start = root.root_element if isinstance(root, Document) else root
    _scan(start, links)
    return links


def _scan(element: Element, links: list[SimpleLink | ExtendedLink]) -> None:
    kind = xlink_type(element)
    if kind is XLinkType.SIMPLE:
        links.append(parse_simple_link(element))
        # Simple links may contain further links in their content.
        for child in element.child_elements():
            _scan(child, links)
        return
    if kind is XLinkType.EXTENDED:
        links.append(parse_extended_link(element))
        return
    for child in element.child_elements():
        _scan(child, links)


def parse_simple_link(element: Element) -> SimpleLink:
    """Build a :class:`SimpleLink` from an ``xlink:type="simple"`` element."""
    href = element.get(attrs.HREF)
    if href is None:
        raise XLinkSyntaxError(
            f"simple link <{element.name.clark()}> has no xlink:href"
        )
    return SimpleLink(
        href=UriReference.parse(href),
        role=element.get(attrs.ROLE),
        arcrole=element.get(attrs.ARCROLE),
        title=element.get(attrs.TITLE),
        show=parse_show(element),
        actuate=parse_actuate(element),
        element=element,
    )


def parse_extended_link(element: Element) -> ExtendedLink:
    """Build an :class:`ExtendedLink` from an ``xlink:type="extended"`` element."""
    locators: list[Locator] = []
    resources: list[Resource] = []
    arcs: list[Arc] = []
    titles: list[str] = []

    for child in element.child_elements():
        kind = xlink_type(child)
        if kind is XLinkType.LOCATOR:
            href = child.get(attrs.HREF)
            if href is None:
                raise XLinkSyntaxError(
                    f"locator <{child.name.clark()}> has no xlink:href"
                )
            label = child.get(attrs.LABEL)
            if label is not None:
                attrs.require_ncname_label(label, "xlink:label")
            locators.append(
                Locator(
                    href=UriReference.parse(href),
                    label=label,
                    role=child.get(attrs.ROLE),
                    title=child.get(attrs.TITLE),
                    element=child,
                )
            )
        elif kind is XLinkType.RESOURCE:
            label = child.get(attrs.LABEL)
            if label is not None:
                attrs.require_ncname_label(label, "xlink:label")
            resources.append(
                Resource(
                    label=label,
                    role=child.get(attrs.ROLE),
                    title=child.get(attrs.TITLE),
                    element=child,
                )
            )
        elif kind is XLinkType.ARC:
            from_label = child.get(attrs.FROM)
            to_label = child.get(attrs.TO)
            if from_label is not None:
                attrs.require_ncname_label(from_label, "xlink:from")
            if to_label is not None:
                attrs.require_ncname_label(to_label, "xlink:to")
            arcs.append(
                Arc(
                    from_label=from_label,
                    to_label=to_label,
                    arcrole=child.get(attrs.ARCROLE),
                    title=child.get(attrs.TITLE),
                    show=parse_show(child),
                    actuate=parse_actuate(child),
                    element=child,
                )
            )
        elif kind is XLinkType.TITLE:
            titles.append(child.text_content())
        # xlink:type="none" and unmarked children are ignored per spec.

    title = element.get(attrs.TITLE)
    if title is None and titles:
        title = titles[0]
    return ExtendedLink(
        role=element.get(attrs.ROLE),
        title=title,
        locators=tuple(locators),
        resources=tuple(resources),
        arcs=tuple(arcs),
        element=element,
    )
