"""Linkbases: documents whose job is to hold links about *other* documents.

This is the artifact the paper proposes in section 6: ``links.xml`` holds
the arcs between ``picasso.xml`` and ``avignon.xml`` so the data documents
contain no navigation at all.  :class:`Linkbase` wraps one such document;
:class:`LinkbaseSet` loads a closure of linkbases (following arcs with the
special linkbase arcrole, XLink §4.4) and exposes one merged
:class:`~repro.xlink.traversal.LinkGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlcore.dom import Document

from .attributes import LINKBASE_ARCROLE
from .errors import XLinkResolutionError
from .model import ExtendedLink, Locator, SimpleLink, Traversal, UriReference
from .parse import find_links
from .resolver import UriSpace, resolve_uri
from .traversal import LinkGraph
from .validate import Issue, validate_links


@dataclass
class Linkbase:
    """One linkbase document: its URI, links and expanded graph."""

    uri: str
    document: Document
    links: list[SimpleLink | ExtendedLink] = field(default_factory=list)

    @classmethod
    def from_document(cls, uri: str, document: Document) -> "Linkbase":
        return cls(uri=uri, document=document, links=find_links(document))

    def extended_links(self) -> list[ExtendedLink]:
        return [link for link in self.links if isinstance(link, ExtendedLink)]

    def simple_links(self) -> list[SimpleLink]:
        return [link for link in self.links if isinstance(link, SimpleLink)]

    def graph(self, *, strict: bool = True) -> LinkGraph:
        """The traversal graph of this linkbase alone, hrefs normalized."""
        graph = LinkGraph.from_links(self.extended_links(), strict=strict)
        return _normalize_graph(graph, self.uri)

    def validate(self) -> list[Issue]:
        return validate_links(self.links)

    def linkbase_references(self) -> list[UriReference]:
        """Hrefs of further linkbases this one points at (XLink §4.4)."""
        references: list[UriReference] = []
        for link in self.links:
            if isinstance(link, SimpleLink):
                if link.arcrole == LINKBASE_ARCROLE:
                    references.append(link.href)
                continue
            for traversal in _safe_expansions(link):
                if traversal.arc.arcrole == LINKBASE_ARCROLE and isinstance(
                    traversal.end, Locator
                ):
                    references.append(traversal.end.href)
        return references


def _safe_expansions(link: ExtendedLink) -> list[Traversal]:
    from .traversal import expand_arcs

    try:
        return expand_arcs(link, strict=False)
    except Exception:  # pragma: no cover - defensive; strict=False cannot raise
        return []


def _normalize_graph(graph: LinkGraph, base_uri: str) -> LinkGraph:
    """Rewrite relative locator hrefs against the linkbase's own URI.

    Without this, ``picasso.xml`` in a linkbase at ``museum/links.xml``
    would not compare equal to the canonical ``museum/picasso.xml``.
    """
    normalized = LinkGraph()
    for traversal in graph.traversals:
        normalized.add(
            Traversal(
                start=_normalize_participant(traversal.start, base_uri),
                end=_normalize_participant(traversal.end, base_uri),
                arc=traversal.arc,
                link=traversal.link,
            )
        )
    return normalized


def _normalize_participant(participant, base_uri: str):
    if not isinstance(participant, Locator):
        return participant
    resolved = (
        resolve_uri(base_uri, participant.href.uri)
        if participant.href.uri
        else base_uri
    )
    if resolved == participant.href.uri:
        return participant
    return Locator(
        href=UriReference(resolved, participant.href.fragment),
        label=participant.label,
        role=participant.role,
        title=participant.title,
        element=participant.element,
    )


class LinkbaseSet:
    """A closure of linkbases over a :class:`~repro.xlink.resolver.UriSpace`."""

    def __init__(self, space: UriSpace):
        self._space = space
        self._linkbases: dict[str, Linkbase] = {}

    @property
    def linkbases(self) -> list[Linkbase]:
        return [self._linkbases[uri] for uri in sorted(self._linkbases)]

    def load(self, uri: str, *, follow: bool = True, _depth: int = 0) -> Linkbase:
        """Load the linkbase at *uri*, following linkbase arcs when *follow*.

        Cycles between linkbases are tolerated: an already-loaded URI is
        returned as-is.
        """
        if uri in self._linkbases:
            return self._linkbases[uri]
        if _depth > 64:
            raise XLinkResolutionError("linkbase chain too deep (cycle suspected?)")
        document = self._space.document(uri)
        linkbase = Linkbase.from_document(uri, document)
        self._linkbases[uri] = linkbase
        if follow:
            for reference in linkbase.linkbase_references():
                target = resolve_uri(uri, reference.uri) if reference.uri else uri
                self.load(target, follow=True, _depth=_depth + 1)
        return linkbase

    def graph(self, *, strict: bool = True) -> LinkGraph:
        """The merged traversal graph of every loaded linkbase."""
        merged = LinkGraph()
        for linkbase in self.linkbases:
            for traversal in linkbase.graph(strict=strict).traversals:
                merged.add(traversal)
        return merged

    def validate(self) -> list[Issue]:
        """All issues across every loaded linkbase."""
        issues: list[Issue] = []
        for linkbase in self.linkbases:
            issues.extend(linkbase.validate())
        return issues
