"""Expand arcs into concrete traversals and build a link graph.

This is where "links in one file" becomes navigable structure: every arc is
expanded over its from/to label sets (XLink §5.1.3), and the resulting
traversals are indexed by starting resource so a user agent — or the
navigation weaver — can ask "where can I go from here?".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .errors import XLinkSyntaxError
from .model import ExtendedLink, Locator, Resource, Traversal, UriReference


def expand_arcs(link: ExtendedLink, *, strict: bool = True) -> list[Traversal]:
    """All traversals an extended link defines.

    With *strict* on, an arc naming a label that no participant carries is
    an error (the spec calls the document in error); otherwise such arcs
    simply contribute no traversals.
    """
    traversals: list[Traversal] = []
    labels = link.labels()
    seen_pairs: set[tuple[str | None, str | None]] = set()
    for arc in link.arcs:
        for side, label in (("from", arc.from_label), ("to", arc.to_label)):
            if strict and label is not None and label not in labels:
                raise XLinkSyntaxError(
                    f"arc {side!r} label {label!r} matches no participant"
                )
        pair = (arc.from_label, arc.to_label)
        if pair in seen_pairs:
            # Duplicate arcs (same from/to) are flagged by validate(); at
            # expansion time the second contributes nothing new.
            continue
        seen_pairs.add(pair)
        for start in link.participants_for_label(arc.from_label):
            for end in link.participants_for_label(arc.to_label):
                traversals.append(Traversal(start=start, end=end, arc=arc, link=link))
    return traversals


def _resource_key(participant: Locator | Resource) -> str:
    """A stable identity for graph keying: href for remote, label for local."""
    if isinstance(participant, Locator):
        return str(participant.href)
    return f"local:{participant.label or id(participant.element)}"


@dataclass
class LinkGraph:
    """Traversals from one or more extended links, indexed by endpoint."""

    traversals: list[Traversal] = field(default_factory=list)
    _outgoing: dict[str, list[Traversal]] = field(
        default_factory=lambda: defaultdict(list)
    )
    _incoming: dict[str, list[Traversal]] = field(
        default_factory=lambda: defaultdict(list)
    )

    @classmethod
    def from_links(
        cls, links: list[ExtendedLink], *, strict: bool = True
    ) -> "LinkGraph":
        graph = cls()
        for link in links:
            for traversal in expand_arcs(link, strict=strict):
                graph.add(traversal)
        return graph

    def add(self, traversal: Traversal) -> None:
        self.traversals.append(traversal)
        self._outgoing[_resource_key(traversal.start)].append(traversal)
        self._incoming[_resource_key(traversal.end)].append(traversal)

    # -- queries --------------------------------------------------------

    def outgoing(
        self, resource: Locator | Resource | UriReference | str
    ) -> list[Traversal]:
        """Traversals starting at *resource* (href string, UriReference or participant)."""
        return list(self._outgoing.get(self._key(resource), ()))

    def incoming(
        self, resource: Locator | Resource | UriReference | str
    ) -> list[Traversal]:
        """Traversals ending at *resource*."""
        return list(self._incoming.get(self._key(resource), ()))

    def outgoing_by_arcrole(
        self, resource: Locator | Resource | UriReference | str, arcrole: str
    ) -> list[Traversal]:
        """Outgoing traversals whose arc carries *arcrole*."""
        return [t for t in self.outgoing(resource) if t.arc.arcrole == arcrole]

    def resources(self) -> set[str]:
        """All endpoint keys that participate in at least one traversal."""
        return set(self._outgoing) | set(self._incoming)

    @staticmethod
    def _key(resource: Locator | Resource | UriReference | str) -> str:
        if isinstance(resource, (Locator, Resource)):
            return _resource_key(resource)
        if isinstance(resource, UriReference):
            return str(resource)
        return resource

    def __len__(self) -> int:
        return len(self.traversals)
