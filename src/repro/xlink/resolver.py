"""A URI space: resolving hrefs to documents and fragments to elements.

The paper's setting is a web server's document space; offline, we model it
as an explicit mapping from URIs to parsed documents.  Fragments are
resolved with the XPointer processor, closing the XLink+XPointer loop the
paper describes ("XLink determines the document to access and XPointer
determines the exact point in the document").
"""

from __future__ import annotations

import posixpath

from repro.xmlcore.dom import Document, Element
from repro.xmlcore.parser import parse
from repro.xpointer import resolve_all

from .errors import XLinkResolutionError
from .model import UriReference


def resolve_uri(base: str, reference: str) -> str:
    """Resolve a relative *reference* against the document URI *base*.

    Covers the relative-path cases a linkbase uses (sibling files,
    subdirectories, ``..``); absolute URIs and rooted paths pass through.
    """
    if not reference:
        return base
    if "://" in reference or reference.startswith("/"):
        return reference
    directory = posixpath.dirname(base)
    joined = posixpath.join(directory, reference) if directory else reference
    return posixpath.normpath(joined)


class UriSpace:
    """An in-memory document space addressable by URI."""

    def __init__(self) -> None:
        self._documents: dict[str, Document] = {}

    def add(self, uri: str, document: Document | str) -> Document:
        """Register a document (parsed or as XML text) under *uri*."""
        if isinstance(document, str):
            document = parse(document)
        self._documents[uri] = document
        return document

    def __contains__(self, uri: str) -> bool:
        return uri in self._documents

    def uris(self) -> list[str]:
        """All registered URIs, sorted."""
        return sorted(self._documents)

    def document(self, uri: str, *, base: str | None = None) -> Document:
        """The document at *uri* (resolved against *base* when relative)."""
        resolved = resolve_uri(base, uri) if base is not None else uri
        try:
            return self._documents[resolved]
        except KeyError:
            raise XLinkResolutionError(
                f"no document registered at {resolved!r} "
                f"(known: {', '.join(self.uris()) or 'none'})"
            )

    def resolve(
        self, reference: UriReference | str, *, base: str | None = None
    ) -> tuple[Document, list[Element]]:
        """Resolve a URI reference to its document and pointed-to elements.

        Returns the document and the elements its fragment identifies (the
        whole root element when there is no fragment).
        """
        if isinstance(reference, str):
            reference = UriReference.parse(reference)
        uri = reference.uri or (base if base is not None else "")
        if reference.uri:
            document = self.document(uri, base=base)
        elif base is not None:
            document = self.document(base)
        else:
            raise XLinkResolutionError(
                f"cannot resolve same-document reference {reference} without a base"
            )
        if reference.fragment is None:
            return document, [document.root_element]
        return document, resolve_all(document, reference.fragment)

    def resolve_element(
        self, reference: UriReference | str, *, base: str | None = None
    ) -> Element:
        """Like :meth:`resolve` but demands exactly one element."""
        document, elements = self.resolve(reference, base=base)
        if not elements:
            raise XLinkResolutionError(f"{reference} identifies nothing")
        if len(elements) > 1:
            raise XLinkResolutionError(
                f"{reference} is ambiguous ({len(elements)} elements)"
            )
        return elements[0]
