"""The XLink global attributes: names, value enumerations, accessors.

Everything XLink says about an element travels in attributes from the
``http://www.w3.org/1999/xlink`` namespace; this module is the single place
that knows their names and legal values.
"""

from __future__ import annotations

from enum import Enum

from repro.xmlcore.dom import Element
from repro.xmlcore.names import XLINK_NAMESPACE, QName

from .errors import XLinkSyntaxError

TYPE = QName(XLINK_NAMESPACE, "type")
HREF = QName(XLINK_NAMESPACE, "href")
ROLE = QName(XLINK_NAMESPACE, "role")
ARCROLE = QName(XLINK_NAMESPACE, "arcrole")
TITLE = QName(XLINK_NAMESPACE, "title")
SHOW = QName(XLINK_NAMESPACE, "show")
ACTUATE = QName(XLINK_NAMESPACE, "actuate")
LABEL = QName(XLINK_NAMESPACE, "label")
FROM = QName(XLINK_NAMESPACE, "from")
TO = QName(XLINK_NAMESPACE, "to")

#: Arc role marking a link as a pointer to another linkbase (XLink §4.4).
LINKBASE_ARCROLE = "http://www.w3.org/1999/xlink/properties/linkbase"


class XLinkType(str, Enum):
    """Legal values of ``xlink:type``."""

    SIMPLE = "simple"
    EXTENDED = "extended"
    LOCATOR = "locator"
    ARC = "arc"
    RESOURCE = "resource"
    TITLE = "title"
    NONE = "none"


class Show(str, Enum):
    """Legal values of ``xlink:show`` (traversal presentation)."""

    NEW = "new"
    REPLACE = "replace"
    EMBED = "embed"
    OTHER = "other"
    NONE = "none"


class Actuate(str, Enum):
    """Legal values of ``xlink:actuate`` (traversal timing)."""

    ON_LOAD = "onLoad"
    ON_REQUEST = "onRequest"
    OTHER = "other"
    NONE = "none"


def xlink_type(element: Element) -> XLinkType | None:
    """The element's ``xlink:type``, or None when it has none."""
    value = element.get(TYPE)
    if value is None:
        return None
    try:
        return XLinkType(value)
    except ValueError:
        raise XLinkSyntaxError(
            f"illegal xlink:type value {value!r} on <{element.name.clark()}>"
        )


def parse_show(element: Element) -> Show | None:
    """The element's ``xlink:show``, validated, or None."""
    value = element.get(SHOW)
    if value is None:
        return None
    try:
        return Show(value)
    except ValueError:
        raise XLinkSyntaxError(f"illegal xlink:show value {value!r}")


def parse_actuate(element: Element) -> Actuate | None:
    """The element's ``xlink:actuate``, validated, or None."""
    value = element.get(ACTUATE)
    if value is None:
        return None
    try:
        return Actuate(value)
    except ValueError:
        raise XLinkSyntaxError(f"illegal xlink:actuate value {value!r}")


def require_ncname_label(value: str, what: str) -> str:
    """Labels, from and to must be NCNames (XLink §5.1.3)."""
    from repro.xmlcore.names import is_valid_ncname

    if not is_valid_ncname(value):
        raise XLinkSyntaxError(f"{what} must be an NCName, got {value!r}")
    return value
