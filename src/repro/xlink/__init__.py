"""XLink 1.0: simple and extended links, linkbases, traversal graphs.

The paper's "first stage to separate navigation" is exactly this package:
data documents stay link-free while a linkbase (Figure 9's ``links.xml``)
declares locators over them and arcs between them::

    from repro.xlink import UriSpace, LinkbaseSet

    space = UriSpace()
    space.add("picasso.xml", "<painter id='picasso'>...</painter>")
    space.add("links.xml", LINKBASE_XML)

    linkbases = LinkbaseSet(space)
    linkbases.load("links.xml")
    graph = linkbases.graph()
    graph.outgoing("picasso.xml")    # -> traversals defined in links.xml
"""

from .attributes import (
    ACTUATE,
    ARCROLE,
    FROM,
    HREF,
    LABEL,
    LINKBASE_ARCROLE,
    ROLE,
    SHOW,
    TITLE,
    TO,
    TYPE,
    Actuate,
    Show,
    XLinkType,
    xlink_type,
)
from .errors import XLinkError, XLinkResolutionError, XLinkSyntaxError
from .linkbase import Linkbase, LinkbaseSet
from .model import (
    Arc,
    ExtendedLink,
    Locator,
    Resource,
    SimpleLink,
    Traversal,
    UriReference,
)
from .parse import find_links, parse_extended_link, parse_simple_link
from .resolver import UriSpace, resolve_uri
from .traversal import LinkGraph, expand_arcs
from .validate import Issue, Severity, assert_valid, validate_link, validate_links

__all__ = [
    "ACTUATE",
    "ARCROLE",
    "Actuate",
    "Arc",
    "ExtendedLink",
    "FROM",
    "HREF",
    "Issue",
    "LABEL",
    "LINKBASE_ARCROLE",
    "LinkGraph",
    "Linkbase",
    "LinkbaseSet",
    "Locator",
    "ROLE",
    "Resource",
    "SHOW",
    "Severity",
    "Show",
    "SimpleLink",
    "TITLE",
    "TO",
    "TYPE",
    "Traversal",
    "UriReference",
    "UriSpace",
    "XLinkError",
    "XLinkResolutionError",
    "XLinkSyntaxError",
    "XLinkType",
    "assert_valid",
    "expand_arcs",
    "find_links",
    "parse_extended_link",
    "parse_simple_link",
    "resolve_uri",
    "validate_link",
    "validate_links",
    "xlink_type",
]
