"""The XLink 1.0 data model.

Extended links are the paper's vehicle for separating navigation: a
``links.xml`` linkbase holds :class:`ExtendedLink` elements whose
:class:`Locator` children point at the data documents and whose
:class:`Arc` children say which traversals exist.  Simple links model the
inline ``<a href>`` case the tangled baseline uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlcore.dom import Element

from .attributes import Actuate, Show


@dataclass(frozen=True, slots=True)
class UriReference:
    """An ``xlink:href`` value split into document URI and fragment pointer."""

    uri: str
    fragment: str | None = None

    @classmethod
    def parse(cls, href: str) -> "UriReference":
        base, _, fragment = href.partition("#")
        return cls(base, fragment or None)

    def __str__(self) -> str:
        if self.fragment is None:
            return self.uri
        return f"{self.uri}#{self.fragment}"


@dataclass(frozen=True, slots=True)
class SimpleLink:
    """An ``xlink:type="simple"`` element: one outbound arc, inline start."""

    href: UriReference
    role: str | None = None
    arcrole: str | None = None
    title: str | None = None
    show: Show | None = None
    actuate: Actuate | None = None
    element: Element | None = field(default=None, compare=False)


@dataclass(frozen=True, slots=True)
class Locator:
    """A remote resource participating in an extended link."""

    href: UriReference
    label: str | None = None
    role: str | None = None
    title: str | None = None
    element: Element | None = field(default=None, compare=False)


@dataclass(frozen=True, slots=True)
class Resource:
    """A local (inline) resource participating in an extended link."""

    label: str | None = None
    role: str | None = None
    title: str | None = None
    element: Element | None = field(default=None, compare=False)


@dataclass(frozen=True, slots=True)
class Arc:
    """A traversal rule between labelled participants.

    Per XLink §5.1.3, a missing ``from`` (or ``to``) stands for *every*
    labelled participant, so one arc element can denote many traversals.
    """

    from_label: str | None = None
    to_label: str | None = None
    arcrole: str | None = None
    title: str | None = None
    show: Show | None = None
    actuate: Actuate | None = None
    element: Element | None = field(default=None, compare=False)


@dataclass(frozen=True, slots=True)
class ExtendedLink:
    """An ``xlink:type="extended"`` element with its participants and arcs."""

    role: str | None = None
    title: str | None = None
    locators: tuple[Locator, ...] = field(default=())
    resources: tuple[Resource, ...] = field(default=())
    arcs: tuple[Arc, ...] = field(default=())
    element: Element | None = field(default=None, compare=False)

    def participants(self) -> tuple[Locator | Resource, ...]:
        """All labelled and unlabelled participants, locators first."""
        return self.locators + self.resources

    def labels(self) -> set[str]:
        """The set of labels defined by this link's participants."""
        return {
            p.label for p in self.participants() if p.label is not None
        }

    def participants_for_label(self, label: str | None) -> list[Locator | Resource]:
        """Participants an arc endpoint denotes: all when *label* is None."""
        if label is None:
            return list(self.participants())
        return [p for p in self.participants() if p.label == label]


@dataclass(frozen=True, slots=True)
class Traversal:
    """One concrete traversal: an arc applied to a (start, end) pair."""

    start: Locator | Resource
    end: Locator | Resource
    arc: Arc
    link: ExtendedLink

    @property
    def arcrole(self) -> str | None:
        return self.arc.arcrole

    def describe(self) -> str:
        """Human-readable one-liner used by examples and error messages."""

        def side(p: Locator | Resource) -> str:
            if isinstance(p, Locator):
                return str(p.href)
            return f"local:{p.label or '?'}"

        role = f" [{self.arc.arcrole}]" if self.arc.arcrole else ""
        return f"{side(self.start)} -> {side(self.end)}{role}"
