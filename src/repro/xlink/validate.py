"""Structural validation of XLink usage.

:func:`validate_link` reports spec violations and suspicious constructs as
:class:`Issue` records instead of raising, so authoring tools (and our
tests) can show everything wrong with a linkbase at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .model import ExtendedLink, SimpleLink


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Issue:
    severity: Severity
    message: str

    def __str__(self) -> str:
        return f"{self.severity.value}: {self.message}"


def validate_link(link: SimpleLink | ExtendedLink) -> list[Issue]:
    """All issues found in one link."""
    if isinstance(link, SimpleLink):
        return _validate_simple(link)
    return _validate_extended(link)


def validate_links(links: list[SimpleLink | ExtendedLink]) -> list[Issue]:
    """All issues across *links*."""
    issues: list[Issue] = []
    for link in links:
        issues.extend(validate_link(link))
    return issues


def _validate_simple(link: SimpleLink) -> list[Issue]:
    issues: list[Issue] = []
    if not link.href.uri and link.href.fragment is None:
        issues.append(Issue(Severity.ERROR, "simple link has an empty href"))
    return issues


def _validate_extended(link: ExtendedLink) -> list[Issue]:
    issues: list[Issue] = []
    labels = link.labels()

    # Arcs must reference labels that exist (XLink 5.1.3).
    for arc in link.arcs:
        for side, label in (("from", arc.from_label), ("to", arc.to_label)):
            if label is not None and label not in labels:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        f"arc xlink:{side}={label!r} matches no participant label",
                    )
                )

    # Duplicate from/to pairs: "it is an error to have more than one arc
    # ... with the same pair" (XLink 5.1.3).
    seen: set[tuple[str | None, str | None]] = set()
    for arc in link.arcs:
        pair = (arc.from_label, arc.to_label)
        if pair in seen:
            issues.append(
                Issue(
                    Severity.ERROR,
                    f"duplicate arc from={pair[0]!r} to={pair[1]!r}",
                )
            )
        seen.add(pair)

    # Participants that no arc can ever reach or leave are probably a typo.
    if link.arcs:
        used: set[str | None] = set()
        for arc in link.arcs:
            used.add(arc.from_label)
            used.add(arc.to_label)
        if None not in used:
            for participant in link.participants():
                if participant.label is None:
                    issues.append(
                        Issue(
                            Severity.WARNING,
                            "unlabelled participant can never be traversed "
                            "(all arcs name explicit labels)",
                        )
                    )
                elif participant.label not in used:
                    issues.append(
                        Issue(
                            Severity.WARNING,
                            f"participant label {participant.label!r} is used by no arc",
                        )
                    )
    elif link.participants():
        issues.append(
            Issue(Severity.WARNING, "extended link defines participants but no arcs")
        )

    if not link.participants():
        issues.append(Issue(Severity.WARNING, "extended link has no participants"))
    return issues


def assert_valid(link: SimpleLink | ExtendedLink) -> None:
    """Raise :class:`ValueError` listing any error-severity issues."""
    errors = [i for i in validate_link(link) if i.severity is Severity.ERROR]
    if errors:
        raise ValueError("; ".join(str(i) for i in errors))
