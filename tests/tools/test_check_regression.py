"""The benchmark regression gate's comparison rules."""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def payload(python="3.11.7", **speedups):
    return {"python": python, "speedup_vs_seed": speedups}


class TestCheck:
    def test_passes_when_series_hold(self, gate):
        baseline = payload(static_before=3.0)
        current = payload(static_before=2.9)
        assert gate.check(baseline, current, 0.15) == []

    def test_fails_on_a_real_drop(self, gate):
        baseline = payload(static_before=3.0)
        current = payload(static_before=2.0)
        (failure,) = gate.check(baseline, current, 0.15)
        assert "static_before" in failure

    def test_fails_when_a_series_disappears(self, gate):
        baseline = payload(static_before=3.0, field_get_codegen=2.5)
        current = payload(static_before=3.0)
        (failure,) = gate.check(baseline, current, 0.15)
        assert "field_get_codegen" in failure and "disappeared" in failure

    def test_newly_added_series_never_fail(self, gate):
        """Present-in-new, absent-in-baseline must not trip the gate."""
        baseline = payload(static_before=3.0)
        current = payload(static_before=3.0, field_get_codegen=0.01)
        assert gate.check(baseline, current, 0.15) == []
        assert gate.new_series(baseline, current) == ["field_get_codegen"]

    def test_tolerance_is_a_fraction_of_committed(self, gate):
        baseline = payload(deploy_batch=2.0)
        barely_ok = payload(deploy_batch=2.0 * 0.86)
        too_low = payload(deploy_batch=2.0 * 0.84)
        assert gate.check(baseline, barely_ok, 0.15) == []
        assert gate.check(baseline, too_low, 0.15) != []


class TestInterpreterGatedSeries:
    """Series that only exist on newer interpreters (monitor tier)."""

    def test_absence_below_the_floor_is_informational(self, gate):
        baseline = payload(static_before=3.0, static_before_monitor=5.0)
        baseline["requires_python"] = {"static_before_monitor": "3.12"}
        current = payload(static_before=3.0)  # a 3.11 run cannot measure it
        assert gate.check(baseline, current, 0.15) == []
        assert gate.interpreter_gated_series(baseline, current) == {
            "static_before_monitor": "3.12"
        }

    def test_absence_on_a_supporting_interpreter_still_fails(self, gate):
        baseline = payload(
            python="3.13.1", static_before=3.0, static_before_monitor=5.0
        )
        baseline["requires_python"] = {"static_before_monitor": "3.12"}
        current = payload(python="3.13.1", static_before=3.0)
        (failure,) = gate.check(baseline, current, 0.15)
        assert "static_before_monitor" in failure and "disappeared" in failure
        assert gate.interpreter_gated_series(baseline, current) == {}

    def test_present_series_gate_normally_despite_floor(self, gate):
        baseline = payload(
            python="3.13.1", static_before_monitor=5.0
        )
        baseline["requires_python"] = {"static_before_monitor": "3.12"}
        current = payload(python="3.13.1", static_before_monitor=1.0)
        (failure,) = gate.check(baseline, current, 0.15)
        assert "static_before_monitor" in failure

    def test_requirement_read_from_either_payload(self, gate):
        # The floor may be recorded by the (newer) run that produced the
        # committed series rather than the current one.
        baseline = payload(static_before_monitor=5.0)
        current = payload(python="3.11.7")
        current["requires_python"] = {"static_before_monitor": "3.12"}
        assert gate.check(baseline, current, 0.15) == []

    def test_gated_rows_render_as_skipped(self, gate):
        baseline = payload(x=3.0, x_monitor=5.0)
        baseline["requires_python"] = {"x_monitor": "3.12"}
        current = payload(x=3.0)
        rows = {row[0]: row for row in gate.delta_rows(baseline, current)}
        gated = rows["speedup_vs_seed.x_monitor"]
        assert gated[2] == "—"
        assert gated[3] == "needs 3.12+" and gated[4] == "skipped"

    def test_main_notes_gated_series(self, gate, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline = payload(x=3.0, x_monitor=5.0)
        baseline["requires_python"] = {"x_monitor": "3.12"}
        baseline_path.write_text(json.dumps(baseline))
        current_path.write_text(json.dumps(payload(x=3.0)))
        assert (
            gate.main(
                ["--baseline", str(baseline_path), "--current", str(current_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "x_monitor" in out and "needs 3.12+" in out and "skipped" in out


class TestMain:
    def test_cross_interpreter_comparison_is_skipped(self, gate, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline_path.write_text(json.dumps(payload(python="3.10.2", x=3.0)))
        current_path.write_text(json.dumps(payload(python="3.11.7", x=0.1)))
        assert (
            gate.main(
                ["--baseline", str(baseline_path), "--current", str(current_path)]
            )
            == 0
        )
        assert "SKIPPED" in capsys.readouterr().err

    def test_main_reports_new_series(self, gate, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline_path.write_text(json.dumps(payload(x=3.0)))
        current_path.write_text(json.dumps(payload(x=3.0, brand_new=9.9)))
        assert (
            gate.main(
                ["--baseline", str(baseline_path), "--current", str(current_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "brand_new" in out and "not gated" in out

    def test_main_fails_on_regression(self, gate, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline_path.write_text(json.dumps(payload(x=3.0)))
        current_path.write_text(json.dumps(payload(x=1.0)))
        assert (
            gate.main(
                ["--baseline", str(baseline_path), "--current", str(current_path)]
            )
            == 1
        )
        assert "FAILED" in capsys.readouterr().err


class TestDeltaTable:
    def test_rows_cover_speedups_and_raw_results(self, gate):
        baseline = {
            "speedup_vs_seed": {"static_before": 3.0},
            "results_ns": {"call_plain_ns": 24.0},
        }
        current = {
            "speedup_vs_seed": {"static_before": 2.7},
            "results_ns": {"call_plain_ns": 30.0, "serve_page_ns": 150000.0},
        }
        rows = {row[0]: row for row in gate.delta_rows(baseline, current)}
        speedup = rows["speedup_vs_seed.static_before"]
        assert speedup[1] == "3x" and speedup[2] == "2.7x"
        assert speedup[3] == "-10.0%" and speedup[4] == "yes"
        raw = rows["results_ns.call_plain_ns"]
        assert raw[3] == "+25.0%" and raw[4] == "no"
        # A freshly added series is reported, never gated.
        new = rows["results_ns.serve_page_ns"]
        assert new[1] == "—" and new[3] == "new" and new[4] == "not yet"

    def test_disappeared_series_show_gone(self, gate):
        baseline = {"speedup_vs_seed": {"old": 2.0}, "results_ns": {}}
        current = {"speedup_vs_seed": {}, "results_ns": {}}
        (row,) = gate.delta_rows(baseline, current)
        assert row[0] == "speedup_vs_seed.old" and row[3] == "gone"

    def test_plain_and_markdown_renderings(self, gate):
        rows = gate.delta_rows(
            {"speedup_vs_seed": {"x": 2.0}},
            {"speedup_vs_seed": {"x": 2.1}},
        )
        text = gate.format_delta_table(rows)
        assert text.splitlines()[0].startswith("series")
        assert "speedup_vs_seed.x" in text and "+5.0%" in text
        markdown = gate.format_delta_markdown(rows)
        assert markdown.startswith("### Weaver hot-path deltas")
        assert "| speedup_vs_seed.x | 2x | 2.1x | +5.0% | yes |" in markdown

    def test_main_prints_table_and_writes_summary(self, gate, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        summary_path = tmp_path / "summary.md"
        baseline_path.write_text(json.dumps(payload(x=3.0)))
        current_path.write_text(json.dumps(payload(x=3.0, fresh=5.0)))
        assert (
            gate.main(
                [
                    "--baseline",
                    str(baseline_path),
                    "--current",
                    str(current_path),
                    "--summary",
                    str(summary_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup_vs_seed.x" in out
        summary = summary_path.read_text()
        assert "| speedup_vs_seed.fresh | — | 5x | new | not yet |" in summary

    def test_summary_defaults_to_github_env(self, gate, tmp_path, monkeypatch):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        summary_path = tmp_path / "gh_summary.md"
        summary_path.write_text("existing\n")
        baseline_path.write_text(json.dumps(payload(x=3.0)))
        current_path.write_text(json.dumps(payload(x=3.0)))
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary_path))
        assert (
            gate.main(
                ["--baseline", str(baseline_path), "--current", str(current_path)]
            )
            == 0
        )
        summary = summary_path.read_text()
        assert summary.startswith("existing\n")  # appended, not clobbered
        assert "speedup_vs_seed.x" in summary
