"""Property-based tests: pointcut boolean algebra laws.

The pointcut combinators must behave like a boolean algebra over join
point shadows — otherwise composing navigation pointcuts out of smaller
ones (as the weaving layer does) would be unsound.
"""

from hypothesis import given, settings, strategies as st

from repro.aop import JoinPointKind, execution, field_get, field_set, within


class Node:
    pass


class PaintingNode(Node):
    pass


class Index:
    pass


CLASSES = [Node, PaintingNode, Index]
NAMES = ["render", "as_html", "next", "position"]
KINDS = list(JoinPointKind)

shadows = st.tuples(
    st.sampled_from(CLASSES), st.sampled_from(NAMES), st.sampled_from(KINDS)
)

atomic = st.one_of(
    st.builds(execution, st.sampled_from(["Node.*", "*.render", "Index.*", "*.as_*"])),
    st.builds(field_get, st.sampled_from(["Node.position", "*.position"])),
    st.builds(field_set, st.sampled_from(["Node.position", "*.*"])),
    st.builds(within, st.sampled_from(["Node", "Painting*", "Index"])),
)

pointcuts = st.recursive(
    atomic,
    lambda children: st.one_of(
        st.builds(lambda a, b: a & b, children, children),
        st.builds(lambda a, b: a | b, children, children),
        st.builds(lambda a: ~a, children),
    ),
    max_leaves=8,
)


@settings(max_examples=300, deadline=None)
@given(pointcuts, shadows)
def test_double_negation(pc, shadow):
    cls, name, kind = shadow
    assert (~~pc).matches_shadow(cls, name, kind) == pc.matches_shadow(cls, name, kind)


@settings(max_examples=300, deadline=None)
@given(pointcuts, pointcuts, shadows)
def test_and_is_conjunction(a, b, shadow):
    cls, name, kind = shadow
    assert (a & b).matches_shadow(cls, name, kind) == (
        a.matches_shadow(cls, name, kind) and b.matches_shadow(cls, name, kind)
    )


@settings(max_examples=300, deadline=None)
@given(pointcuts, pointcuts, shadows)
def test_or_is_disjunction(a, b, shadow):
    cls, name, kind = shadow
    assert (a | b).matches_shadow(cls, name, kind) == (
        a.matches_shadow(cls, name, kind) or b.matches_shadow(cls, name, kind)
    )


@settings(max_examples=300, deadline=None)
@given(pointcuts, pointcuts, shadows)
def test_de_morgan(a, b, shadow):
    cls, name, kind = shadow
    lhs = ~(a | b)
    rhs = ~a & ~b
    assert lhs.matches_shadow(cls, name, kind) == rhs.matches_shadow(cls, name, kind)


@settings(max_examples=300, deadline=None)
@given(pointcuts, shadows)
def test_static_pointcuts_have_no_residue(pc, shadow):
    # None of the atoms above carry dynamic tests, so no composition may.
    assert not pc.has_dynamic_test
    assert pc.cflow_inner_pointcuts() == []


@settings(max_examples=300, deadline=None)
@given(pointcuts, shadows)
def test_excluded_middle_on_static_pointcuts(pc, shadow):
    cls, name, kind = shadow
    assert (pc | ~pc).matches_shadow(cls, name, kind)
    assert not (pc & ~pc).matches_shadow(cls, name, kind)
