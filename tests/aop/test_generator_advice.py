"""Generator-coroutine advice: the aspectlib protocol, on every tier.

One generator body plays before/around/after at once: ``yield proceed``
runs the original with the join point's arguments, ``yield
proceed(args...)`` runs it with altered ones, ``yield return_(value)``
finishes the advised call, and an exception from the original surfaces
*at the yield*, so one ``try``/``except`` around it expresses retry
loops and exception translation that the split advice kinds need three
cooperating bodies for.

The conformance matrix below is aspectlib's own (``test_aspect_return``,
``test_aspect_raise``, ``test_aspect_return_but_call``, ...), run
against all three interception tiers.  Generator advice needs a wrapper
frame to drive the send/throw protocol, so under the monitor tier it is
an *obstacle*: the planner must route it to a codegen wrapper rather
than drop it — which the matrix verifies by just passing.
"""

import sys

import pytest

from repro.aop import (
    AopError,
    Aspect,
    WeaverRuntime,
    after_throwing,
    around,
    before,
    execution,
    generator,
    proceed,
    return_,
)
from repro.aop.advice import drive_generator

MONITOR_TIER = pytest.param(
    "monitor",
    marks=pytest.mark.skipif(
        sys.version_info < (3, 12),
        reason="monitor tier needs sys.monitoring (CPython 3.12+)",
    ),
)


@pytest.fixture(autouse=True, params=["codegen", "generic", MONITOR_TIER])
def _wrapper_tier(request, monkeypatch):
    monkeypatch.setenv("REPRO_AOP_CODEGEN", "0" if request.param == "generic" else "1")
    monkeypatch.setenv("REPRO_AOP_MONITOR", "1" if request.param == "monitor" else "0")
    return request.param


def fresh_module():
    class Module:
        def hello(self, arg):
            self.calls.append(arg)
            return arg

        def boom(self):
            raise ZeroDivisionError("original exploded")

        calls: list

    Module.calls = []

    def reset():
        Module.calls = []

    Module.reset = staticmethod(reset)
    return Module


class TestConformance:
    """aspectlib's advice-protocol suite, verbatim semantics."""

    def test_aspect_bad_rejected_at_decoration(self):
        with pytest.raises(AopError):

            class Bad(Aspect):
                @generator(execution("Module.hello"))
                def not_a_generator(self, jp):
                    return "stuff"

    def test_non_generator_advisor_at_drive_time(self):
        with pytest.raises(RuntimeError):
            drive_generator("not-a-generator", None)

    def test_aspect_return(self):
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                yield return_

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            assert Module().hello("first") is None
        assert Module.calls == []  # the original never ran
        assert Module().hello("first") == "first"

    def test_aspect_return_value(self):
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                yield return_("stuff")

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            assert Module().hello("first") == "stuff"
        assert Module.calls == []

    def test_aspect_raise(self):
        Module = fresh_module()
        seen = []

        class A(Aspect):
            @generator(execution("Module.boom"))
            def advice_body(self, jp):
                try:
                    yield proceed
                except ZeroDivisionError as exc:
                    seen.append(exc)
                yield return_("stuff")

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            assert Module().boom() == "stuff"
        assert len(seen) == 1
        with pytest.raises(ZeroDivisionError):
            Module().boom()

    def test_aspect_raise_from_aspect(self):
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                raise RuntimeError("aspect refused")
                yield  # pragma: no cover - makes this a generator function

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            with pytest.raises(RuntimeError, match="aspect refused"):
                Module().hello("first")
        assert Module.calls == []  # the original never ran

    def test_aspect_return_but_call(self):
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                assert "first" == (yield proceed)
                assert "second" == (yield proceed("second"))
                yield return_("stuff")

        rt = WeaverRuntime("t")
        instance = Module()
        with rt.weave(Module, A()):
            assert instance.hello("first") == "stuff"
        assert Module.calls == ["first", "second"]

    def test_bare_proceed_result_becomes_return_value(self):
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                result = yield proceed
                yield return_(result.upper())

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            assert Module().hello("first") == "FIRST"

    def test_generator_ends_after_proceed_returns_result(self):
        # StopIteration right after send(result): the advised call
        # returns the original's result unchanged.
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                yield proceed

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            assert Module().hello("first") == "first"
        assert Module.calls == ["first"]

    def test_exception_translation(self):
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.boom"))
            def advice_body(self, jp):
                try:
                    yield proceed
                except ZeroDivisionError as exc:
                    raise LookupError("translated") from exc

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            with pytest.raises(LookupError, match="translated"):
                Module().boom()

    def test_garbage_yield_raises(self):
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                yield "garbage"

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            with pytest.raises(RuntimeError, match="yielded"):
                Module().hello("first")


class TestRetryAndStacking:
    def test_retry_loop_in_one_body(self):
        class Flaky:
            failures = 2

            def fetch(self):
                if Flaky.failures:
                    Flaky.failures -= 1
                    raise ConnectionError("transient")
                return "payload"

        attempts = []

        class Retry(Aspect):
            @generator(execution("Flaky.fetch"))
            def retry(self, jp):
                for attempt in range(3):
                    attempts.append(attempt)
                    try:
                        result = yield proceed
                    except ConnectionError:
                        continue
                    yield return_(result)

        rt = WeaverRuntime("t")
        with rt.weave(Flaky, Retry()):
            assert Flaky().fetch() == "payload"
        assert attempts == [0, 1, 2]

    def test_generator_stacks_with_split_kinds(self):
        Module = fresh_module()
        order = []

        class Split(Aspect):
            @before(execution("Module.hello"))
            def first(self, jp):
                order.append("before")

            @generator(execution("Module.hello"), order=1)
            def second(self, jp):
                order.append("gen-in")
                result = yield proceed
                order.append("gen-out")
                yield return_(result)

            @around(execution("Module.hello"), order=2)
            def third(self, jp):
                order.append("around-in")
                result = jp.proceed()
                order.append("around-out")
                return result

        rt = WeaverRuntime("t")
        with rt.weave(Module, Split()):
            assert Module().hello("x") == "x"
        assert order == ["before", "gen-in", "around-in", "around-out", "gen-out"]

    def test_parity_with_equivalent_split_stack(self):
        """The one-body generator == the around+after_throwing pair."""

        def run(aspect_factory):
            Module = fresh_module()
            log = []
            rt = WeaverRuntime("t")
            with rt.weave(Module, aspect_factory(log)):
                ok = Module().hello("first")
                try:
                    Module().boom()
                    raised = None
                except Exception as exc:  # noqa: BLE001 - parity capture
                    raised = type(exc).__name__
            return ok, raised, log, Module.calls

        def gen_aspect(log):
            class G(Aspect):
                @generator(execution("Module.*"))
                def body(self, jp):
                    log.append(f"in:{jp.name}")
                    try:
                        result = yield proceed
                    except ZeroDivisionError:
                        log.append(f"err:{jp.name}")
                        raise LookupError("translated")
                    log.append(f"out:{jp.name}")
                    yield return_(result)

            return G()

        def split_aspect(log):
            class S(Aspect):
                @around(execution("Module.*"))
                def body(self, jp):
                    log.append(f"in:{jp.name}")
                    try:
                        result = jp.proceed()
                    except ZeroDivisionError:
                        log.append(f"err:{jp.name}")
                        raise LookupError("translated")
                    log.append(f"out:{jp.name}")
                    return result

            return S()

        assert run(gen_aspect) == run(split_aspect)


class TestCodegenInlining:
    def test_drive_loop_is_inlined(self, _wrapper_tier):
        if _wrapper_tier == "generic":
            pytest.skip("generated sources exist only under codegen")
        Module = fresh_module()

        class A(Aspect):
            @generator(execution("Module.hello"))
            def advice_body(self, jp):
                result = yield proceed
                yield return_(result)

        rt = WeaverRuntime("t")
        with rt.weave(Module, A()):
            source = Module.hello.__codegen_source__
            assert "_gen.send" in source
            assert "_gen.throw" in source
            assert "StopIteration" in source
            # behavior through the generated drive loop
            assert Module().hello("x") == "x"

    def test_fluent_builder_generator(self):
        Module = fresh_module()
        from repro.aop import AspectBuilder

        def body(jp):
            result = yield proceed
            yield return_((result, "fluent"))

        aspect = AspectBuilder("Fluent").generator(
            execution("Module.hello"), body
        ).build()
        rt = WeaverRuntime("t")
        with rt.weave(Module, aspect):
            assert Module().hello("x") == ("x", "fluent")

    def test_after_throwing_still_sees_translated_exception(self):
        Module = fresh_module()
        seen = []

        class Observe(Aspect):
            @after_throwing(execution("Module.boom"))
            def saw(self, jp):
                seen.append(type(jp.result).__name__)

        class Translate(Aspect):
            @generator(execution("Module.boom"), order=1)
            def body(self, jp):
                try:
                    yield proceed
                except ZeroDivisionError:
                    raise KeyError("translated")

        rt = WeaverRuntime("t")
        # Later deployments wrap earlier ones: the observer must deploy
        # second to sit outside the translating generator.
        with rt.weave(Module, Translate()):
            with rt.weave(Module, Observe()):
                with pytest.raises(KeyError):
                    Module().boom()
        assert seen == ["KeyError"]
