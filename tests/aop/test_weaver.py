"""Tests for the runtime weaver: advice kinds, ordering, fields, undeploy."""

import pytest


@pytest.fixture(autouse=True)
def _wrapper_tiers_only(monkeypatch):
    """Pin the monitor tier off: this file asserts installed-wrapper
    mechanics (member identity, LIFO undeploy constraints) that the
    zero-wrapper monitor tier bypasses; ``test_monitor.py`` and the
    ``test_compiled_chain.py`` three-tier matrix cover its semantics."""
    monkeypatch.setenv("REPRO_AOP_MONITOR", "0")

from repro.aop import (
    Aspect,
    Introduction,
    IntroductionError,
    Weaver,
    WeavingError,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    deployed,
)


def fresh_classes():
    """Each test weaves into its own classes to avoid cross-test bleed."""

    class Account:
        def __init__(self, balance=0):
            self.balance = balance

        def deposit(self, amount):
            self.balance = self.balance + amount
            return self.balance

        def withdraw(self, amount):
            if amount > self.balance:
                raise ValueError("insufficient funds")
            self.balance = self.balance - amount
            return self.balance

    class Savings(Account):
        def deposit(self, amount):
            return super().deposit(amount)

    return Account, Savings


class TestAdviceKinds:
    def test_before_runs_first(self):
        Account, _ = fresh_classes()
        log = []

        class A(Aspect):
            @before("execution(Account.deposit)")
            def note(self, jp):
                log.append(("before", jp.args[0]))

        with deployed(A(), [Account]):
            Account().deposit(10)
        assert log == [("before", 10)]

    def test_after_returning_sees_result(self):
        Account, _ = fresh_classes()
        seen = []

        class A(Aspect):
            @after_returning("execution(Account.deposit)")
            def note(self, jp):
                seen.append(jp.result)

        with deployed(A(), [Account]):
            Account(5).deposit(10)
        assert seen == [15]

    def test_after_throwing_sees_exception(self):
        Account, _ = fresh_classes()
        seen = []

        class A(Aspect):
            @after_throwing("execution(Account.withdraw)")
            def note(self, jp):
                seen.append(type(jp.result).__name__)

        with deployed(A(), [Account]):
            with pytest.raises(ValueError):
                Account(0).withdraw(10)
        assert seen == ["ValueError"]

    def test_after_throwing_not_run_on_success(self):
        Account, _ = fresh_classes()
        seen = []

        class A(Aspect):
            @after_throwing("execution(Account.deposit)")
            def note(self, jp):
                seen.append("threw")

        with deployed(A(), [Account]):
            Account().deposit(1)
        assert seen == []

    def test_after_finally_runs_both_ways(self):
        Account, _ = fresh_classes()
        seen = []

        class A(Aspect):
            @after("execution(Account.*)")
            def note(self, jp):
                seen.append(jp.name)

        with deployed(A(), [Account]):
            account = Account(10)
            account.deposit(1)
            with pytest.raises(ValueError):
                account.withdraw(100)
        assert seen == ["deposit", "withdraw"]

    def test_around_can_replace_result(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @around("execution(Account.deposit)")
            def double(self, jp):
                return jp.proceed() * 2

        with deployed(A(), [Account]):
            assert Account(0).deposit(10) == 20

    def test_around_can_rewrite_arguments(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @around("execution(Account.deposit)")
            def cap(self, jp):
                (amount,) = jp.args
                return jp.proceed(min(amount, 100))

        with deployed(A(), [Account]):
            assert Account(0).deposit(1000) == 100

    def test_around_can_skip_proceed(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @around("execution(Account.withdraw)")
            def deny(self, jp):
                return "denied"

        with deployed(A(), [Account]):
            account = Account(100)
            assert account.withdraw(10) == "denied"
            assert account.balance == 100  # original never ran


class TestOrderingAndPrecedence:
    def test_declaration_order_within_one_aspect(self):
        Account, _ = fresh_classes()
        log = []

        class A(Aspect):
            @before("execution(Account.deposit)")
            def first(self, jp):
                log.append("first")

            @before("execution(Account.deposit)")
            def second(self, jp):
                log.append("second")

        with deployed(A(), [Account]):
            Account().deposit(1)
        assert log == ["first", "second"]

    def test_aspect_order_controls_precedence(self):
        Account, _ = fresh_classes()
        log = []

        def make(tag, order_value):
            class A(Aspect):
                order = order_value

                @around("execution(Account.deposit)")
                def wrap(self, jp, _tag=tag):
                    log.append(f"enter:{_tag}")
                    result = jp.proceed()
                    log.append(f"exit:{_tag}")
                    return result

            return A()

        weaver = Weaver()
        inner = weaver.deploy(make("inner", 20), [Account])
        outer = weaver.deploy(make("outer", 10), [Account])
        Account().deposit(1)
        weaver.undeploy(outer)
        weaver.undeploy(inner)
        # Separate deployments nest by deployment order (LIFO), each one
        # wrapping whatever was there before.
        assert log == ["enter:outer", "enter:inner", "exit:inner", "exit:outer"]

    def test_order_sorts_advice_within_one_deployment(self):
        Account, _ = fresh_classes()
        log = []

        class A(Aspect):
            @before("execution(Account.deposit)", order=5)
            def later(self, jp):
                log.append("later")

            @before("execution(Account.deposit)", order=-5)
            def earlier(self, jp):
                log.append("earlier")

        with deployed(A(), [Account]):
            Account().deposit(1)
        assert log == ["earlier", "later"]

    def test_after_advice_runs_in_reverse_order(self):
        Account, _ = fresh_classes()
        log = []

        class A(Aspect):
            @after_returning("execution(Account.deposit)", order=1)
            def outer(self, jp):
                log.append("outer")

            @after_returning("execution(Account.deposit)", order=2)
            def inner(self, jp):
                log.append("inner")

        with deployed(A(), [Account]):
            Account().deposit(1)
        assert log == ["inner", "outer"]


class TestInheritance:
    def test_subclass_instances_hit_base_pattern(self):
        Account, Savings = fresh_classes()
        log = []

        class A(Aspect):
            @before("execution(Account.deposit)")
            def note(self, jp):
                log.append(type(jp.target).__name__)

        with deployed(A(), [Account, Savings]):
            Savings().deposit(1)
        # Savings.deposit calls super().deposit(); both woven shadows fire
        # but each advice observes the Savings instance.
        assert log == ["Savings", "Savings"]

    def test_inherited_method_woven_as_override(self):
        Account, Savings = fresh_classes()
        log = []

        class A(Aspect):
            @before("execution(Savings.withdraw)")
            def note(self, jp):
                log.append("withdraw")

        with deployed(A(), [Savings]):
            Savings(10).withdraw(5)
            Account(10).withdraw(5)  # base class untouched
        assert log == ["withdraw"]
        assert "withdraw" not in Savings.__dict__  # restored after undeploy


class TestFields:
    def test_field_get_and_set_advice(self):
        Account, _ = fresh_classes()
        events = []

        class A(Aspect):
            @before("set(Account.balance)")
            def on_set(self, jp):
                events.append(("set", jp.value))

            @before("get(Account.balance)")
            def on_get(self, jp):
                events.append(("get", None))

        with deployed(A(), [Account], fields={"balance"}):
            account = Account(1)     # __init__ sets balance
            account.deposit(2)       # get + set + get (the return reads it)
        assert events == [("set", 1), ("get", None), ("set", 3), ("get", None)]

    def test_around_set_can_veto_by_rewriting(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @around("set(Account.balance)")
            def clamp(self, jp):
                return jp.proceed(max(jp.value, 0))

        with deployed(A(), [Account], fields={"balance"}):
            account = Account(5)
            account.balance = -10
            assert account.balance == 0

    def test_field_values_survive_undeploy(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @before("set(Account.balance)")
            def noop(self, jp):
                pass

        with deployed(A(), [Account], fields={"balance"}):
            account = Account(0)
            account.balance = 42
        assert account.balance == 42
        assert "balance" not in Account.__dict__

    def test_unmatched_fields_not_intercepted(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @before("set(Account.balance)")
            def noop(self, jp):
                pass

        with deployed(A(), [Account], fields={"balance", "unrelated"}):
            assert "unrelated" not in Account.__dict__


class TestIntroductions:
    def test_member_added_and_removed(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            def introductions(self):
                return [Introduction("Account", "as_anchor", lambda self: f"#acct")]

        with deployed(A(), [Account]):
            assert Account(0).as_anchor() == "#acct"
        assert not hasattr(Account, "as_anchor")

    def test_conflicting_introduction_rejected(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            def introductions(self):
                return [Introduction("Account", "deposit", lambda self: None)]

        with pytest.raises(IntroductionError):
            Weaver().deploy(A(), [Account])

    def test_replace_allows_override_and_restores(self):
        Account, _ = fresh_classes()
        original = Account.deposit

        class A(Aspect):
            def introductions(self):
                return [
                    Introduction(
                        "Account",
                        "deposit",
                        lambda self, amount: "replaced",
                        replace=True,
                    )
                ]

        with deployed(A(), [Account]):
            assert Account(0).deposit(1) == "replaced"
        assert Account.deposit is original


class TestDeploymentLifecycle:
    def test_undeploy_restores_exact_function(self):
        Account, _ = fresh_classes()
        original = Account.__dict__["deposit"]

        class A(Aspect):
            @before("execution(Account.deposit)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Account])
        assert Account.__dict__["deposit"] is not original
        weaver.undeploy(deployment)
        assert Account.__dict__["deposit"] is original

    def test_double_undeploy_is_idempotent(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @before("execution(Account.deposit)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Account])
        weaver.undeploy(deployment)
        weaver.undeploy(deployment)  # no error

    def test_out_of_order_undeploy_rejected(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @before("execution(Account.deposit)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        first = weaver.deploy(A(), [Account])
        weaver.deploy(A(), [Account])
        with pytest.raises(WeavingError):
            weaver.undeploy(first)

    def test_undeploy_all_unwinds_lifo(self):
        Account, _ = fresh_classes()
        original = Account.__dict__["deposit"]

        class A(Aspect):
            @before("execution(Account.deposit)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        weaver.deploy(A(), [Account])
        weaver.deploy(A(), [Account])
        weaver.undeploy_all()
        assert Account.__dict__["deposit"] is original
        assert weaver.deployments == []

    def test_matching_nothing_raises(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @before("execution(Ghost.nothing)")
            def noop(self, jp):
                pass

        with pytest.raises(WeavingError):
            Weaver().deploy(A(), [Account])

    def test_matching_nothing_tolerated_when_asked(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @before("execution(Ghost.nothing)")
            def noop(self, jp):
                pass

        deployment = Weaver().deploy(A(), [Account], require_match=False)
        assert deployment.members == []

    def test_aspect_without_advice_rejected(self):
        Account, _ = fresh_classes()

        class Empty(Aspect):
            pass

        with pytest.raises(Exception):
            Weaver().deploy(Empty(), [Account])

    def test_woven_signatures_reported(self):
        Account, _ = fresh_classes()

        class A(Aspect):
            @before("execution(Account.*)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Account])
        assert deployment.woven_signatures() == ["Account.deposit", "Account.withdraw"]
        weaver.undeploy_all()


class TestDynamicResidues:
    def test_cflow_limits_advice_to_nested_calls(self):
        log = []

        class Report:
            def summary(self):
                return self.line()

            def line(self):
                return "line"

        class A(Aspect):
            @before("execution(Report.line) && cflowbelow(execution(Report.summary))")
            def note(self, jp):
                log.append("nested")

        with deployed(A(), [Report]):
            report = Report()
            report.line()      # not within summary: no advice
            report.summary()   # line() within summary: advice
        assert log == ["nested"]

    def test_target_residue(self):
        Account, Savings = fresh_classes()
        log = []

        class A(Aspect):
            @before("execution(Account.deposit)", types={"Savings": Savings})
            def note(self, jp):
                log.append("any")

        class B(Aspect):
            @before(
                "execution(Account.deposit) && target(Savings)",
                types={"Savings": Savings},
            )
            def note(self, jp):
                log.append("savings-only")

        with deployed(A(), [Account]), deployed(B(), [Account]):
            Account().deposit(1)
        assert log == ["any"]


class TestDeclareError:
    def test_forbidden_shape_blocks_deployment(self):
        from repro.aop import declare_error

        Account, _ = fresh_classes()

        class Policy(Aspect):
            def declarations(self):
                return [
                    declare_error(
                        "execution(Account.withdraw)",
                        "withdrawals are forbidden in this build",
                    )
                ]

        with pytest.raises(WeavingError) as info:
            Weaver().deploy(Policy(), [Account])
        assert "forbidden" in str(info.value)
        assert "Account.withdraw" in str(info.value)

    def test_clean_targets_deploy_fine(self):
        from repro.aop import declare_error

        Account, _ = fresh_classes()

        class Policy(Aspect):
            def declarations(self):
                return [declare_error("execution(*.render_anchor)", "no inline nav")]

        weaver = Weaver()
        deployment = weaver.deploy(Policy(), [Account], require_match=False)
        weaver.undeploy(deployment)

    def test_declaration_only_aspect_is_valid(self):
        from repro.aop import declare_error

        Account, _ = fresh_classes()

        class Policy(Aspect):
            def declarations(self):
                return [declare_error("execution(*.nothing_here)", "x")]

        # validate() accepts an aspect with declarations but no advice.
        Policy().validate()
        Weaver().deploy(Policy(), [Account], require_match=False)
