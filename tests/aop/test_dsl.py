"""The fluent construction layer: Aspect.builder() and pointcut operators."""

import pytest

from repro.aop import (
    AopError,
    Aspect,
    FluentAspect,
    JoinPointKind,
    WeaverRuntime,
    WeavingError,
    execution,
    target,
    within,
)

EXEC = JoinPointKind.METHOD_EXECUTION


def fresh_node():
    class Node:
        def render(self):
            return "content"

        def as_html(self):
            return "<html>"

    return Node


class TestAspectBuilder:
    def test_before_and_after_without_subclassing(self):
        Node = fresh_node()
        log = []
        aspect = (
            Aspect.builder("Tracing")
            .before("execution(Node.render)", lambda jp: log.append("before"))
            .after("execution(Node.render)", lambda jp: log.append("after"))
            .build()
        )
        runtime = WeaverRuntime()
        with runtime.transaction([Node]) as tx:
            tx.add(aspect)
            assert Node().render() == "content"
            tx.undeploy()
        assert log == ["before", "after"]

    def test_around_advice_proceeds(self):
        Node = fresh_node()
        aspect = (
            Aspect.builder("Decorating")
            .around(execution("Node.render"), lambda jp: f"[{jp.proceed()}]")
            .build()
        )
        runtime = WeaverRuntime()
        deployment = runtime.deploy(aspect, [Node])
        assert Node().render() == "[content]"
        runtime.undeploy(deployment)

    def test_builder_name_shows_in_weaver_errors(self):
        Node = fresh_node()
        aspect = (
            Aspect.builder("MisspelledPointcut")
            .before("execution(Nothing.at_all)", lambda jp: None)
            .build()
        )
        assert type(aspect).__name__ == "MisspelledPointcut"
        assert isinstance(aspect, FluentAspect)
        runtime = WeaverRuntime()
        with pytest.raises(WeavingError, match="MisspelledPointcut matched nothing"):
            runtime.deploy(aspect, [Node])

    def test_builder_order_controls_nesting(self):
        Node = fresh_node()
        log = []
        outer = (
            Aspect.builder("Outer", order=-10)
            .before("execution(Node.render)", lambda jp: log.append("outer"))
            .build()
        )
        inner = (
            Aspect.builder("Inner", order=10)
            .before("execution(Node.render)", lambda jp: log.append("inner"))
            .build()
        )
        runtime = WeaverRuntime()
        with runtime.transaction([Node]) as tx:
            # Deployed inner-first, but `order` decides precedence within
            # one deployment's chain; deploy both in one aspect to check.
            tx.add(outer)
            tx.add(inner)
            Node().render()
            tx.undeploy()
        # Two stacked deployments: later wraps earlier regardless of order.
        assert log == ["inner", "outer"]
        log.clear()
        combined = (
            Aspect.builder("Combined")
            .before("execution(Node.render)", lambda jp: log.append("late"), order=10)
            .before("execution(Node.render)", lambda jp: log.append("early"), order=-1)
            .build()
        )
        with WeaverRuntime().transaction([Node]) as tx:
            tx.add(combined)
            Node().render()
            tx.undeploy()
        assert log == ["early", "late"]

    def test_builder_introduce_and_declare_error(self):
        Node = fresh_node()
        grafting = (
            Aspect.builder("Grafting")
            .introduce("Node", "kind", lambda self: "grafted")
            .build()
        )
        runtime = WeaverRuntime()
        deployment = runtime.deploy(grafting, [Node], require_match=False)
        assert Node().kind() == "grafted"
        runtime.undeploy(deployment)
        assert not hasattr(Node, "kind")

        policing = (
            Aspect.builder("Policing")
            .declare_error("execution(*.as_html)", "no html builders here")
            .build()
        )
        with pytest.raises(WeavingError, match="no html builders"):
            WeaverRuntime().deploy(policing, [Node], require_match=False)

    def test_builder_types_environment(self):
        Node = fresh_node()
        log = []
        aspect = (
            Aspect.builder("Typed", types={"Node": Node})
            .before("execution(Node.render) && target(Node)", lambda jp: log.append(1))
            .build()
        )
        runtime = WeaverRuntime()
        deployment = runtime.deploy(aspect, [Node])
        Node().render()
        runtime.undeploy(deployment)
        assert log == [1]

    def test_empty_builder_fails_validation(self):
        aspect = Aspect.builder("Empty").build()
        with pytest.raises(AopError, match="declares no advice"):
            WeaverRuntime().deploy(aspect, [fresh_node()])

    def test_after_returning_and_throwing(self):
        class Flaky:
            def op(self, fail):
                if fail:
                    raise KeyError("nope")
                return "fine"

        log = []
        aspect = (
            Aspect.builder("Observing")
            .after_returning("execution(Flaky.op)", lambda jp: log.append(jp.result))
            .after_throwing(
                "execution(Flaky.op)", lambda jp: log.append(type(jp.result).__name__)
            )
            .build()
        )
        runtime = WeaverRuntime()
        deployment = runtime.deploy(aspect, [Flaky])
        assert Flaky().op(False) == "fine"
        with pytest.raises(KeyError):
            Flaky().op(True)
        runtime.undeploy(deployment)
        assert log == ["fine", "KeyError"]


class TestPointcutOperatorCoercion:
    def test_and_with_string_operand(self):
        pc = execution("Node.render") & "within(Node)"
        assert pc.matches_shadow(fresh_node(), "render", EXEC)

    def test_rand_with_string_operand(self):
        Node = fresh_node()
        pc = "within(Node)" & execution("*.render")
        assert pc.matches_shadow(Node, "render", EXEC)
        assert not pc.matches_shadow(Node, "as_html", EXEC)

    def test_or_with_string_operand(self):
        Node = fresh_node()
        pc = execution("Node.render") | "execution(Node.as_html)"
        assert pc.matches_shadow(Node, "render", EXEC)
        assert pc.matches_shadow(Node, "as_html", EXEC)
        pc2 = "execution(Node.render)" | execution("Node.as_html")
        assert pc2.matches_shadow(Node, "render", EXEC)

    def test_composed_pointcut_deploys(self):
        Node = fresh_node()
        log = []
        aspect = (
            Aspect.builder("Composed")
            .before(
                (execution("Node.render") | "execution(Node.as_html)")
                & ~within("Unrelated*"),
                lambda jp: log.append(jp.name),
            )
            .build()
        )
        runtime = WeaverRuntime()
        deployment = runtime.deploy(aspect, [Node])
        node = Node()
        node.render()
        node.as_html()
        runtime.undeploy(deployment)
        assert log == ["render", "as_html"]

    def test_invalid_operand_raises_type_error(self):
        with pytest.raises(TypeError):
            execution("Node.render") & 5
        with pytest.raises(TypeError):
            execution("Node.render") | object()

    def test_target_still_needs_real_types(self):
        Node = fresh_node()
        pc = execution("Node.render") & target(Node)
        assert pc.matches_shadow(Node, "render", EXEC)


class TestBuilderOrderResolution:
    def test_explicit_order_zero_is_not_remapped(self):
        """Regression: order=0 pinned on an order=10 aspect must stay 0."""
        aspect = (
            Aspect.builder("Pinned", order=10)
            .before("execution(Node.render)", lambda jp: None, order=0)
            .before("execution(Node.render)", lambda jp: None)
            .build()
        )
        orders = [a.order for a in aspect.advice()]
        assert orders == [0, 10]
