"""The zero-wrapper monitor tier: eligibility, parity, lifecycle.

The three-tier behavioral parity matrix lives in
``test_compiled_chain.py`` (every advice-semantics test runs under
codegen, generic and monitor).  This file pins what is *specific* to the
``sys.monitoring`` tier: the deploy-time tier planner's eligibility
rules, zero-wrapper interception (no member installed, siblings
unmonitored), receiver recovery from the live frame, exception-path
event semantics, cflow-watcher parity, composition with codegen wrappers
on one class, transaction rollback / partial undeploy, and the tool-id
lifecycle (events restored, id released).
"""

import sys

import pytest

from repro.aop import (
    Aspect,
    DeploymentSet,
    WeaverRuntime,
    WeavingError,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    cflow,
    current_stack,
    execution,
    monitor_enabled,
    monitor_supported,
)
from repro.aop import monitor as monitor_mod

needs_monitoring = pytest.mark.skipif(
    sys.version_info < (3, 12),
    reason="monitor tier needs sys.monitoring (CPython 3.12+)",
)


@pytest.fixture(autouse=True)
def _monitor_on(monkeypatch):
    monkeypatch.setenv("REPRO_AOP_MONITOR", "1")
    monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")


@pytest.fixture(autouse=True)
def _release_leaked_tools():
    """Free any repro-aop tool ids a failing test left claimed.

    A test that fails before its ``undeploy`` leaves its runtime's tool
    id registered; without this, one failure cascades into every later
    lifecycle assertion in the module.
    """
    yield
    if not monitor_supported():
        return
    events = sys.monitoring.events
    for tool in range(6):
        if str(sys.monitoring.get_tool(tool) or "").startswith("repro-aop:"):
            sys.monitoring.set_events(tool, 0)
            for event in (events.PY_START, events.PY_RETURN, events.PY_UNWIND):
                sys.monitoring.register_callback(tool, event, None)
            sys.monitoring.free_tool_id(tool)


def fresh_node():
    class Node:
        def render(self):
            return "node!"

        def sibling(self):
            return "plain"

    return Node


def observation_aspect(log, cls_name="Node", member="render"):
    class Obs(Aspect):
        @before(f"execution({cls_name}.{member})")
        def pre(self, jp):
            log.append(("before", jp.args, dict(jp.kwargs)))

        @after_returning(f"execution({cls_name}.{member})")
        def post(self, jp):
            log.append(("returning", jp.result))

        @after(f"execution({cls_name}.{member})")
        def fin(self, jp):
            log.append(("finally",))

    return Obs()


def _repro_tool_ids():
    if not monitor_supported():
        return []
    return [
        tool
        for tool in range(6)
        if str(sys.monitoring.get_tool(tool) or "").startswith("repro-aop:")
    ]


class TestKnob:
    def test_supported_tracks_interpreter(self):
        assert monitor_supported() == hasattr(sys, "monitoring")

    def test_enabled_defaults_to_supported(self, monkeypatch):
        monkeypatch.delenv("REPRO_AOP_MONITOR", raising=False)
        assert monitor_enabled() == monitor_supported()

    @pytest.mark.parametrize("value", ["0", "false", "No", " OFF "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_AOP_MONITOR", value)
        assert not monitor_enabled()

    def test_disabled_deploy_uses_wrappers(self, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_MONITOR", "0")
        Node = fresh_node()
        log = []
        runtime = WeaverRuntime("knob-off")
        deployment = runtime.deploy(observation_aspect(log), [Node])
        assert not deployment.monitor_sites
        assert deployment.members
        assert Node().render() == "node!"
        assert [e[0] for e in log] == ["before", "returning", "finally"]
        runtime.undeploy_all()


@needs_monitoring
class TestTierPlanner:
    def test_observation_advice_installs_no_member(self):
        Node = fresh_node()
        original = Node.__dict__["render"]
        log = []
        runtime = WeaverRuntime("planner")
        deployment = runtime.deploy(observation_aspect(log), [Node])
        assert [r.signature for r in deployment.monitor_sites] == ["Node.render"]
        assert not deployment.members
        assert Node.__dict__["render"] is original  # zero wrapper frames
        assert Node().render() == "node!"
        assert log == [
            ("before", (), {}),
            ("returning", "node!"),
            ("finally",),
        ]
        runtime.undeploy(deployment)
        assert not deployment.monitor_sites

    def test_monitor_site_satisfies_require_match(self):
        Node = fresh_node()
        runtime = WeaverRuntime("require-match")
        log = []
        deployment = runtime.deploy(
            observation_aspect(log), [Node], require_match=True
        )
        assert deployment.monitor_sites
        runtime.undeploy_all()

    def test_around_advice_stays_on_wrappers(self):
        Node = fresh_node()

        class Around(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                return jp.proceed()

        runtime = WeaverRuntime("around")
        deployment = runtime.deploy(Around(), [Node])
        assert not deployment.monitor_sites
        assert deployment.members
        runtime.undeploy_all()

    def test_after_throwing_stays_on_wrappers(self):
        Node = fresh_node()

        class Throwing(Aspect):
            @after_throwing("execution(Node.render)")
            def caught(self, jp):
                pass

        runtime = WeaverRuntime("throwing")
        deployment = runtime.deploy(Throwing(), [Node])
        assert not deployment.monitor_sites
        assert deployment.members
        runtime.undeploy_all()

    def test_dynamic_residue_stays_on_wrappers(self):
        Node = fresh_node()

        class Dynamic(Aspect):
            @before(execution("Node.render") & cflow(execution("Node.sibling")))
            def pre(self, jp):
                pass

        runtime = WeaverRuntime("dynamic")
        deployment = runtime.deploy(Dynamic(), [Node])
        assert not deployment.monitor_sites
        runtime.undeploy_all()

    def test_instance_scope_stays_on_wrappers(self):
        Node = fresh_node()
        node = Node()
        log = []
        runtime = WeaverRuntime("scoped")
        deployment = runtime.deploy(
            observation_aspect(log), [Node], instances=[node]
        )
        assert not deployment.monitor_sites
        assert deployment.members
        runtime.undeploy_all()

    def test_generator_member_stays_on_wrappers(self):
        class Node:
            def stream(self):
                yield 1

        class Obs(Aspect):
            @before("execution(Node.stream)")
            def pre(self, jp):
                pass

        runtime = WeaverRuntime("generator")
        deployment = runtime.deploy(Obs(), [Node])
        assert not deployment.monitor_sites
        assert deployment.members
        runtime.undeploy_all()

    def test_defaulted_parameters_stay_on_wrappers(self):
        class Node:
            def render(self, suffix="!"):
                return f"node{suffix}"

        seen = []

        class Obs(Aspect):
            @before("execution(Node.render)")
            def pre(self, jp):
                seen.append(jp.args)

        runtime = WeaverRuntime("defaults")
        deployment = runtime.deploy(Obs(), [Node])
        # By PY_START the frame already holds suffix="!", so the monitor
        # tier could not tell a defaulted call from render("!") — the
        # planner pins the shadow to a wrapper, which sees the raw call.
        assert not deployment.monitor_sites
        assert deployment.members
        Node().render()
        assert seen == [()]
        runtime.undeploy_all()

    def test_inherited_member_stays_on_wrappers(self):
        class Base:
            def render(self):
                return "base"

        class Sub(Base):
            pass

        class Obs(Aspect):
            @before("execution(Sub.render)")
            def pre(self, jp):
                pass

        runtime = WeaverRuntime("inherited")
        deployment = runtime.deploy(Obs(), [Sub])
        # Sub shares Base's code object; monitoring it would advise Base
        # calls too, so the planner pins the shadow to a wrapper.
        assert not deployment.monitor_sites
        assert deployment.members
        runtime.undeploy_all()

    def test_stacking_above_a_wrapper_stays_on_wrappers(self):
        Node = fresh_node()
        log = []

        class Around(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                log.append("around")
                return jp.proceed()

        runtime = WeaverRuntime("stack-over-wrapper")
        first = runtime.deploy(Around(), [Node])
        second = runtime.deploy(observation_aspect(log), [Node])
        # The shadow is already a woven wrapper: registering the monitor
        # beneath it would run the newer advice innermost, out of order.
        assert not second.monitor_sites
        assert second.members
        Node().render()
        assert [e[0] if isinstance(e, tuple) else e for e in log] == [
            "before",
            "around",
            "returning",
            "finally",
        ]
        runtime.undeploy(second)
        runtime.undeploy(first)

    def test_shared_code_object_falls_back_and_stays_isolated(self):
        NodeA = fresh_node()
        NodeB = fresh_node()
        assert NodeA.render.__code__ is NodeB.render.__code__
        log_a, log_b = [], []
        runtime = WeaverRuntime("shared-code")
        dep_a = runtime.deploy(observation_aspect(log_a), [NodeA])
        dep_b = runtime.deploy(observation_aspect(log_b), [NodeB])
        assert dep_a.monitor_sites
        # One site per code object: the second claim falls back to a
        # wrapper rather than cross-advising NodeA's calls.
        assert not dep_b.monitor_sites and dep_b.members
        NodeA().render()
        NodeB().render()
        # The receiver guard keeps NodeA's registration silent for
        # NodeB's calls even though they share the monitored code.
        assert [e[0] for e in log_a] == ["before", "returning", "finally"]
        assert [e[0] for e in log_b] == ["before", "returning", "finally"]
        runtime.undeploy_all()


@needs_monitoring
class TestDispatch:
    def test_arguments_recovered_from_frame(self):
        class Node:
            def render(self, a, b, *extra, flag, **rest):
                return (a, b, extra, flag, rest)

        seen = []

        class Obs(Aspect):
            @before("execution(Node.render)")
            def pre(self, jp):
                seen.append((jp.target, jp.args, dict(jp.kwargs)))

        runtime = WeaverRuntime("argv")
        deployment = runtime.deploy(Obs(), [Node])
        assert deployment.monitor_sites
        node = Node()
        node.render(1, 2, 3, flag=True, extra_kw="x")
        target, args, kwargs = seen[0]
        assert target is node
        assert args == (1, 2, 3)
        assert kwargs == {"flag": True, "extra_kw": "x"}
        runtime.undeploy_all()

    def test_stacked_deployments_order_like_wrappers(self):
        Node = fresh_node()
        log = []

        def tagger(tag):
            class Tagged(Aspect):
                @before("execution(Node.render)")
                def pre(self, jp):
                    log.append(f"{tag}:before")

                @after_returning("execution(Node.render)")
                def post(self, jp):
                    log.append(f"{tag}:returning")

                @after("execution(Node.render)")
                def fin(self, jp):
                    log.append(f"{tag}:finally")

            Tagged.__name__ = tag
            return Tagged()

        runtime = WeaverRuntime("stacked")
        runtime.deploy(tagger("inner"), [Node])
        runtime.deploy(tagger("outer"), [Node])
        Node().render()
        # Newest deployment outermost — identical to nested wrappers.
        assert log == [
            "outer:before",
            "inner:before",
            "inner:returning",
            "inner:finally",
            "outer:returning",
            "outer:finally",
        ]
        runtime.undeploy_all()

    def test_escaping_exception_runs_finally_not_returning(self):
        class Node:
            def boom(self):
                raise ValueError("boom")

        log = []

        class Obs(Aspect):
            @before("execution(Node.boom)")
            def pre(self, jp):
                log.append("before")

            @after_returning("execution(Node.boom)")
            def post(self, jp):
                log.append("returning")

            @after("execution(Node.boom)")
            def fin(self, jp):
                log.append(("finally", type(jp.result).__name__))

        runtime = WeaverRuntime("escape")
        deployment = runtime.deploy(Obs(), [Node])
        assert deployment.monitor_sites
        with pytest.raises(ValueError):
            Node().boom()
        assert log == ["before", ("finally", "ValueError")]
        runtime.undeploy_all()

    def test_internally_caught_exception_is_invisible(self):
        class Node:
            def safe(self):
                try:
                    raise KeyError("inner")
                except KeyError:
                    return "caught"

        log = []

        class Obs(Aspect):
            @after_returning("execution(Node.safe)")
            def post(self, jp):
                log.append(("returning", jp.result))

            @after("execution(Node.safe)")
            def fin(self, jp):
                log.append("finally")

        runtime = WeaverRuntime("caught")
        deployment = runtime.deploy(Obs(), [Node])
        assert deployment.monitor_sites
        assert Node().safe() == "caught"
        # PY_UNWIND (not RAISE) drives the exception path: an exception
        # the body handles itself never reaches the advice.
        assert log == [("returning", "caught"), "finally"]
        runtime.undeploy_all()

    def test_raising_before_skips_body_and_inner_advice(self):
        Node = fresh_node()
        log = []
        calls = []
        original = Node.render

        def counting(self):
            calls.append(1)
            return original(self)

        Node.render = counting

        def tagger(tag, explode=False):
            class Tagged(Aspect):
                @before("execution(Node.render)")
                def pre(self, jp):
                    log.append(f"{tag}:before")
                    if explode:
                        raise RuntimeError("veto")

                @after("execution(Node.render)")
                def fin(self, jp):
                    log.append(f"{tag}:finally")

            Tagged.__name__ = tag
            return Tagged()

        runtime = WeaverRuntime("veto")
        runtime.deploy(tagger("inner", explode=True), [Node])
        runtime.deploy(tagger("outer"), [Node])
        with pytest.raises(RuntimeError, match="veto"):
            Node().render()
        # The inner deployment's before vetoed the call: the body never
        # ran, the raising deployment's own finally is skipped, and the
        # deployments outer to it still observe the unwind — exactly the
        # nesting wrappers produce.
        assert calls == []
        assert log == ["outer:before", "inner:before", "outer:finally"]
        runtime.undeploy_all()

    def test_raising_after_advice_propagates_to_caller(self):
        Node = fresh_node()
        log = []

        class Obs(Aspect):
            @after_returning("execution(Node.render)")
            def post(self, jp):
                log.append("returning")
                raise RuntimeError("post-hoc")

            @after("execution(Node.render)")
            def fin(self, jp):
                log.append("finally")

        runtime = WeaverRuntime("after-raise")
        deployment = runtime.deploy(Obs(), [Node])
        assert deployment.monitor_sites
        with pytest.raises(RuntimeError, match="post-hoc"):
            Node().render()
        assert log == ["returning"]
        runtime.undeploy_all()

    def test_joinpoints_are_pooled(self):
        Node = fresh_node()
        log = []
        runtime = WeaverRuntime("pool")
        deployment = runtime.deploy(observation_aspect(log), [Node])
        (registration,) = deployment.monitor_sites
        node = Node()
        for _ in range(5):
            node.render()
        (site,) = runtime._monitor.sites()
        assert len(site.pool.free) == 1  # one jp, released every call
        runtime.undeploy_all()


@needs_monitoring
class TestCflowParity:
    def test_monitor_sites_push_frames_while_watchers_live(self):
        Node = fresh_node()
        depths = []

        class Crumb(Aspect):
            @before("execution(Node.render)")
            def pre(self, jp):
                depths.append(len(current_stack()))

        class Flow(Aspect):
            @before(execution("Node.render") & cflow(execution("Node.sibling")))
            def pre(self, jp):
                pass

        runtime = WeaverRuntime("cflow-parity")
        crumb = runtime.deploy(Crumb(), [Node])
        assert crumb.monitor_sites
        Node().render()
        # No watcher live: the static fast path skips frame bookkeeping,
        # exactly like the wrapper tiers.
        assert depths == [0]
        flow = runtime.deploy(Flow(), [Node])
        assert runtime.watchers.count == 1
        Node().render()
        # Watcher live: the monitor callback pushes a frame for its
        # site, and the dynamic-residue wrapper stacked on the same
        # shadow pushes its own — depth 2, byte-identical to what two
        # stacked wrapper deployments report.
        assert depths == [0, 2]
        runtime.undeploy(flow)
        Node().render()
        assert depths == [0, 2, 0]
        runtime.undeploy_all()

    def test_cflow_residue_sees_monitor_tier_entry_shadow(self):
        Node = fresh_node()
        log = []

        class Crumb(Aspect):
            @before("execution(Node.sibling)")
            def pre(self, jp):
                log.append("crumb")

        class Flow(Aspect):
            # render() in the control flow of sibling() — but sibling is
            # advised through the monitor tier, so its frame must come
            # from the monitor callback, not a tracking wrapper.
            @before(execution("Node.render") & cflow(execution("Node.sibling")))
            def pre(self, jp):
                log.append("inflow")

        class Chatty(fresh_node()):
            pass

        def sibling_calls_render(self):
            return Node.render(self)

        Node.sibling = sibling_calls_render
        runtime = WeaverRuntime("cflow-entry")
        crumb = runtime.deploy(Crumb(), [Node])
        assert crumb.monitor_sites
        runtime.deploy(Flow(), [Node])
        node = Node()
        node.render()
        assert "inflow" not in log
        node.sibling()
        assert log.count("inflow") == 1 and log.count("crumb") == 1
        runtime.undeploy_all()


@needs_monitoring
class TestComposition:
    def test_monitor_and_codegen_tiers_on_one_class(self):
        Node = fresh_node()
        log = []

        class Mixed(Aspect):
            @before("execution(Node.render)")
            def observe(self, jp):
                log.append("observe")

            @around("execution(Node.sibling)")
            def wrap(self, jp):
                log.append("around")
                return jp.proceed()

        runtime = WeaverRuntime("mixed")
        deployment = runtime.deploy(Mixed(), [Node])
        assert [r.name for r in deployment.monitor_sites] == ["render"]
        assert [m.name for m in deployment.members] == ["sibling"]
        node = Node()
        assert node.render() == "node!"
        assert node.sibling() == "plain"
        assert log == ["observe", "around"]
        tiers = runtime.stats()["tiers"]
        assert tiers == {"monitor": 1, "codegen": 1}
        stats = runtime.deployment_stats(deployment)
        assert stats.monitor_members == 1
        assert stats.method_members == 1
        runtime.undeploy_all()
        assert runtime.stats()["tiers"] == {}

    def test_mixed_tiers_in_one_transaction_roll_back_together(self):
        Node = fresh_node()
        log = []

        class Boom(Exception):
            pass

        runtime = WeaverRuntime("tx-rollback")
        with pytest.raises(Boom):
            with runtime.transaction([Node]) as tx:
                deployment = tx.add(observation_aspect(log))
                assert deployment.monitor_sites
                raise Boom()
        assert runtime.deployments == []
        assert runtime.stats()["monitor"]["tool_id"] is None
        log.clear()
        Node().render()
        assert log == []

    def test_partial_undeploy_reweaves_monitor_survivors(self):
        Node = fresh_node()
        log = []

        def tagger(tag):
            class Tagged(Aspect):
                @before("execution(Node.render)")
                def pre(self, jp):
                    log.append(tag)

            Tagged.__name__ = tag
            return Tagged()

        runtime = WeaverRuntime("partial")
        tx = runtime.transaction([Node])
        first = tx.add(tagger("first"))
        second = tx.add(tagger("second"))
        assert first.monitor_sites and second.monitor_sites
        tx.undeploy([first])
        (survivor,) = tx.deployments
        assert survivor.monitor_sites
        Node().render()
        assert log == ["second"]
        tx.undeploy()
        log.clear()
        Node().render()
        assert log == []

    def test_unadvised_sibling_method_is_not_monitored(self):
        Node = fresh_node()
        log = []
        runtime = WeaverRuntime("sibling")
        deployment = runtime.deploy(observation_aspect(log), [Node])
        (registration,) = deployment.monitor_sites
        (site,) = runtime._monitor.sites()
        events = sys.monitoring.get_local_events(
            runtime._monitor.tool_id, Node.render.__code__
        )
        assert events  # the advised shadow raises events
        assert (
            sys.monitoring.get_local_events(
                runtime._monitor.tool_id, Node.sibling.__code__
            )
            == 0
        )  # the sibling pays zero monitoring tax
        runtime.undeploy_all()


@needs_monitoring
class TestToolLifecycle:
    def test_tool_id_claimed_and_released(self):
        Node = fresh_node()
        log = []
        runtime = WeaverRuntime("lifecycle")
        assert _repro_tool_ids() == []
        deployment = runtime.deploy(observation_aspect(log), [Node])
        claimed = _repro_tool_ids()
        assert len(claimed) == 1
        tool = claimed[0]
        assert sys.monitoring.get_tool(tool) == "repro-aop:lifecycle"
        assert sys.monitoring.get_local_events(tool, Node.render.__code__)
        runtime.undeploy(deployment)
        assert _repro_tool_ids() == []
        assert sys.monitoring.get_local_events(tool, Node.render.__code__) == 0

    def test_deploy_undeploy_cycles_are_stable(self):
        Node = fresh_node()
        log = []
        runtime = WeaverRuntime("cycles")
        for cycle in range(5):
            deployment = runtime.deploy(observation_aspect(log), [Node])
            assert deployment.monitor_sites
            Node().render()
            runtime.undeploy(deployment)
        assert len(log) == 15  # 3 events per call, every cycle live
        Node().render()
        assert len(log) == 15  # and silent once undeployed
        assert _repro_tool_ids() == []

    def test_two_runtimes_use_distinct_tool_ids(self):
        NodeA = fresh_node()

        class Other:
            def render(self):
                return "other"

        log_a, log_b = [], []
        a_runtime = WeaverRuntime("tool-a")
        b_runtime = WeaverRuntime("tool-b")
        dep_a = a_runtime.deploy(observation_aspect(log_a), [NodeA])

        class ObsOther(Aspect):
            @before("execution(Other.render)")
            def pre(self, jp):
                log_b.append("before")

        dep_b = b_runtime.deploy(ObsOther(), [Other])
        assert dep_a.monitor_sites and dep_b.monitor_sites
        names = {
            str(sys.monitoring.get_tool(tool)) for tool in _repro_tool_ids()
        }
        assert names == {"repro-aop:tool-a", "repro-aop:tool-b"}
        NodeA().render()
        Other().render()
        assert [e[0] for e in log_a] == ["before", "returning", "finally"]
        assert log_b == ["before"]
        b_runtime.undeploy_all()
        a_runtime.undeploy_all()
        assert _repro_tool_ids() == []

    def test_exhausted_tool_ids_fall_back_to_wrappers(self, monkeypatch):
        Node = fresh_node()
        log = []
        monkeypatch.setattr(monitor_mod, "_TOOL_RANGE", range(0))
        runtime = WeaverRuntime("exhausted")
        deployment = runtime.deploy(observation_aspect(log), [Node])
        assert not deployment.monitor_sites
        assert deployment.members
        Node().render()
        assert [e[0] for e in log] == ["before", "returning", "finally"]
        runtime.undeploy_all()
