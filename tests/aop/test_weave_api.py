"""The unified ``weave()`` surface and the deprecated API behind it.

``runtime.weave(target, aspect)`` is the one entry point for deployment:
it accepts a class, a module, a module-level function, or a list mixing
all three, and returns a context-managed :class:`~repro.aop.Weave`
handle — ``with`` gives aspectlib-style scoped weaving (exception ⇒
rollback), ``.undeploy()`` reverses it imperatively.  The old surface
(``runtime.deploy``, ``runtime.deploy_all``, ``DeploymentSet.add`` and
the ``repro.aop.legacy`` free functions) still works, emits
``DeprecationWarning``, and routes to exactly the same machinery.
"""

import sys
import types

import pytest

from repro.aop import (
    Aspect,
    WeaverRuntime,
    WeavingError,
    before,
    execution,
)


def fresh_renderer():
    class Renderer:
        def render(self):
            return "page"

        def index(self):
            return "index"

    return Renderer


def observing_aspect(log, pattern):
    class Observer(Aspect):
        @before(execution(pattern))
        def observe(self, jp):
            log.append(jp.signature)

    return Observer()


def synthetic_module(name="weavemod"):
    module = types.ModuleType(name)
    namespace = {"__name__": name}
    exec("def fn(x):\n    return x + 1\n", namespace)
    module.fn = namespace["fn"]
    return module


class TestPolymorphicTargets:
    def test_class_target(self):
        Renderer = fresh_renderer()
        log = []
        rt = WeaverRuntime("t")
        with rt.weave(Renderer, observing_aspect(log, "Renderer.render")):
            Renderer().render()
        assert log == ["Renderer.render"]

    def test_module_target(self):
        module = synthetic_module()
        log = []
        rt = WeaverRuntime("t")
        with rt.weave(module, observing_aspect(log, "weavemod.fn")):
            assert module.fn(1) == 2
        assert log == ["weavemod.fn"]

    def test_function_target(self):
        module = synthetic_module()
        sys.modules[module.__name__] = module
        try:
            log = []
            rt = WeaverRuntime("t")
            with rt.weave(module.fn, observing_aspect(log, "weavemod.fn")):
                module.fn(1)
            assert log == ["weavemod.fn"]
        finally:
            del sys.modules[module.__name__]

    def test_mixed_list_target(self):
        Renderer = fresh_renderer()
        module = synthetic_module()
        log = []
        rt = WeaverRuntime("t")
        aspect = observing_aspect(log, "*.render")
        with rt.weave([Renderer, module], aspect, require_match=False):
            Renderer().render()
            module.fn(0)
        assert log == ["Renderer.render"]

    def test_unsupported_target_raises(self):
        rt = WeaverRuntime("t")
        with pytest.raises(WeavingError, match="target"):
            rt.weave(42, observing_aspect([], "*.render"))

    def test_function_target_with_instances_rejected(self):
        module = synthetic_module()
        sys.modules[module.__name__] = module
        try:
            rt = WeaverRuntime("t")
            with pytest.raises(WeavingError):
                rt.weave(
                    module.fn,
                    observing_aspect([], "weavemod.fn"),
                    instances=[object()],
                )
        finally:
            del sys.modules[module.__name__]

    def test_require_match_failure_deploys_nothing(self):
        Renderer = fresh_renderer()
        rt = WeaverRuntime("t")
        with pytest.raises(WeavingError):
            rt.weave(Renderer, observing_aspect([], "Nothing.matches"))
        assert rt.deployments == []
        assert rt.woven_sites() == []


class TestWeaveHandle:
    def test_context_exit_undeploys(self):
        Renderer = fresh_renderer()
        original = Renderer.__dict__["render"]
        rt = WeaverRuntime("t")
        with rt.weave(Renderer, observing_aspect([], "Renderer.render")) as handle:
            assert handle.active
            assert Renderer.__dict__["render"] is not original
        assert Renderer.__dict__["render"] is original
        assert not handle.active

    def test_exception_in_block_rolls_back(self):
        Renderer = fresh_renderer()
        original = Renderer.__dict__["render"]
        rt = WeaverRuntime("t")
        with pytest.raises(ValueError, match="boom"):
            with rt.weave(Renderer, observing_aspect([], "Renderer.render")):
                raise ValueError("boom")
        assert Renderer.__dict__["render"] is original

    def test_imperative_undeploy(self):
        Renderer = fresh_renderer()
        original = Renderer.__dict__["render"]
        rt = WeaverRuntime("t")
        handle = rt.weave(Renderer, observing_aspect([], "Renderer.render"))
        assert handle.deployments and all(d.active for d in handle.deployments)
        handle.undeploy()
        assert Renderer.__dict__["render"] is original

    def test_repr_mentions_state(self):
        Renderer = fresh_renderer()
        rt = WeaverRuntime("t")
        handle = rt.weave(Renderer, observing_aspect([], "Renderer.render"))
        assert "1 deployment(s)" in repr(handle)
        handle.undeploy()


class TestDeprecatedSurface:
    def test_runtime_deploy_warns_and_works(self):
        Renderer = fresh_renderer()
        log = []
        rt = WeaverRuntime("t")
        with pytest.warns(DeprecationWarning, match="weave"):
            deployment = rt.deploy(
                observing_aspect(log, "Renderer.render"), [Renderer]
            )
        Renderer().render()
        rt.undeploy(deployment)
        assert log == ["Renderer.render"]

    def test_runtime_deploy_all_warns_and_works(self):
        Renderer = fresh_renderer()
        log = []
        rt = WeaverRuntime("t")
        with pytest.warns(DeprecationWarning, match="weave"):
            deployments = rt.deploy_all(
                [
                    observing_aspect(log, "Renderer.render"),
                    observing_aspect(log, "Renderer.index"),
                ],
                [Renderer],
            )
        instance = Renderer()
        instance.render()
        instance.index()
        for deployment in reversed(deployments):
            rt.undeploy(deployment)
        assert log == ["Renderer.render", "Renderer.index"]

    def test_deployment_set_add_warns_and_works(self):
        Renderer = fresh_renderer()
        log = []
        rt = WeaverRuntime("t")
        with rt.transaction([Renderer]) as tx:
            with pytest.warns(DeprecationWarning, match="weave"):
                tx.add(observing_aspect(log, "Renderer.render"))
            Renderer().render()
            tx.undeploy()
        assert log == ["Renderer.render"]

    def test_legacy_free_functions_still_route_through(self):
        from repro.aop import deploy, undeploy

        Renderer = fresh_renderer()
        log = []
        with pytest.warns(DeprecationWarning, match="weave"):
            deployment = deploy(
                observing_aspect(log, "Renderer.render"), [Renderer]
            )
        Renderer().render()
        with pytest.warns(DeprecationWarning):
            undeploy(deployment)
        assert log == ["Renderer.render"]

    def test_weave_itself_never_warns(self):
        import warnings

        Renderer = fresh_renderer()
        rt = WeaverRuntime("t")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with rt.weave(Renderer, observing_aspect([], "Renderer.render")):
                Renderer().render()


class TestLintThreading:
    def test_weave_forwards_lint_and_apl008_fires(self):
        from repro.aop import AopLintWarning, generator, return_

        Renderer = fresh_renderer()
        rt = WeaverRuntime("t")

        class NeverProceeds(Aspect):
            @generator(execution("Renderer.render"))
            def stub(self, jp):
                yield return_("stubbed")

        with pytest.warns(AopLintWarning, match="APL008"):
            handle = rt.weave(Renderer, NeverProceeds(), lint="warn")
        with handle:
            # The stub weaves anyway: every call returns its return_ value.
            assert Renderer().render() == "stubbed"
        assert Renderer().render() == "page"
