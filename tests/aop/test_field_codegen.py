"""Code-generated `_WovenField` accessors: parity, pooling, escape hatch.

The generic descriptor (``REPRO_AOP_CODEGEN=0``) is the reference; every
semantic case runs under both tiers and must agree — values, advice
ordering, proceed overrides, default fallbacks, exception paths.  What is
codegen-specific (pool reuse, metadata, the watcher slow path) is pinned
directly.
"""

import pytest

from repro.aop import (
    Aspect,
    WeaverRuntime,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    cflow,
    current_stack,
    execution,
    field_get,
    field_set,
)
from repro.aop.weaver import _WovenField

BOTH_TIERS = pytest.mark.parametrize(
    "codegen", [True, False], ids=["codegen", "generic"]
)


@pytest.fixture()
def runtime():
    return WeaverRuntime("field-test")


def fresh_holder(default=None):
    if default is None:

        class Holder:
            def __init__(self):
                self.level = 0

            def poke(self):
                return self.level

    else:

        class Holder:
            level = default

            def poke(self):
                return self.level

    return Holder


def set_codegen(monkeypatch, enabled):
    monkeypatch.setenv("REPRO_AOP_CODEGEN", "1" if enabled else "0")


class TestTierParity:
    @BOTH_TIERS
    def test_before_and_after_on_get_and_set(self, runtime, monkeypatch, codegen):
        set_codegen(monkeypatch, codegen)
        Holder = fresh_holder()
        log = []

        class Observing(Aspect):
            @before(field_get("Holder.level"))
            def before_get(self, jp):
                log.append(("before-get", jp.name))

            @after_returning(field_get("Holder.level"))
            def after_get(self, jp):
                log.append(("after-get", jp.result))

            @before(field_set("Holder.level"))
            def before_set(self, jp):
                log.append(("before-set", jp.value))

            @after(field_set("Holder.level"))
            def after_set(self, jp):
                log.append(("after-set", jp.value))

        deployment = runtime.deploy(Observing(), [Holder], fields=["level"])
        holder = Holder()  # __init__ writes 0
        holder.level = 3
        assert holder.level == 3
        runtime.undeploy(deployment)
        assert log == [
            ("before-set", 0),
            ("after-set", 0),
            ("before-set", 3),
            ("after-set", 3),
            ("before-get", "level"),
            ("after-get", 3),
        ]

    @BOTH_TIERS
    def test_around_get_rewrites_result(self, runtime, monkeypatch, codegen):
        set_codegen(monkeypatch, codegen)
        Holder = fresh_holder()

        class Doubling(Aspect):
            @around(field_get("Holder.level"))
            def double(self, jp):
                return jp.proceed() * 2

        deployment = runtime.deploy(Doubling(), [Holder], fields=["level"])
        holder = Holder()
        holder.level = 21
        assert holder.level == 42
        runtime.undeploy(deployment)
        assert holder.level == 21

    @BOTH_TIERS
    def test_around_set_proceed_overrides_value(self, runtime, monkeypatch, codegen):
        set_codegen(monkeypatch, codegen)
        Holder = fresh_holder()

        class Clamping(Aspect):
            @around(field_set("Holder.level"))
            def clamp(self, jp):
                return jp.proceed(min(jp.value, 10))

        deployment = runtime.deploy(Clamping(), [Holder], fields=["level"])
        holder = Holder()
        holder.level = 99
        assert holder.__dict__["level"] == 10
        holder.level = 5
        assert holder.__dict__["level"] == 5
        runtime.undeploy(deployment)

    @BOTH_TIERS
    def test_nested_arounds_on_set(self, runtime, monkeypatch, codegen):
        set_codegen(monkeypatch, codegen)
        Holder = fresh_holder()
        log = []

        class Stacked(Aspect):
            @around(field_set("Holder.level"), order=-1)
            def outer(self, jp):
                log.append("outer-in")
                result = jp.proceed(jp.value + 1)
                log.append("outer-out")
                return result

            @around(field_set("Holder.level"), order=1)
            def inner(self, jp):
                log.append(("inner", jp.value))
                return jp.proceed()

        deployment = runtime.deploy(Stacked(), [Holder], fields=["level"])
        holder = Holder()
        log.clear()
        holder.level = 7
        # outer proceeds with 8, which travels in jp.args (jp.value keeps
        # the original assignment); inner proceeds unchanged, writing 8.
        assert holder.__dict__["level"] == 8
        runtime.undeploy(deployment)
        assert log == ["outer-in", ("inner", 7), "outer-out"]

    @BOTH_TIERS
    def test_missing_attribute_raises_through_advice(
        self, runtime, monkeypatch, codegen
    ):
        set_codegen(monkeypatch, codegen)
        Holder = fresh_holder()
        log = []

        class Observing(Aspect):
            @after_throwing(field_get("Holder.level"))
            def saw(self, jp):
                log.append(type(jp.result).__name__)

            @after(field_get("Holder.level"))
            def always(self, jp):
                log.append("finally")

        deployment = runtime.deploy(Observing(), [Holder], fields=["level"])
        holder = Holder.__new__(Holder)  # skip __init__: no instance value
        with pytest.raises(AttributeError, match="no attribute 'level'"):
            holder.level
        runtime.undeploy(deployment)
        assert log == ["AttributeError", "finally"]

    @BOTH_TIERS
    def test_class_default_fallback(self, runtime, monkeypatch, codegen):
        set_codegen(monkeypatch, codegen)
        Holder = fresh_holder(default=17)

        class Observing(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                pass

        deployment = runtime.deploy(Observing(), [Holder], fields=["level"])
        holder = Holder()
        assert holder.level == 17  # class default, no instance value yet
        holder.level = 4
        assert holder.level == 4
        runtime.undeploy(deployment)
        assert Holder.level == 17

    @BOTH_TIERS
    def test_get_only_advice_leaves_set_plain(self, runtime, monkeypatch, codegen):
        set_codegen(monkeypatch, codegen)
        Holder = fresh_holder()
        log = []

        class GetOnly(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                log.append("get")

        deployment = runtime.deploy(GetOnly(), [Holder], fields=["level"])
        holder = Holder()
        holder.level = 5  # descriptor installed, but no set advice
        assert holder.level == 5
        runtime.undeploy(deployment)
        assert log == ["get"]


class TestCodegenSpecifics:
    def test_generated_descriptor_metadata(self, runtime, monkeypatch):
        set_codegen(monkeypatch, True)
        Holder = fresh_holder()

        class Observing(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                pass

        runtime.deploy(Observing(), [Holder], fields=["level"])
        descriptor = Holder.__dict__["level"]
        assert isinstance(descriptor, _WovenField)
        assert type(descriptor).__name__ == "_WovenFieldCodegen"
        assert "def __get__(self, obj, objtype=None):" in (
            descriptor.__codegen_source__
        )
        assert set(descriptor.__joinpoint_pools__) == {"get", "set"}
        runtime.undeploy_all()

    def test_escape_hatch_yields_generic_descriptor(self, runtime, monkeypatch):
        set_codegen(monkeypatch, False)
        Holder = fresh_holder()

        class Observing(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                pass

        runtime.deploy(Observing(), [Holder], fields=["level"])
        descriptor = Holder.__dict__["level"]
        assert type(descriptor) is _WovenField
        assert not hasattr(descriptor, "__codegen_source__")
        runtime.undeploy_all()

    def test_dynamic_residue_fields_stay_generic(self, runtime, monkeypatch):
        set_codegen(monkeypatch, True)
        Holder = fresh_holder()

        class Residued(Aspect):
            @before(field_get("Holder.level") & cflow(execution("Holder.poke")))
            def note(self, jp):
                pass

        runtime.deploy(Residued(), [Holder], fields=["level"])
        assert type(Holder.__dict__["level"]) is _WovenField
        runtime.undeploy_all()

    def test_pool_reuses_joinpoints_across_accesses(self, runtime, monkeypatch):
        set_codegen(monkeypatch, True)
        Holder = fresh_holder()
        seen = []

        class Observing(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                seen.append(id(jp))

        runtime.deploy(Observing(), [Holder], fields=["level"])
        holder = Holder()
        holder.level  # noqa: B018 - exercising the descriptor
        holder.level  # noqa: B018
        assert seen[0] == seen[1]  # released blank reused, steady state
        pool = Holder.__dict__["level"].__joinpoint_pools__["get"]
        (blank,) = pool.free
        assert blank.target is None and blank.result is None  # scrubbed
        runtime.undeploy_all()

    def test_watcher_slow_path_pushes_observable_frames(self, runtime, monkeypatch):
        """With a cflow watcher live in the runtime, field access must push
        a frame even through a generated descriptor (the cflow residue of
        another deployment may observe it)."""
        set_codegen(monkeypatch, True)
        Holder = fresh_holder()
        depths = []

        class FieldSpy(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                depths.append(len(current_stack()))

        class Watching(Aspect):
            @before(execution("Holder.poke") & cflow(execution("Holder.poke")))
            def watched(self, jp):
                pass

        runtime.deploy(FieldSpy(), [Holder], fields=["level"])
        holder = Holder()
        holder.level  # noqa: B018 - no watcher: fast path, no frame
        assert depths == [0]
        watching = runtime.deploy(Watching(), [Holder])
        holder.poke()  # reads .level inside poke's frame
        assert depths[-1] >= 2  # field frame + enclosing method frame
        runtime.undeploy(watching)
        holder.level  # noqa: B018 - watcher gone: fast path again
        assert depths[-1] == 0
        runtime.undeploy_all()

    def test_reweave_keeps_original_class_default(self, runtime, monkeypatch):
        set_codegen(monkeypatch, True)
        Holder = fresh_holder(default=17)

        class First(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                pass

        class Second(Aspect):
            @before(field_get("Holder.level"))
            def note(self, jp):
                pass

        runtime.deploy(First(), [Holder], fields=["level"])
        runtime.deploy(Second(), [Holder], fields=["level"])
        assert Holder().level == 17  # default survived the re-weave
        runtime.undeploy_all()
        assert Holder.level == 17
